"""Setuptools shim enabling legacy editable installs offline.

The execution environment has no ``wheel`` package and no network, so
PEP 660 editable wheels cannot be built; this shim lets
``pip install -e . --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
