"""Vocabularies and link-target pools for the synthetic pharmacy web.

The generator reproduces the *signals* the paper documents, so the word
pools below are organized by signal:

* illegitimate pharmacies over-use lifestyle-drug brand names and
  no-prescription marketing ("viagra", "cialis", "no prescription" —
  Section 6.3.1);
* legitimate pharmacies carry more health content, store-presence text,
  and verification-seal language (Mavlanova & Benbunan-Fich [23],
  cited in Sections 2.1 and 6.3.2);
* the link-target pools mirror Table 11: legitimate pharmacies point to
  social networks and government health agencies, illegitimate ones to
  wikipedia/wordpress, affiliate billing hosts, and each other.

All pools are plain tuples so the generator can sample them with NumPy.
"""

from __future__ import annotations

__all__ = [
    "HEALTH_CONTENT",
    "PHARMACY_COMMERCE",
    "STORE_PRESENCE",
    "VERIFICATION_SEALS",
    "PRESCRIPTION_POLICY_LEGIT",
    "LIFESTYLE_DRUGS",
    "GENERIC_DRUGS",
    "SCAM_MARKETING",
    "NO_PRESCRIPTION_MARKETING",
    "DRIFT_MARKETING",
    "COMMON_FILLER",
    "LEGIT_LINK_TARGETS",
    "ILLEGIT_LINK_TARGETS",
    "SHARED_LINK_TARGETS",
    "LEGIT_DOMAIN_STEMS",
    "ILLEGIT_DOMAIN_STEMS",
    "AFFILIATE_HUB_STEMS",
]

#: General health/medical content words — legitimate-heavy.
HEALTH_CONTENT = (
    "health", "wellness", "patient", "doctor", "physician", "clinical",
    "treatment", "therapy", "diagnosis", "symptoms", "condition",
    "chronic", "diabetes", "hypertension", "cholesterol", "asthma",
    "allergy", "vaccination", "immunization", "screening", "prevention",
    "nutrition", "vitamins", "supplements", "dosage", "interactions",
    "side", "effects", "medication", "guidance", "counseling",
    "pharmacist", "consultation", "monitoring", "bloodpressure",
    "cardiology", "dermatology", "pediatric", "geriatric", "oncology",
    "mental", "depression", "anxiety", "arthritis", "migraine",
    "infection", "antibiotic", "insulin", "thyroid", "anemia",
    "wellbeing", "lifestyle", "exercise", "smoking", "cessation",
)

#: Pharmacy commerce vocabulary — both classes, legit-leaning.
PHARMACY_COMMERCE = (
    "pharmacy", "prescription", "refill", "transfer", "dispense",
    "medication", "medicine", "drug", "tablet", "capsule", "dose",
    "insurance", "copay", "coverage", "medicare", "medicaid", "formulary",
    "generic", "brand", "order", "delivery", "pickup", "availability",
    "stock", "price", "cost", "savings", "coupon", "program",
    "pharmacist", "technician", "counter", "otc", "prescriber",
)

#: Store-presence features — legitimate pharmacies have more of these
#: (physical address, contact channels, policies) [23].
STORE_PRESENCE = (
    "contact", "address", "street", "suite", "phone", "telephone",
    "fax", "email", "hours", "monday", "friday", "saturday", "location",
    "directions", "parking", "store", "locations", "branch", "customer",
    "service", "support", "help", "faq", "policy", "privacy", "terms",
    "returns", "shipping", "accessibility", "careers", "about",
    "history", "team", "community", "license", "licensed", "registered",
    "state", "board",
)

#: Verification-seal and accreditation language — legitimate marker.
VERIFICATION_SEALS = (
    "vipps", "accredited", "verified", "accreditation", "nabp",
    "certification", "certified", "seal", "trustmark", "inspected",
    "compliance", "compliant", "regulated", "regulation", "fda",
    "approved", "dea", "hipaa", "secure", "encryption", "validated",
)

#: How legitimate pharmacies talk about prescriptions (required, valid).
PRESCRIPTION_POLICY_LEGIT = (
    "valid", "prescription", "required", "prescriber", "authorization",
    "physician", "signature", "verify", "verification", "original",
    "refills", "authorized", "consultation", "records", "transfer",
)

#: Lifestyle drug brands — heavily over-represented on illegitimate
#: sites (Section 6.3.1 names viagra and cialis explicitly).
LIFESTYLE_DRUGS = (
    "viagra", "cialis", "levitra", "sildenafil", "tadalafil",
    "vardenafil", "kamagra", "priligy", "propecia", "finasteride",
    "xanax", "valium", "ambien", "tramadol", "soma", "phentermine",
    "clomid", "accutane", "modafinil", "steroids",
)

#: Generic/maintenance drugs — both classes, legit-leaning.
GENERIC_DRUGS = (
    "amoxicillin", "lisinopril", "metformin", "atorvastatin",
    "levothyroxine", "amlodipine", "omeprazole", "metoprolol",
    "losartan", "albuterol", "gabapentin", "hydrochlorothiazide",
    "sertraline", "simvastatin", "montelukast", "escitalopram",
    "rosuvastatin", "bupropion", "furosemide", "pantoprazole",
    "prednisone", "citalopram", "ibuprofen", "acetaminophen", "aspirin",
)

#: Aggressive discount marketing — illegitimate-heavy.
SCAM_MARKETING = (
    "cheap", "cheapest", "discount", "discounts", "bonus", "pills",
    "free", "bonuses", "lowest", "prices", "offer", "deal", "sale",
    "save", "wholesale", "bulk", "worldwide", "overnight", "express",
    "anonymous", "discreet", "packaging", "guaranteed", "satisfaction",
    "moneyback", "unbeatable", "exclusive", "limited", "hurry",
    "bestsellers", "toppicks", "megasale", "superdiscount",
)

#: No-prescription marketing — the paper's strongest illegitimate
#: signal ("no prescription" appears far more frequently).
NO_PRESCRIPTION_MARKETING = (
    "no", "prescription", "needed", "without", "rx", "norx",
    "prescriptionfree", "doctor", "skip", "online", "instant",
    "approval", "noquestions", "nodoctor", "noscript",
)

#: Vocabulary that *new* illegitimate sites adopt six months later —
#: imitating store-presence/health language (drives the Old-New
#: legitimate-precision drop of Table 17).
DRIFT_MARKETING = (
    "trusted", "safety", "quality", "customer", "care", "support",
    "certified", "pharmacy", "checker", "reviews", "testimonials",
    "secure", "checkout", "billing", "confidential", "licensed",
    "canadian", "international", "accredited", "verified",
)

#: High-frequency filler common to all web text.
COMMON_FILLER = (
    "the", "and", "for", "with", "your", "our", "you", "we", "all",
    "new", "more", "can", "get", "now", "here", "home", "page", "site",
    "website", "click", "read", "learn", "find", "view", "see", "shop",
    "products", "product", "items", "list", "search", "menu", "cart",
    "checkout", "account", "login", "register", "welcome", "today",
    "information", "online", "best", "top", "great", "quality",
)

#: Table 11 (legitimate column): social networks, government health
#: agencies, mainstream infrastructure.
LEGIT_LINK_TARGETS = (
    "facebook.com", "twitter.com", "fda.gov", "google.com",
    "youtube.com", "nih.gov", "adobe.com", "cdc.gov",
    "doubleclick.net", "nabp.net",
)

#: Table 11 (illegitimate column): generic references, affiliate
#: billing/support hosts, manufacturer sites.
ILLEGIT_LINK_TARGETS = (
    "wikipedia.org", "wordpress.org", "drugs.com",
    "securebilling-page.com", "rxwinners.com", "google.com",
    "providesupport.com", "euro-med-store.com", "statcounter.com",
    "cipla.com",
)

#: Targets plausibly linked by either class (noise overlap).
SHARED_LINK_TARGETS = (
    "google.com", "youtube.com", "instagram.com", "pinterest.com",
    "medicalnewstoday.com", "webmd.com", "mayoclinic.org",
)

#: Domain-name stems for legitimate pharmacies.
LEGIT_DOMAIN_STEMS = (
    "healthmart", "carepoint", "wellspring", "citycare", "familycare",
    "cornerstone", "heritage", "lakeside", "riverside", "parkview",
    "maplewood", "oakridge", "hillcrest", "brookfield", "fairview",
    "northgate", "southport", "eastline", "westfield", "midtown",
    "harborview", "meadowbrook", "stonebridge", "clearwater",
    "springfield", "lakeview", "greenfield", "sunrise", "summit",
    "beacon",
)

#: Domain-name stems for illegitimate pharmacies.
ILLEGIT_DOMAIN_STEMS = (
    "cheaprx", "pillsdirect", "rxexpress", "medsbargain", "quickpills",
    "discountmeds", "globalrx", "pharmaexpress", "easymeds", "rxdepot",
    "medsonline", "pillmart", "rxsaver", "tabsdirect", "medbargains",
    "pharmadeal", "rxoutlet", "pillstore", "medexpress", "rxcentral",
    "drugbazaar", "pillplanet", "rxuniverse", "medsworld", "pharmaplus",
    "rxgiant", "pillvault", "medsdepot", "rxplaza", "drugmarket",
)

#: Stems for affiliate-network hub pharmacies (themselves illegitimate
#: pharmacies that many spokes link to — Section 6.3.2).
AFFILIATE_HUB_STEMS = (
    "rxwinners", "euro-med-store", "securebilling-page", "toprxnetwork",
    "medsalliance", "pharmacyring", "rxpartners", "globalpillhub",
)

#: Stems for non-pharmacy health portals that link *to* legitimate
#: pharmacies (the paper's future-work extension (a): include websites
#: that point to pharmacies and websites at distance > 1).
HEALTH_PORTAL_STEMS = (
    "healthportal", "medinfocenter", "patientguide", "wellnessdirectory",
    "careatlas", "pharmafinder", "medcompass", "healthnavigator",
)

#: Stems for spam link directories that point to illegitimate
#: pharmacies (the bad-side counterpart of the portals).
SPAM_DIRECTORY_STEMS = (
    "bestpillslinks", "rxtoplist", "cheapmedsdir", "pharmadeals-hub",
    "pillindex", "medbargainlist",
)

#: Stems for "potentially legitimate" pharmacies (Section 6.1: sites
#: that do not fully adhere to the verifier's policies but are probably
#: not illegitimate — 2.8% of the PharmaVerComp database).
POTENTIALLY_LEGIT_STEMS = (
    "valuemeds", "directpharma", "budgetcare", "mailorderrx",
    "expressscripts-plus", "thriftymeds", "homedelivery-rx",
    "discountcare",
)
