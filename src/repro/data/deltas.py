"""Timestamped snapshot deltas over a sharded synthetic corpus.

The paper's temporal study (Section 6.5) is one step: Dataset 1 →
Dataset 2.  A production verifier faces the continuous version — every
tick some illegitimate pharmacies appear, some are taken down, some
rotate their vocabulary, and affiliate spokes rewire to different hubs.
This module grows that stream *deterministically*, with the same
seed-stable scheme as :mod:`repro.data.sharding`:

* **Delta planning** — :func:`plan_deltas` derives each epoch's
  added / removed / drifted / rewired domains from per-``(domain,
  epoch)`` RNG streams (:func:`repro.data.sharding.site_seed` with an
  epoch-tagged purpose).  The plan is a pure function of the generator
  config and the :class:`StreamConfig` — independent of shard count,
  worker count, or which corpus instance applies it.
* **Versioned site builds** — a site's bytes at any point in the
  stream are a pure function of ``(seed, domain, revision, drifted)``.
  Revision 0 reuses the exact ``"site"`` / ``"role"`` RNG purposes of
  the sharded writer, so an unmodified domain is bit-identical to its
  shard row; revision ``r > 0`` draws from ``"site:r{r}"`` streams.
  Drifted illegitimate sites rotate to the generation-2 vocabulary
  (:data:`repro.data.synthesis._ILLEGIT_DRIFT_MIX`), reproducing the
  paper's Old→New degradation as a gradual process.
* **Mutable corpus state** — :class:`StreamCorpus` loads a
  :class:`~repro.data.sharding.ShardedCorpus` snapshot and applies
  deltas in sequence.  It also implements the
  :class:`~repro.web.host.WebHost` protocol, so the delta-aware
  crawler (:mod:`repro.stream.crawl`) fetches changed pages straight
  from the evolving state without rebuilding a host per tick.

Persistence: :func:`write_deltas` / :func:`load_deltas` round-trip a
planned stream as ``deltas.json`` next to the shard files, written
through the atomic helpers of :mod:`repro.io`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.data import lexicon
from repro.data.sharding import (
    ShardedCorpus,
    plan_domains,
    plan_site,
    site_seed,
)
from repro.data.synthesis import (
    GeneratorConfig,
    PharmacyRecord,
    SyntheticWebGenerator,
)
from repro.exceptions import (
    DataGenerationError,
    InvalidURLError,
    MissingKeyError,
    ValidationError,
)
from repro.io import PersistenceError, atomic_write_text
from repro.web.page import WebPage
from repro.web.site import Website
from repro.web.url import endpoint, normalize_url

__all__ = [
    "DELTAS_FILENAME",
    "StreamConfig",
    "SnapshotDelta",
    "AppliedDelta",
    "StreamCorpus",
    "epoch_domain_names",
    "plan_deltas",
    "write_deltas",
    "load_deltas",
]

DELTAS_FILENAME = "deltas.json"

_DELTAS_FORMAT = "repro-snapshot-deltas"
_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """Knobs of the snapshot-delta stream.

    Fractions are interpreted per tick: every live site draws its fate
    from its own ``(domain, epoch)`` RNG stream against these rates,
    the same per-site Bernoulli scheme :func:`~repro.data.sharding.
    plan_site` uses for role assignment.  Legitimate pharmacies never
    disappear (the paper's Dataset 2 keeps them all); appearance,
    takedown, and rewiring are illegitimate-side dynamics, while
    content drift touches both classes.

    Attributes:
        n_ticks: number of deltas to plan.
        tick_days: simulated days between consecutive snapshots.
        birth_fraction: new illegitimate sites per tick, as a fraction
            of the base illegitimate count (rounded, may be 0).
        death_fraction: per-tick takedown probability of each live
            illegitimate site.
        drift_fraction: per-tick probability that a live site's content
            is regenerated (illegitimate sites also rotate vocabulary).
        rewire_fraction: per-tick probability that a live illegitimate
            site re-draws its roles and affiliate hub links.
    """

    n_ticks: int = 52
    tick_days: float = 7.0
    birth_fraction: float = 0.02
    death_fraction: float = 0.02
    drift_fraction: float = 0.01
    rewire_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.n_ticks < 0:
            raise ValidationError(f"n_ticks must be >= 0, got {self.n_ticks}")
        if self.tick_days <= 0:
            raise ValidationError(f"tick_days must be > 0, got {self.tick_days}")
        for name in (
            "birth_fraction",
            "death_fraction",
            "drift_fraction",
            "rewire_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class SnapshotDelta:
    """One tick's changes, in deterministic plan order.

    Attributes:
        epoch: 1-based delta-sequence id; doubles as the snapshot epoch
            used in feature-cache keys.
        timestamp_days: simulated days since the base snapshot.
        added: newly appeared (illegitimate) domains.
        removed: taken-down domains.
        drifted: domains whose content was regenerated (illegitimate
            ones also rotate to the drifted vocabulary, permanently).
        rewired: domains that re-drew roles and affiliate hub links.
    """

    epoch: int
    timestamp_days: float
    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    drifted: tuple[str, ...] = ()
    rewired: tuple[str, ...] = ()

    @property
    def changed(self) -> tuple[str, ...]:
        """Domains needing a re-crawl: added + drifted + rewired."""
        return self.added + self.drifted + self.rewired

    @property
    def n_changes(self) -> int:
        """Total number of per-site changes in this delta."""
        return (
            len(self.added)
            + len(self.removed)
            + len(self.drifted)
            + len(self.rewired)
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable payload."""
        payload = asdict(self)
        for name in ("added", "removed", "drifted", "rewired"):
            payload[name] = list(payload[name])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SnapshotDelta":
        """Parse a payload written by :meth:`as_dict`."""
        return cls(
            epoch=int(payload["epoch"]),  # type: ignore[arg-type]
            timestamp_days=float(payload["timestamp_days"]),  # type: ignore[arg-type]
            added=tuple(payload.get("added", ())),  # type: ignore[arg-type]
            removed=tuple(payload.get("removed", ())),  # type: ignore[arg-type]
            drifted=tuple(payload.get("drifted", ())),  # type: ignore[arg-type]
            rewired=tuple(payload.get("rewired", ())),  # type: ignore[arg-type]
        )


def epoch_domain_names(epoch: int, count: int) -> list[str]:
    """Domains of the illegitimate sites born at ``epoch``.

    Pure function of its arguments; the ``-t{epoch}x{i}`` tag keeps
    every epoch's births disjoint from the base plan (no tag) and the
    generation-2 plan (``-v2`` tag).
    """
    if epoch < 1:
        raise ValidationError(f"epoch must be >= 1, got {epoch}")
    stems = lexicon.ILLEGIT_DOMAIN_STEMS
    return [
        f"{stems[i % len(stems)]}-t{epoch}x{i // len(stems)}.net"
        for i in range(count)
    ]


def _fate_draws(seed: int, domain: str, epoch: int) -> np.ndarray:
    """The (death, drift, rewire) uniform draws of one domain at one tick."""
    rng = np.random.default_rng(site_seed(seed, domain, f"tick{epoch}"))
    return rng.random(3)


def plan_deltas(
    config: GeneratorConfig,
    stream: StreamConfig,
    generation: int = 1,
) -> tuple[SnapshotDelta, ...]:
    """Plan the full delta sequence for a corpus.

    Deterministic: each live site's fate at each tick comes from its
    private ``(seed, "tick{epoch}", domain)`` RNG stream, and births
    are named by :func:`epoch_domain_names` — so the plan never depends
    on shard layout, worker count, or the order deltas are applied.

    Returns:
        ``stream.n_ticks`` deltas with epochs ``1..n_ticks``.
    """
    legit, illegit, _hubs = plan_domains(config, generation)
    legit_set = frozenset(legit)
    live: list[str] = list(legit) + list(illegit)
    n_births = int(round(stream.birth_fraction * len(illegit)))
    deltas: list[SnapshotDelta] = []
    for epoch in range(1, stream.n_ticks + 1):
        removed: list[str] = []
        drifted: list[str] = []
        rewired: list[str] = []
        for domain in live:
            draws = _fate_draws(config.seed, domain, epoch)
            is_legit = domain in legit_set
            if not is_legit and draws[0] < stream.death_fraction:
                removed.append(domain)
                continue
            if draws[1] < stream.drift_fraction:
                drifted.append(domain)
            elif not is_legit and draws[2] < stream.rewire_fraction:
                rewired.append(domain)
        added = epoch_domain_names(epoch, n_births)
        removed_set = frozenset(removed)
        live = [d for d in live if d not in removed_set] + added
        deltas.append(
            SnapshotDelta(
                epoch=epoch,
                timestamp_days=epoch * stream.tick_days,
                added=tuple(added),
                removed=tuple(removed),
                drifted=tuple(drifted),
                rewired=tuple(rewired),
            )
        )
    return tuple(deltas)


def write_deltas(
    path: str | Path,
    deltas: tuple[SnapshotDelta, ...] | list[SnapshotDelta],
    stream: StreamConfig,
) -> None:
    """Persist a planned delta stream atomically as JSON."""
    payload = {
        "format": _DELTAS_FORMAT,
        "version": _FORMAT_VERSION,
        "stream": asdict(stream),
        "deltas": [delta.as_dict() for delta in deltas],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=2))


def load_deltas(path: str | Path) -> tuple[tuple[SnapshotDelta, ...], StreamConfig]:
    """Load a delta stream written by :func:`write_deltas`.

    Raises:
        PersistenceError: missing file, malformed JSON, or wrong format.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError as exc:
        raise PersistenceError(f"no delta stream at {path}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"malformed delta stream at {path}") from exc
    if (
        payload.get("format") != _DELTAS_FORMAT
        or payload.get("version") != _FORMAT_VERSION
    ):
        raise PersistenceError(f"not a repro delta stream: {path}")
    deltas = tuple(SnapshotDelta.from_dict(d) for d in payload["deltas"])
    return deltas, StreamConfig(**payload["stream"])


@dataclass(slots=True)
class _SiteVersion:
    """One domain's current materialization in the stream."""

    site: Website
    record: PharmacyRecord
    revision: int = 0
    drifted: bool = False
    born_epoch: int = 0


@dataclass(frozen=True, slots=True)
class AppliedDelta:
    """What one :meth:`StreamCorpus.apply` call actually did.

    ``changed`` lists the domains whose pages differ from the previous
    epoch (added + drifted + rewired) — the re-crawl set.
    """

    epoch: int
    changed: tuple[str, ...]
    removed: tuple[str, ...] = ()
    added: tuple[str, ...] = ()
    drifted: tuple[str, ...] = ()
    rewired: tuple[str, ...] = ()

    @property
    def n_changes(self) -> int:
        """Total per-site changes this delta carried."""
        return len(self.changed) + len(self.removed)


class StreamCorpus:
    """Mutable corpus state: a sharded snapshot plus applied deltas.

    Sites live in insertion order (base shard-major order, then births
    in epoch order).  The *set* of sites after any delta prefix is a
    pure function of ``(config, stream plan)`` — identical no matter
    how many shards or workers built the base snapshot — which is the
    property the ``tests/stream`` equivalence suite pins.

    The corpus doubles as a :class:`~repro.web.host.WebHost`: ``fetch``
    resolves a URL to its owning domain and serves the current page
    bytes, so a crawler pointed at the corpus always sees the state of
    the latest applied epoch.
    """

    def __init__(self, config: GeneratorConfig, generation: int = 1) -> None:
        self._config = config
        self._generation = generation
        self._generator = SyntheticWebGenerator(config)
        _legit, _illegit, hubs = plan_domains(config, generation)
        self._hubs = hubs
        self._state: dict[str, _SiteVersion] = {}
        self._pages: dict[str, dict[str, WebPage]] = {}
        self._epoch = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sharded(cls, corpus: ShardedCorpus) -> "StreamCorpus":
        """Load a sharded snapshot as epoch-0 stream state.

        Streams one shard at a time through the corpus LRU; memory is
        the materialized site set (the stream layer's working set).
        """
        state = cls(corpus.config, generation=corpus.manifest.generation)
        for _, sites, records in corpus.iter_shards():
            for site, record in zip(sites, records):
                state._install(site, record, revision=0, drifted=False, born=0)
        return state

    @classmethod
    def generate(cls, config: GeneratorConfig, generation: int = 1) -> "StreamCorpus":
        """Build epoch-0 state directly from the config (no shard files).

        Site bytes are identical to :func:`~repro.data.sharding.
        write_shards` output — both derive every site from the same
        per-domain RNG streams; only the iteration order differs
        (canonical plan order here, shard-major on disk).
        """
        state = cls(config, generation=generation)
        legit, illegit, _hubs = plan_domains(config, generation)
        for domain in legit:
            state._install(*state._build(domain, 1, 0, False), revision=0,
                           drifted=False, born=0)
        for domain in illegit:
            state._install(*state._build(domain, 0, 0, False), revision=0,
                           drifted=False, born=0)
        return state

    # -- site building ------------------------------------------------------

    def _build(
        self, domain: str, label: int, revision: int, drifted: bool
    ) -> tuple[Website, PharmacyRecord]:
        """Materialize one domain at one revision from its RNG streams."""
        plan = plan_site(
            self._config,
            domain,
            label,
            is_hub=domain in self._hubs,
            hubs=self._hubs,
            generation=self._generation,
            revision=revision,
        )
        purpose = "site" if revision == 0 else f"site:r{revision}"
        rng = np.random.default_rng(
            site_seed(self._config.seed, domain, purpose)
        )
        generation = 2 if drifted else self._generation
        pages, record = self._generator.build_pharmacy_site(
            plan.domain,
            plan.label,
            rng,
            is_hub=plan.is_hub,
            is_member=plan.is_member,
            is_outlier=plan.is_outlier,
            is_asocial=plan.is_asocial,
            is_imitator=plan.is_imitator,
            hub_targets=plan.hub_targets,
            generation=generation,
        )
        return Website(domain=domain, pages=tuple(pages)), record

    def _install(
        self,
        site: Website,
        record: PharmacyRecord,
        *,
        revision: int,
        drifted: bool,
        born: int,
    ) -> None:
        if site.domain in self._state:
            raise DataGenerationError(f"duplicate stream domain: {site.domain}")
        self._state[site.domain] = _SiteVersion(
            site=site,
            record=record,
            revision=revision,
            drifted=drifted,
            born_epoch=born,
        )
        self._pages[site.domain] = {
            normalize_url(page.url): page for page in site.pages
        }

    def _replace(self, domain: str, revision: int, drifted: bool) -> None:
        version = self._state[domain]
        site, record = self._build(domain, version.record.label, revision, drifted)
        version.site = site
        version.record = record
        version.revision = revision
        version.drifted = drifted
        self._pages[domain] = {
            normalize_url(page.url): page for page in site.pages
        }

    # -- delta application --------------------------------------------------

    def apply(self, delta: SnapshotDelta) -> AppliedDelta:
        """Advance the corpus state by one delta.

        Deltas must be applied in epoch order; skipping or repeating an
        epoch raises.  Returns the applied change set (``changed`` is
        the re-crawl list).

        Raises:
            ValidationError: out-of-sequence epoch or a delta touching
                a domain the corpus does not hold.
        """
        if delta.epoch != self._epoch + 1:
            raise ValidationError(
                f"delta epoch {delta.epoch} does not follow corpus epoch "
                f"{self._epoch}"
            )
        for domain in delta.removed:
            if domain not in self._state:
                raise ValidationError(f"cannot remove unknown domain {domain}")
            del self._state[domain]
            del self._pages[domain]
        for domain in delta.drifted:
            version = self._state.get(domain)
            if version is None:
                raise ValidationError(f"cannot drift unknown domain {domain}")
            sticky = version.drifted or version.record.label == 0
            self._replace(domain, version.revision + 1, sticky)
        for domain in delta.rewired:
            version = self._state.get(domain)
            if version is None:
                raise ValidationError(f"cannot rewire unknown domain {domain}")
            self._replace(domain, version.revision + 1, version.drifted)
        for domain in delta.added:
            site, record = self._build(domain, 0, 0, False)
            self._install(
                site, record, revision=0, drifted=False, born=delta.epoch
            )
        self._epoch = delta.epoch
        return AppliedDelta(
            epoch=delta.epoch,
            changed=delta.changed,
            removed=delta.removed,
            added=delta.added,
            drifted=delta.drifted,
            rewired=delta.rewired,
        )

    # -- corpus views -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch of the last applied delta (0 = base snapshot)."""
        return self._epoch

    @property
    def config(self) -> GeneratorConfig:
        """The generator config rooting all determinism."""
        return self._config

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, domain: str) -> bool:
        return domain in self._state

    def domains(self) -> tuple[str, ...]:
        """Live domains in insertion order."""
        return tuple(self._state)

    def iter_sites(self) -> Iterator[Website]:
        """Live sites in insertion order."""
        for version in self._state.values():
            yield version.site

    def site_for(self, domain: str) -> Website:
        """The current site of ``domain``.

        Raises:
            MissingKeyError: unknown domain.
        """
        version = self._state.get(domain)
        if version is None:
            raise MissingKeyError(domain)
        return version.site

    def record_for(self, domain: str) -> PharmacyRecord:
        """Current ground truth of ``domain``.

        Raises:
            MissingKeyError: unknown domain.
        """
        version = self._state.get(domain)
        if version is None:
            raise MissingKeyError(domain)
        return version.record

    def revision_of(self, domain: str) -> int:
        """Content revision of ``domain`` (0 = base snapshot build).

        Raises:
            MissingKeyError: unknown domain.
        """
        version = self._state.get(domain)
        if version is None:
            raise MissingKeyError(domain)
        return version.revision

    def labels(self) -> dict[str, int]:
        """domain -> ground-truth label for every live site."""
        return {d: v.record.label for d, v in self._state.items()}

    def seed_url(self, domain: str) -> str:
        """The crawl seed URL of a live domain."""
        return f"https://www.{self.site_for(domain).domain}/"

    # -- WebHost protocol ---------------------------------------------------

    def fetch(self, url: str) -> WebPage | None:
        """Serve the current page at ``url`` (``None`` when unknown).

        Dead domains 404 (return ``None``) the moment their removal
        delta is applied, so stale affiliate links to taken-down hubs
        behave like the real web.
        """
        try:
            domain = endpoint(url)
            key = normalize_url(url)
        except InvalidURLError:
            return None
        pages = self._pages.get(domain)
        if pages is None:
            # Generated URLs carry a www. prefix; endpoint() already
            # strips it, so a second probe is only needed for hosts
            # whose registrable domain itself contains a subdomain.
            return None
        return pages.get(key)
