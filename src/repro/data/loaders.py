"""Dataset construction: generate the synthetic web and crawl it.

:func:`make_dataset_pair` is the one-stop loader reproducing Table 1:
it generates the two snapshots (six "months" apart), crawls every
pharmacy domain with the BFS crawler (max 200 pages, like the paper's
crawler4j setup), and returns two :class:`PharmacyCorpus` objects.
"""

from __future__ import annotations

from repro.data.corpus import PharmacyCorpus
from repro.data.synthesis import (
    GeneratorConfig,
    SyntheticWebGenerator,
    WebSnapshot,
)
from repro.web.crawler import DEFAULT_MAX_PAGES, Crawler

__all__ = ["crawl_snapshot", "make_dataset", "make_dataset_pair"]


def crawl_snapshot(
    snapshot: WebSnapshot, max_pages: int = DEFAULT_MAX_PAGES
) -> PharmacyCorpus:
    """Crawl every pharmacy in ``snapshot`` into a labelled corpus."""
    crawler = Crawler(snapshot.host, max_pages=max_pages)
    sites = tuple(
        crawler.crawl_site(f"https://www.{record.domain}/")
        for record in snapshot.records
    )
    auxiliary = tuple(
        crawler.crawl_site(f"https://www.{domain}/")
        for domain in snapshot.auxiliary_domains
    )
    gray = tuple(
        crawler.crawl_site(f"https://www.{domain}/")
        for domain in snapshot.gray_domains
    )
    return PharmacyCorpus(
        name=snapshot.name,
        sites=sites,
        records=snapshot.records,
        auxiliary_sites=auxiliary,
        gray_sites=gray,
    )


def make_dataset(
    config: GeneratorConfig | None = None,
    max_pages: int = DEFAULT_MAX_PAGES,
) -> PharmacyCorpus:
    """Generate and crawl a single snapshot (Dataset 1)."""
    generator = SyntheticWebGenerator(config)
    return crawl_snapshot(generator.generate_snapshot(), max_pages=max_pages)


def make_dataset_pair(
    config: GeneratorConfig | None = None,
    max_pages: int = DEFAULT_MAX_PAGES,
) -> tuple[PharmacyCorpus, PharmacyCorpus]:
    """Generate and crawl both snapshots (Dataset 1, Dataset 2).

    Dataset 2 contains the same legitimate domains re-crawled and an
    entirely new set of illegitimate domains (Table 1 semantics).
    """
    generator = SyntheticWebGenerator(config)
    snap1, snap2 = generator.generate_pair()
    return (
        crawl_snapshot(snap1, max_pages=max_pages),
        crawl_snapshot(snap2, max_pages=max_pages),
    )
