"""Dataset construction: generate the synthetic web and crawl it.

:func:`make_dataset_pair` is the one-stop loader reproducing Table 1:
it generates the two snapshots (six "months" apart), crawls every
pharmacy domain with the BFS crawler (max 200 pages, like the paper's
crawler4j setup), and returns two :class:`PharmacyCorpus` objects.

Acquisition is fault-tolerant by request: with ``quarantine=True`` a
pharmacy whose crawl fails unrecoverably (dead seed after retries) is
recorded as a :class:`~repro.data.corpus.QuarantinedSite` and dropped
from the working set instead of aborting the whole run — the partial
corpus stays aligned and usable, and the quarantine list tells
operators what to re-crawl.
"""

from __future__ import annotations

from repro.data.corpus import PharmacyCorpus, QuarantinedSite
from repro.data.synthesis import (
    GeneratorConfig,
    SyntheticWebGenerator,
    WebSnapshot,
)
from repro.exceptions import CrawlError
from repro.web.crawler import DEFAULT_MAX_PAGES, Crawler
from repro.web.host import WebHost
from repro.web.resilience.retry import RetryPolicy
from repro.web.site import Website

__all__ = ["crawl_snapshot", "make_dataset", "make_dataset_pair"]


def crawl_snapshot(
    snapshot: WebSnapshot,
    max_pages: int = DEFAULT_MAX_PAGES,
    host: WebHost | None = None,
    retry_policy: RetryPolicy | None = None,
    quarantine: bool = False,
) -> PharmacyCorpus:
    """Crawl every pharmacy in ``snapshot`` into a labelled corpus.

    Args:
        snapshot: the generated web snapshot to crawl.
        max_pages: per-site page cap.
        host: override the snapshot's host — e.g. a
            :class:`~repro.web.resilience.FaultInjectingWebHost`
            wrapping it, for soak tests and benchmarks.
        retry_policy: retry transient fetch failures during
            acquisition.
        quarantine: when true, a pharmacy whose crawl raises
            :class:`~repro.exceptions.CrawlError` is quarantined (site
            *and* record dropped, failure recorded) instead of
            propagating; auxiliary and gray sites are always
            best-effort under this flag.

    Returns:
        The crawled corpus; check
        :attr:`~repro.data.corpus.PharmacyCorpus.quarantined` for
        acquisition losses.

    Raises:
        CrawlError: a pharmacy seed was unfetchable and ``quarantine``
            is false.
    """
    crawler = Crawler(
        host if host is not None else snapshot.host,
        max_pages=max_pages,
        retry_policy=retry_policy,
    )

    sites = []
    records = []
    quarantined: list[QuarantinedSite] = []
    for record in snapshot.records:
        url = f"https://www.{record.domain}/"
        if not quarantine:
            sites.append(crawler.crawl_site(url))
            records.append(record)
            continue
        try:
            sites.append(crawler.crawl_site(url))
            records.append(record)
        except CrawlError as exc:
            quarantined.append(
                QuarantinedSite(
                    domain=record.domain,
                    reason=str(exc),
                    error_type=type(exc).__name__,
                )
            )

    def best_effort(domains: tuple[str, ...]) -> tuple[Website, ...]:
        crawled = []
        for domain in domains:
            if not quarantine:
                crawled.append(crawler.crawl_site(f"https://www.{domain}/"))
                continue
            try:
                crawled.append(crawler.crawl_site(f"https://www.{domain}/"))
            except CrawlError as exc:
                quarantined.append(
                    QuarantinedSite(
                        domain=domain,
                        reason=str(exc),
                        error_type=type(exc).__name__,
                    )
                )
        return tuple(crawled)

    return PharmacyCorpus(
        name=snapshot.name,
        sites=tuple(sites),
        records=tuple(records),
        auxiliary_sites=best_effort(snapshot.auxiliary_domains),
        gray_sites=best_effort(snapshot.gray_domains),
        quarantined=tuple(quarantined),
    )


def make_dataset(
    config: GeneratorConfig | None = None,
    max_pages: int = DEFAULT_MAX_PAGES,
) -> PharmacyCorpus:
    """Generate and crawl a single snapshot (Dataset 1)."""
    generator = SyntheticWebGenerator(config)
    return crawl_snapshot(generator.generate_snapshot(), max_pages=max_pages)


def make_dataset_pair(
    config: GeneratorConfig | None = None,
    max_pages: int = DEFAULT_MAX_PAGES,
) -> tuple[PharmacyCorpus, PharmacyCorpus]:
    """Generate and crawl both snapshots (Dataset 1, Dataset 2).

    Dataset 2 contains the same legitimate domains re-crawled and an
    entirely new set of illegitimate domains (Table 1 semantics).
    """
    generator = SyntheticWebGenerator(config)
    snap1, snap2 = generator.generate_pair()
    return (
        crawl_snapshot(snap1, max_pages=max_pages),
        crawl_snapshot(snap2, max_pages=max_pages),
    )
