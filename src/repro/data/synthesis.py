"""Synthetic pharmacy-web generator.

The paper's corpus is a proprietary crawl from a verification company.
This module builds its closest synthetic equivalent: a labelled web of
online pharmacies whose text and link structure carry exactly the class
signals the paper documents (see DESIGN.md, Substitutions):

* word-usage mixtures per class (illegitimate sites over-use lifestyle
  drug brands, discount marketing, and "no prescription" language;
  legitimate sites carry more health content, store presence, and
  verification-seal text);
* link-target distributions per class matching Table 11 (legitimate →
  facebook/twitter/fda.gov/...; illegitimate → wikipedia/wordpress/
  affiliate billing hosts);
* affiliate networks: most illegitimate pharmacies link to a small set
  of hub pharmacies, which are themselves illegitimate sites in the
  working set (Section 6.3.2);
* ranking outliers: a few illegitimate sites that avoid the blatant
  signals and stay out of affiliate networks, and a few legitimate
  sites whose "new prescriptions online" business reads scam-adjacent
  (Section 6.4);
* temporal drift: a second snapshot six months later keeps the same
  legitimate sites (re-crawled) and replaces every illegitimate domain
  with a new one whose vocabulary has drifted toward legitimate-looking
  store-presence language (Section 6.5 / Tables 16–17).

Everything is deterministic given the seed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace

import numpy as np

from repro.data import lexicon
from repro.exceptions import DataGenerationError, MissingKeyError
from repro.web.host import InMemoryWebHost
from repro.web.page import WebPage

logger = logging.getLogger(__name__)

__all__ = [
    "GeneratorConfig",
    "PharmacyRecord",
    "WebSnapshot",
    "SyntheticWebGenerator",
    "legit_domain_names",
    "illegit_domain_names",
]

# ---------------------------------------------------------------------------
# Class word-mixture profiles.  Keys are lexicon pool names; values are
# sampling probabilities (normalized at build time).
# ---------------------------------------------------------------------------

_LEGIT_MIX: dict[str, float] = {
    "HEALTH_CONTENT": 0.22,
    "PHARMACY_COMMERCE": 0.16,
    "STORE_PRESENCE": 0.14,
    "VERIFICATION_SEALS": 0.08,
    "PRESCRIPTION_POLICY_LEGIT": 0.07,
    "GENERIC_DRUGS": 0.10,
    "LIFESTYLE_DRUGS": 0.01,
    "SCAM_MARKETING": 0.015,
    "NO_PRESCRIPTION_MARKETING": 0.005,
    "DRIFT_MARKETING": 0.02,
    "COMMON_FILLER": 0.18,
}

_ILLEGIT_MIX: dict[str, float] = {
    "HEALTH_CONTENT": 0.055,
    "PHARMACY_COMMERCE": 0.10,
    "STORE_PRESENCE": 0.03,
    "VERIFICATION_SEALS": 0.01,
    "PRESCRIPTION_POLICY_LEGIT": 0.01,
    "GENERIC_DRUGS": 0.08,
    "LIFESTYLE_DRUGS": 0.21,
    "SCAM_MARKETING": 0.20,
    "NO_PRESCRIPTION_MARKETING": 0.09,
    "DRIFT_MARKETING": 0.008,
    "COMMON_FILLER": 0.207,
}

#: Snapshot-2 drift: new illegitimate sites *rotate* their vocabulary —
#: they tone down the blatant "no prescription" pitch, adopt
#: trust-imitating marketing (DRIFT_MARKETING: "trusted", "certified",
#: "canadian", ...), and keep the sales machinery.  The result stays
#: internally separable (New-New ~ Old-Old) but degrades a model
#: trained on the old vocabulary (Old-New legitimate precision drops,
#: Table 17), because the drift terms were class-neutral in Dataset 1.
_ILLEGIT_DRIFT_MIX: dict[str, float] = {
    "HEALTH_CONTENT": 0.06,
    "PHARMACY_COMMERCE": 0.10,
    "STORE_PRESENCE": 0.05,
    "VERIFICATION_SEALS": 0.025,
    "PRESCRIPTION_POLICY_LEGIT": 0.012,
    "GENERIC_DRUGS": 0.08,
    "LIFESTYLE_DRUGS": 0.18,
    "SCAM_MARKETING": 0.16,
    "NO_PRESCRIPTION_MARKETING": 0.035,
    "DRIFT_MARKETING": 0.13,
    "COMMON_FILLER": 0.17,
}

# Link-target weight tables.  Order follows Table 11 so the popularity
# ranking reproduces the paper's lists.
_LEGIT_LINK_WEIGHTS: dict[str, float] = {
    "facebook.com": 0.95,
    "twitter.com": 0.90,
    "fda.gov": 0.80,
    "google.com": 0.72,
    "youtube.com": 0.64,
    "nih.gov": 0.56,
    "adobe.com": 0.48,
    "cdc.gov": 0.40,
    "doubleclick.net": 0.32,
    "nabp.net": 0.28,
    "mayoclinic.org": 0.10,
    "webmd.com": 0.08,
}

#: Link table for "asocial" legitimate pharmacies: only mundane
#: infrastructure targets, none of the high-trust government/social
#: domains, and fewer links overall (see GeneratorConfig).
_ASOCIAL_LEGIT_LINK_WEIGHTS: dict[str, float] = {
    "google.com": 0.35,
    "doubleclick.net": 0.30,
    "adobe.com": 0.25,
    "statcounter.com": 0.30,
    "youtube.com": 0.05,
    "wordpress.org": 0.25,
    "wikipedia.org": 0.20,
}

#: Extra targets mixed in for trust-imitating illegitimate sites.
_TRUST_IMITATION_LINK_WEIGHTS: dict[str, float] = {
    "fda.gov": 0.9,
    "facebook.com": 0.75,
    "twitter.com": 0.6,
    "nih.gov": 0.4,
    "cdc.gov": 0.3,
    "nabp.net": 0.25,
}

_ILLEGIT_LINK_WEIGHTS: dict[str, float] = {
    "wikipedia.org": 0.85,
    "wordpress.org": 0.80,
    "drugs.com": 0.70,
    "securebilling-page.com": 0.62,
    "rxwinners.com": 0.55,
    "google.com": 0.48,
    "providesupport.com": 0.40,
    "euro-med-store.com": 0.34,
    "statcounter.com": 0.28,
    "cipla.com": 0.22,
    "medicalnewstoday.com": 0.08,
    "facebook.com": 0.05,
}


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of the synthetic web.

    The defaults describe the *shape* of the paper's corpus; the sizes
    are set by the caller (see :mod:`repro.core.config` presets).

    Attributes:
        n_legitimate: number of legitimate pharmacies.
        n_illegitimate: number of illegitimate pharmacies (snapshot 1).
        n_illegitimate_snapshot2: illegitimate count of the second
            crawl; ``None`` copies ``n_illegitimate``.  Table 1 has
            1292 vs 1275 — illegitimate pharmacies disappear over the
            six months.
        min_pages / max_pages: per-site page-count range.
        min_terms_per_page / max_terms_per_page: page-length range.
        n_affiliate_hubs: illegitimate hub pharmacies (spokes link to
            them).  Must be <= n_illegitimate.
        affiliate_member_fraction: fraction of non-hub illegitimate
            sites that join an affiliate network.
        illegit_outlier_fraction: fraction of illegitimate sites that
            imitate legitimate text and avoid affiliate networks.
        legit_outlier_fraction: fraction of legitimate sites whose
            new-prescription business reads scam-adjacent.
        legit_asocial_fraction: fraction of legitimate sites with a
            weak web presence — few external links, none to the
            high-trust government/social domains.  These drive the
            imperfect legitimate recall of the paper's network
            classifier (Table 13: 0.73).
        illegit_trust_imitation_fraction: fraction of illegitimate
            sites that fake trust signals by linking to fda.gov and
            social networks (drives legitimate-precision noise in the
            network classifier).
        external_links_per_page: mean external links per page (Poisson).
        n_health_portals: auxiliary NON-pharmacy portal sites that link
            to legitimate pharmacies, which in turn link back — giving
            the network signal at graph distance > 1 (the paper's
            future-work extension (a)).  0 disables them.
        n_spam_directories: auxiliary spam link directories pointing to
            illegitimate pharmacies (the bad-side counterpart).
        n_potentially_legitimate: gray-zone pharmacies (Section 6.1:
            "do not fully adhere to the ... policies, but are probably
            not illegitimate").  They are kept OUT of the labelled
            working set, mirroring the paper's datasets, and surface as
            ``gray_records`` for ranking/triage studies.
        seed: master RNG seed.
    """

    n_legitimate: int = 40
    n_illegitimate: int = 294
    n_illegitimate_snapshot2: int | None = None
    min_pages: int = 4
    max_pages: int = 10
    min_terms_per_page: int = 80
    max_terms_per_page: int = 180
    n_affiliate_hubs: int = 6
    affiliate_member_fraction: float = 0.75
    illegit_outlier_fraction: float = 0.03
    legit_outlier_fraction: float = 0.05
    legit_asocial_fraction: float = 0.28
    illegit_trust_imitation_fraction: float = 0.07
    external_links_per_page: float = 1.4
    n_health_portals: int = 0
    n_spam_directories: int = 0
    n_potentially_legitimate: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_legitimate < 1 or self.n_illegitimate < 1:
            raise DataGenerationError("need at least one site per class")
        if (
            self.n_illegitimate_snapshot2 is not None
            and self.n_illegitimate_snapshot2 < 1
        ):
            raise DataGenerationError("n_illegitimate_snapshot2 must be >= 1")
        if self.n_affiliate_hubs > self.n_illegitimate:
            raise DataGenerationError(
                "n_affiliate_hubs cannot exceed n_illegitimate"
            )
        if not 1 <= self.min_pages <= self.max_pages:
            raise DataGenerationError("invalid page range")
        if not 1 <= self.min_terms_per_page <= self.max_terms_per_page:
            raise DataGenerationError("invalid terms-per-page range")
        for name in (
            "affiliate_member_fraction",
            "illegit_outlier_fraction",
            "legit_outlier_fraction",
            "legit_asocial_fraction",
            "illegit_trust_imitation_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DataGenerationError(f"{name} must be in [0, 1], got {value}")
        if self.external_links_per_page < 0:
            raise DataGenerationError("external_links_per_page must be >= 0")
        if self.n_health_portals < 0 or self.n_spam_directories < 0:
            raise DataGenerationError("auxiliary site counts must be >= 0")
        if self.n_potentially_legitimate < 0:
            raise DataGenerationError("n_potentially_legitimate must be >= 0")


@dataclass(frozen=True, slots=True)
class PharmacyRecord:
    """Ground truth for one generated pharmacy.

    Attributes:
        domain: registrable domain.
        label: 1 legitimate, 0 illegitimate.
        is_affiliate_hub: hub of an affiliate network.
        is_affiliate_member: spoke linking to a hub.
        is_outlier: deliberately atypical for its class (Section 6.4).
        is_asocial: legitimate site with a weak link presence.
        is_trust_imitator: illegitimate site faking trust links.
    """

    domain: str
    label: int
    is_affiliate_hub: bool = False
    is_affiliate_member: bool = False
    is_outlier: bool = False
    is_asocial: bool = False
    is_trust_imitator: bool = False


@dataclass(frozen=True, slots=True)
class WebSnapshot:
    """One generated crawl snapshot: the hosted web plus ground truth.

    ``auxiliary_domains`` are hosted non-pharmacy sites (health portals
    and spam directories) that are *not* part of the working set P but
    participate in the link graph when the future-work network
    extension is enabled.  ``gray_domains`` are hosted "potentially
    legitimate" pharmacies (Section 6.1), also outside P.
    """

    name: str
    host: InMemoryWebHost
    records: tuple[PharmacyRecord, ...] = field(default_factory=tuple)
    auxiliary_domains: tuple[str, ...] = field(default_factory=tuple)
    gray_domains: tuple[str, ...] = field(default_factory=tuple)

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(r.domain for r in self.records)

    @property
    def labels(self) -> tuple[int, ...]:
        return tuple(r.label for r in self.records)

    def record_for(self, domain: str) -> PharmacyRecord:
        for record in self.records:
            if record.domain == domain:
                return record
        raise MissingKeyError(domain)


def legit_domain_names(n: int) -> list[str]:
    """The first ``n`` legitimate pharmacy domains, deterministically.

    Pure function of ``n``: prefixes of this list are stable as ``n``
    grows, which is what lets sharded generation enumerate domains
    without materializing a snapshot.
    """
    stems = lexicon.LEGIT_DOMAIN_STEMS
    return [
        f"{stems[i % len(stems)]}-pharmacy{i // len(stems)}.com"
        for i in range(n)
    ]


def illegit_domain_names(
    n: int, n_hubs: int, generation: int = 1
) -> tuple[list[str], set[str]]:
    """The first ``n`` illegitimate domains plus the hub subset.

    Hubs lead the list; generation 2 domains carry a ``-v2`` tag so the
    two snapshots are disjoint.  Pure function of its arguments.
    """
    stems = lexicon.ILLEGIT_DOMAIN_STEMS
    hub_stems = lexicon.AFFILIATE_HUB_STEMS
    tag = "" if generation == 1 else "-v2"
    hubs = []
    for i in range(min(n_hubs, n)):
        stem = hub_stems[i % len(hub_stems)]
        suffix = "" if i < len(hub_stems) else str(i // len(hub_stems))
        hubs.append(f"{stem}{tag}{suffix}.com")
    plain = [
        f"{stems[i % len(stems)]}{tag}{i // len(stems)}.net"
        for i in range(n - len(hubs))
    ]
    return hubs + plain, set(hubs)


class SyntheticWebGenerator:
    """Generate one or two labelled pharmacy-web snapshots.

    Usage::

        gen = SyntheticWebGenerator(GeneratorConfig(seed=7))
        snap1, snap2 = gen.generate_pair()

    ``snap2`` models the six-months-later crawl: identical legitimate
    sites (fresh page text, same character), entirely new illegitimate
    domains with drifted vocabulary.
    """

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self._config = config or GeneratorConfig()
        self._pools = {
            name: np.array(getattr(lexicon, name), dtype=object)
            for name in _LEGIT_MIX
        }

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    # -- public API ---------------------------------------------------------

    def generate_snapshot(self, name: str = "dataset1") -> WebSnapshot:
        """Generate the first-crawl snapshot."""
        rng = np.random.default_rng(self._config.seed)
        return self._build_snapshot(name, rng, generation=1)

    def generate_pair(self) -> tuple[WebSnapshot, WebSnapshot]:
        """Generate (Dataset 1, Dataset 2) per Table 1 semantics.

        Dataset 2 has the same legitimate domains (re-crawled) and a
        disjoint set of illegitimate domains with drifted text.
        """
        rng1 = np.random.default_rng(self._config.seed)
        snap1 = self._build_snapshot("dataset1", rng1, generation=1)
        rng2 = np.random.default_rng(self._config.seed + 1_000_003)
        snap2 = self._build_snapshot("dataset2", rng2, generation=2)
        return snap1, snap2

    def build_pharmacy_site(
        self,
        domain: str,
        label: int,
        rng: np.random.Generator,
        *,
        is_hub: bool = False,
        is_member: bool = False,
        is_outlier: bool = False,
        is_asocial: bool = False,
        is_imitator: bool = False,
        hub_targets: tuple[str, ...] = (),
        generation: int = 1,
    ) -> tuple[list[WebPage], PharmacyRecord]:
        """Build one pharmacy's pages + ground truth from its own RNG.

        This is the per-site core of :meth:`_build_snapshot`, exposed so
        the sharded generator (:mod:`repro.data.sharding`) can produce
        site ``domain`` from a domain-derived RNG — independent of every
        other site, hence identical at any shard count or worker count.

        Args:
            domain: the pharmacy's registrable domain.
            label: 1 legitimate, 0 illegitimate.
            rng: the site's private RNG (seed derived from the domain).
            is_hub / is_member / is_outlier / is_asocial / is_imitator:
                role flags (see :class:`PharmacyRecord`).
            hub_targets: affiliate hub domains this site links to
                (members only).
            generation: 1 = first crawl vocabulary, 2 = drifted.
        """
        if label == 1:
            mix = self._site_mixture(
                rng,
                base=_LEGIT_MIX,
                blend=_ILLEGIT_MIX if is_outlier else None,
                blend_weight=0.40 if is_outlier else 0.0,
            )
            pages = self._make_site_pages(
                rng,
                domain=domain,
                mix=mix,
                link_weights=(
                    _ASOCIAL_LEGIT_LINK_WEIGHTS
                    if is_asocial
                    else _LEGIT_LINK_WEIGHTS
                ),
                hub_targets=(),
                link_rate_scale=0.35 if is_asocial else 1.0,
            )
            record = PharmacyRecord(
                domain=domain,
                label=1,
                is_outlier=is_outlier,
                is_asocial=is_asocial,
            )
            return pages, record

        base_illegit = _ILLEGIT_DRIFT_MIX if generation == 2 else _ILLEGIT_MIX
        mix = self._site_mixture(
            rng,
            base=base_illegit,
            blend=_LEGIT_MIX if is_outlier else None,
            blend_weight=0.55 if is_outlier else 0.0,
        )
        link_weights = dict(_ILLEGIT_LINK_WEIGHTS)
        if is_imitator:
            link_weights.update(_TRUST_IMITATION_LINK_WEIGHTS)
        pages = self._make_site_pages(
            rng,
            domain=domain,
            mix=mix,
            link_weights=link_weights,
            hub_targets=() if is_outlier else hub_targets,
        )
        record = PharmacyRecord(
            domain=domain,
            label=0,
            is_affiliate_hub=is_hub,
            is_affiliate_member=is_member,
            is_outlier=is_outlier,
            is_trust_imitator=is_imitator,
        )
        return pages, record

    # -- snapshot assembly -----------------------------------------------------

    def _build_snapshot(
        self, name: str, rng: np.random.Generator, generation: int
    ) -> WebSnapshot:
        cfg = self._config
        host = InMemoryWebHost()
        records: list[PharmacyRecord] = []

        legit_domains = self._legit_domains()
        illegit_domains, hub_domains = self._illegit_domains(generation)

        # Decide outliers and affiliate membership deterministically
        # from the snapshot RNG.
        n_illegit_outliers = int(round(cfg.illegit_outlier_fraction * len(illegit_domains)))
        n_legit_outliers = int(round(cfg.legit_outlier_fraction * len(legit_domains)))
        illegit_outlier_set = set(
            rng.choice(
                [d for d in illegit_domains if d not in hub_domains],
                size=min(
                    n_illegit_outliers,
                    len(illegit_domains) - len(hub_domains),
                ),
                replace=False,
            ).tolist()
        )
        legit_outlier_set = set(
            rng.choice(legit_domains, size=n_legit_outliers, replace=False).tolist()
        )
        asocial_set = set(
            rng.choice(
                legit_domains,
                size=int(round(cfg.legit_asocial_fraction * len(legit_domains))),
                replace=False,
            ).tolist()
        )
        imitator_candidates = [
            d
            for d in illegit_domains
            if d not in hub_domains and d not in illegit_outlier_set
        ]
        n_imitators = min(
            len(imitator_candidates),
            int(round(cfg.illegit_trust_imitation_fraction * len(illegit_domains))),
        )
        imitator_set = set(
            rng.choice(imitator_candidates, size=n_imitators, replace=False).tolist()
        )

        portal_domains = self._aux_domains(
            lexicon.HEALTH_PORTAL_STEMS, cfg.n_health_portals, "org"
        )
        directory_domains = self._aux_domains(
            lexicon.SPAM_DIRECTORY_STEMS, cfg.n_spam_directories, "net"
        )

        # Legitimate sites.
        for domain in legit_domains:
            is_outlier = domain in legit_outlier_set
            is_asocial = domain in asocial_set
            mix = self._site_mixture(
                rng,
                base=_LEGIT_MIX,
                blend=_ILLEGIT_MIX if is_outlier else None,
                blend_weight=0.40 if is_outlier else 0.0,
            )
            portal_targets: tuple[str, ...] = ()
            if portal_domains and not is_asocial:
                n_portals = int(
                    rng.integers(1, min(2, len(portal_domains)) + 1)
                )
                portal_targets = tuple(
                    rng.choice(portal_domains, size=n_portals, replace=False)
                )
            pages = self._make_site_pages(
                rng,
                domain=domain,
                mix=mix,
                link_weights=(
                    _ASOCIAL_LEGIT_LINK_WEIGHTS if is_asocial else _LEGIT_LINK_WEIGHTS
                ),
                hub_targets=portal_targets,
                link_rate_scale=0.35 if is_asocial else 1.0,
            )
            for page in pages:
                host.add(page)
            records.append(
                PharmacyRecord(
                    domain=domain,
                    label=1,
                    is_outlier=is_outlier,
                    is_asocial=is_asocial,
                )
            )

        # Illegitimate sites.
        non_hub = [d for d in illegit_domains if d not in hub_domains]
        members = set(
            rng.choice(
                non_hub,
                size=int(round(cfg.affiliate_member_fraction * len(non_hub))),
                replace=False,
            ).tolist()
        ) - illegit_outlier_set

        base_illegit = _ILLEGIT_DRIFT_MIX if generation == 2 else _ILLEGIT_MIX
        for domain in illegit_domains:
            is_hub = domain in hub_domains
            is_member = domain in members
            is_outlier = domain in illegit_outlier_set
            mix = self._site_mixture(
                rng,
                base=base_illegit,
                blend=_LEGIT_MIX if is_outlier else None,
                blend_weight=0.55 if is_outlier else 0.0,
            )
            hub_targets: tuple[str, ...] = ()
            if is_member:
                n_hubs = min(len(hub_domains), 1 + int(rng.integers(0, 2)))
                hub_targets = tuple(
                    rng.choice(sorted(hub_domains), size=n_hubs, replace=False)
                )
            link_weights = dict(_ILLEGIT_LINK_WEIGHTS)
            if domain in imitator_set:
                link_weights.update(_TRUST_IMITATION_LINK_WEIGHTS)
            extra_targets = () if is_outlier else hub_targets
            if directory_domains and not is_outlier and rng.random() < 0.6:
                extra_targets = extra_targets + (
                    str(rng.choice(directory_domains)),
                )
            pages = self._make_site_pages(
                rng,
                domain=domain,
                mix=mix,
                link_weights=link_weights,
                hub_targets=extra_targets,
            )
            for page in pages:
                host.add(page)
            records.append(
                PharmacyRecord(
                    domain=domain,
                    label=0,
                    is_affiliate_hub=is_hub,
                    is_affiliate_member=is_member,
                    is_outlier=is_outlier,
                    is_trust_imitator=domain in imitator_set,
                )
            )

        # Auxiliary non-pharmacy sites (future-work extension (a)).
        for domain in portal_domains:
            n_targets = min(len(legit_domains), 6)
            targets = rng.choice(legit_domains, size=n_targets, replace=False)
            for page in self._make_aux_pages(
                rng,
                domain=domain,
                pharmacy_targets=tuple(targets),
                endpoint_targets=("fda.gov", "nih.gov", "cdc.gov"),
                pools=("HEALTH_CONTENT", "COMMON_FILLER"),
            ):
                host.add(page)
        illegit_non_outliers = [
            d for d in illegit_domains if d not in illegit_outlier_set
        ]
        for domain in directory_domains:
            n_targets = min(len(illegit_non_outliers), 10)
            targets = rng.choice(
                illegit_non_outliers, size=n_targets, replace=False
            )
            for page in self._make_aux_pages(
                rng,
                domain=domain,
                pharmacy_targets=tuple(targets),
                endpoint_targets=("wordpress.org", "statcounter.com"),
                pools=("SCAM_MARKETING", "COMMON_FILLER"),
            ):
                host.add(page)

        # Gray-zone "potentially legitimate" pharmacies (Section 6.1).
        gray_domains = self._aux_domains(
            lexicon.POTENTIALLY_LEGIT_STEMS,
            cfg.n_potentially_legitimate,
            "com",
        )
        for domain in gray_domains:
            mix = self._site_mixture(
                rng, base=_LEGIT_MIX, blend=_ILLEGIT_MIX, blend_weight=0.45
            )
            gray_links = dict(_LEGIT_LINK_WEIGHTS)
            # Policy-violating but not criminal: thinner trust links,
            # some bargain-web infrastructure.
            gray_links.pop("nabp.net", None)
            gray_links["statcounter.com"] = 0.25
            gray_links["wordpress.org"] = 0.20
            for page in self._make_site_pages(
                rng,
                domain=domain,
                mix=mix,
                link_weights=gray_links,
                hub_targets=(),
                link_rate_scale=0.7,
            ):
                host.add(page)

        logger.debug(
            "snapshot %s: %d pharmacies (%d legit), %d auxiliary, %d gray, "
            "%d hosted pages",
            name,
            len(records),
            sum(r.label for r in records),
            len(portal_domains) + len(directory_domains),
            len(gray_domains),
            len(host),
        )
        return WebSnapshot(
            name=name,
            host=host,
            records=tuple(records),
            auxiliary_domains=tuple(portal_domains) + tuple(directory_domains),
            gray_domains=tuple(gray_domains),
        )

    @staticmethod
    def _aux_domains(stems: tuple[str, ...], count: int, tld: str) -> list[str]:
        domains = []
        for i in range(count):
            stem = stems[i % len(stems)]
            suffix = "" if i < len(stems) else str(i // len(stems))
            domains.append(f"{stem}{suffix}.{tld}")
        return domains

    def _make_aux_pages(
        self,
        rng: np.random.Generator,
        domain: str,
        pharmacy_targets: tuple[str, ...],
        endpoint_targets: tuple[str, ...],
        pools: tuple[str, ...],
    ) -> list[WebPage]:
        """Pages of a non-pharmacy site linking to pharmacy sites."""
        cfg = self._config
        n_pages = int(rng.integers(2, 5))
        base = f"https://www.{domain}"
        urls = [f"{base}/"] + [f"{base}/page{i}" for i in range(1, n_pages)]
        words = np.concatenate([self._pools[name] for name in pools])
        pages: list[WebPage] = []
        per_page = max(1, len(pharmacy_targets) // n_pages)
        for i, url in enumerate(urls):
            n_terms = int(
                rng.integers(cfg.min_terms_per_page, cfg.max_terms_per_page + 1)
            )
            text = " ".join(rng.choice(words, size=n_terms).tolist())
            links: list[str] = []
            if n_pages > 1:
                links.append(urls[(i + 1) % n_pages])
            start = i * per_page
            for target in pharmacy_targets[start : start + per_page]:
                links.append(f"https://www.{target}/")
            for endpoint_domain in endpoint_targets:
                if rng.random() < 0.5:
                    links.append(f"https://www.{endpoint_domain}/")
            pages.append(WebPage(url=url, text=text, links=tuple(links)))
        return pages

    # -- domain naming -------------------------------------------------------------

    def _legit_domains(self) -> list[str]:
        return legit_domain_names(self._config.n_legitimate)

    def _illegit_domains(self, generation: int) -> tuple[list[str], set[str]]:
        """Illegitimate domains + hub subset; disjoint across generations."""
        cfg = self._config
        n_illegit = cfg.n_illegitimate
        if generation == 2 and cfg.n_illegitimate_snapshot2 is not None:
            n_illegit = cfg.n_illegitimate_snapshot2
        return illegit_domain_names(
            n_illegit, cfg.n_affiliate_hubs, generation=generation
        )

    # -- text generation -----------------------------------------------------------

    def _site_mixture(
        self,
        rng: np.random.Generator,
        base: dict[str, float],
        blend: dict[str, float] | None,
        blend_weight: float,
    ) -> np.ndarray:
        """Per-site word distribution over the concatenated pools.

        Starts from the class mixture, optionally blends toward the
        other class (outliers), perturbs with a Dirichlet draw for
        site-to-site diversity, then expands pool probabilities to
        per-word probabilities.
        """
        names = list(_LEGIT_MIX)
        weights = np.array([base[n] for n in names], dtype=np.float64)
        if blend is not None and blend_weight > 0.0:
            other = np.array([blend[n] for n in names], dtype=np.float64)
            weights = (1.0 - blend_weight) * weights + blend_weight * other
        weights /= weights.sum()
        weights = rng.dirichlet(weights * 60.0)  # mild per-site jitter
        word_probs: list[np.ndarray] = []
        for w, name in zip(weights, names):
            pool = self._pools[name]
            word_probs.append(np.full(len(pool), w / len(pool)))
        probs = np.concatenate(word_probs)
        return probs / probs.sum()

    def _all_words(self) -> np.ndarray:
        return np.concatenate([self._pools[name] for name in _LEGIT_MIX])

    def _make_site_pages(
        self,
        rng: np.random.Generator,
        domain: str,
        mix: np.ndarray,
        link_weights: dict[str, float],
        hub_targets: tuple[str, ...],
        link_rate_scale: float = 1.0,
    ) -> list[WebPage]:
        cfg = self._config
        n_pages = int(rng.integers(cfg.min_pages, cfg.max_pages + 1))
        words = self._all_words()
        base = f"https://www.{domain}"
        urls = [f"{base}/"] + [f"{base}/page{i}" for i in range(1, n_pages)]

        # Choose this site's external link targets once (sites are
        # consistent in what they link to), then spread them over pages.
        targets = list(link_weights)
        target_w = np.array([link_weights[t] for t in targets])
        target_w = target_w / target_w.sum()

        pages: list[WebPage] = []
        for i, url in enumerate(urls):
            n_terms = int(
                rng.integers(cfg.min_terms_per_page, cfg.max_terms_per_page + 1)
            )
            tokens = rng.choice(words, size=n_terms, p=mix)
            text = " ".join(tokens.tolist())
            if i == 0:
                text = f"welcome to {domain.split('.')[0]} online pharmacy. {text}"

            links: list[str] = []
            # Internal navigation: next page + up to 2 random pages.
            if n_pages > 1:
                links.append(urls[(i + 1) % n_pages])
                for _ in range(2):
                    links.append(urls[int(rng.integers(0, n_pages))])
            # External links.
            n_ext = int(rng.poisson(cfg.external_links_per_page * link_rate_scale))
            for _ in range(n_ext):
                target = str(rng.choice(targets, p=target_w))
                links.append(f"https://www.{target}/")
            # Affiliate spokes link to their hubs from most pages.
            for hub in hub_targets:
                if rng.random() < 0.8:
                    links.append(f"https://www.{hub}/")
            pages.append(WebPage(url=url, text=text, links=tuple(links)))
        return pages


def scaled_config(config: GeneratorConfig, factor: float) -> GeneratorConfig:
    """Return a copy of ``config`` with class sizes scaled by ``factor``.

    Keeps the class ratio; useful for quick-running test variants.
    """
    if factor <= 0:
        raise DataGenerationError(f"factor must be > 0, got {factor}")
    return replace(
        config,
        n_legitimate=max(2, int(round(config.n_legitimate * factor))),
        n_illegitimate=max(2, int(round(config.n_illegitimate * factor))),
        n_affiliate_hubs=max(
            1, min(config.n_affiliate_hubs, int(round(config.n_illegitimate * factor)) // 4)
        ),
    )
