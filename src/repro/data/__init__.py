"""Data substrate: lexicon, synthetic web generation, corpora, loaders."""

from repro.data.corpus import (
    CorpusSummary,
    ILLEGITIMATE,
    LEGITIMATE,
    PharmacyCorpus,
    QuarantinedSite,
)
from repro.data.loaders import crawl_snapshot, make_dataset, make_dataset_pair
from repro.data.synthesis import (
    GeneratorConfig,
    PharmacyRecord,
    SyntheticWebGenerator,
    WebSnapshot,
    scaled_config,
)

__all__ = [
    "CorpusSummary",
    "ILLEGITIMATE",
    "LEGITIMATE",
    "PharmacyCorpus",
    "QuarantinedSite",
    "crawl_snapshot",
    "make_dataset",
    "make_dataset_pair",
    "GeneratorConfig",
    "PharmacyRecord",
    "SyntheticWebGenerator",
    "WebSnapshot",
    "scaled_config",
]
