"""Labelled pharmacy corpora: the crawled working set P with its oracle.

A :class:`PharmacyCorpus` bundles the crawled :class:`Website` objects
with their ground-truth labels — the oracle function O of the problem
statement (Section 3.2).  Labels: 1 = legitimate (P+), 0 = illegitimate
(P-).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthesis import PharmacyRecord
from repro.exceptions import DataGenerationError
from repro.web.site import Website

__all__ = [
    "PharmacyCorpus",
    "CorpusSummary",
    "QuarantinedSite",
    "LEGITIMATE",
    "ILLEGITIMATE",
]

LEGITIMATE = 1
ILLEGITIMATE = 0


@dataclass(frozen=True, slots=True)
class QuarantinedSite:
    """A domain excluded from the working set because its crawl failed
    unrecoverably (dead seed, exhausted retries, open circuit).

    Quarantine keeps acquisition failures *visible*: the corpus stays
    aligned and usable, while operators can re-crawl or hand-review the
    quarantined domains later instead of silently losing them.

    Attributes:
        domain: the pharmacy's registrable domain.
        reason: human-readable failure description.
        error_type: the exception class name that caused the exclusion.
    """

    domain: str
    reason: str
    error_type: str


@dataclass(frozen=True, slots=True)
class CorpusSummary:
    """The Table 1 row for one dataset."""

    name: str
    n_examples: int
    n_legitimate: int
    n_illegitimate: int

    @property
    def legitimate_fraction(self) -> float:
        return self.n_legitimate / self.n_examples if self.n_examples else 0.0

    @property
    def illegitimate_fraction(self) -> float:
        return self.n_illegitimate / self.n_examples if self.n_examples else 0.0


class PharmacyCorpus:
    """The working set P: crawled sites, labels, and ground truth.

    Args:
        name: dataset name ("dataset1", "dataset2").
        sites: crawled websites, one per pharmacy.
        records: generator ground truth aligned with ``sites``.
        auxiliary_sites: crawled NON-pharmacy sites (health portals,
            spam directories) that are not part of P but can enrich the
            network graph (the paper's future-work extension (a)).
        gray_sites: crawled "potentially legitimate" pharmacies
            (Section 6.1) — outside P, no labels, but rankable.
        quarantined: domains dropped because their crawl failed
            unrecoverably (see :class:`QuarantinedSite`).
    """

    def __init__(
        self,
        name: str,
        sites: tuple[Website, ...],
        records: tuple[PharmacyRecord, ...],
        auxiliary_sites: tuple[Website, ...] = (),
        gray_sites: tuple[Website, ...] = (),
        quarantined: tuple[QuarantinedSite, ...] = (),
    ) -> None:
        if len(sites) != len(records):
            raise DataGenerationError(
                f"sites and records disagree: {len(sites)} vs {len(records)}"
            )
        for site, record in zip(sites, records):
            if site.domain != record.domain:
                raise DataGenerationError(
                    f"site/record misalignment: {site.domain} vs {record.domain}"
                )
        self._name = name
        self._sites = sites
        self._records = records
        self._auxiliary_sites = auxiliary_sites
        self._gray_sites = gray_sites
        self._quarantined = quarantined
        self._labels = np.array([r.label for r in records], dtype=np.int64)
        self._by_domain = {r.domain: i for i, r in enumerate(records)}

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self):
        return iter(self._sites)

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def sites(self) -> tuple[Website, ...]:
        return self._sites

    @property
    def records(self) -> tuple[PharmacyRecord, ...]:
        return self._records

    @property
    def auxiliary_sites(self) -> tuple[Website, ...]:
        """Non-pharmacy sites available for the network extension."""
        return self._auxiliary_sites

    @property
    def gray_sites(self) -> tuple[Website, ...]:
        """Unlabelled "potentially legitimate" pharmacies (§6.1)."""
        return self._gray_sites

    @property
    def quarantined(self) -> tuple[QuarantinedSite, ...]:
        """Domains excluded because their crawl failed unrecoverably."""
        return self._quarantined

    @property
    def labels(self) -> np.ndarray:
        """Ground-truth labels (copy)."""
        return self._labels.copy()

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(site.domain for site in self._sites)

    def oracle(self, domain: str) -> int:
        """The oracle O(p): ground-truth label of a pharmacy domain.

        Raises:
            KeyError: unknown domain.
        """
        return int(self._labels[self._by_domain[domain]])

    def site_for(self, domain: str) -> Website:
        """The crawled website of ``domain``."""
        return self._sites[self._by_domain[domain]]

    def record_for(self, domain: str) -> PharmacyRecord:
        """The ground-truth record of ``domain``."""
        return self._records[self._by_domain[domain]]

    def subset(self, indices) -> "PharmacyCorpus":
        """A new corpus containing only ``indices`` (row order kept)."""
        idx = np.asarray(indices, dtype=np.int64)
        return PharmacyCorpus(
            name=self._name,
            sites=tuple(self._sites[i] for i in idx),
            records=tuple(self._records[i] for i in idx),
            auxiliary_sites=self._auxiliary_sites,
            gray_sites=self._gray_sites,
            quarantined=self._quarantined,
        )

    def summary(self) -> CorpusSummary:
        """The dataset's Table 1 row."""
        n_legit = int(np.sum(self._labels == LEGITIMATE))
        return CorpusSummary(
            name=self._name,
            n_examples=len(self._sites),
            n_legitimate=n_legit,
            n_illegitimate=len(self._sites) - n_legit,
        )
