"""Sharded synthetic corpora: deterministic generation, lazy loading.

The single-snapshot generator (:class:`~repro.data.synthesis.
SyntheticWebGenerator`) materializes every page of every site in one
process — fine at the paper's ~1.5k pharmacies, impossible at the 10^6
domains ROADMAP item 2 targets.  This module grows the same synthetic
web *sharded*:

* **Stable placement** — a domain's shard is ``sha256(domain) mod K``
  (:func:`shard_of`), never Python's per-process salted ``hash``.
* **Per-site determinism** — every site is built from its own RNG whose
  seed derives from ``(master seed, domain)`` (:func:`site_seed`), and
  its role flags (outlier / affiliate member / trust imitator / …) come
  from per-domain uniform draws against the configured fractions
  (:func:`plan_site`).  No site's bytes depend on any other site, so
  the union of all shards is bit-identical at any shard count K and
  any worker count — the property pinned by
  ``tests/data/test_sharding.py``.  (Role counts are therefore
  *statistical* rather than the exact rounded counts the in-memory
  snapshot generator draws; the two paths are separate determinism
  schemes and are not byte-compatible with each other.)
* **Streamed storage** — each shard is one JSON-lines file of
  :func:`repro.io.site_record_to_row` rows written atomically, plus a
  ``manifest.json`` carrying the generator config, so readers can
  re-derive the domain plan without touching site data.
* **Lazy reading** — :class:`ShardedCorpus` opens shards on demand with
  a small LRU of parsed shards, so ``get(domain)`` on a million-site
  corpus loads exactly one shard, and block-wise pipelines stream
  ``iter_shards()`` holding one shard in memory at a time.

Generation fans out over shards via :func:`repro.perf.pmap` — each
worker writes only its own shard files, no shared state.
"""

from __future__ import annotations

import hashlib
import json
import logging
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from functools import partial
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.data.synthesis import (
    GeneratorConfig,
    PharmacyRecord,
    SyntheticWebGenerator,
    illegit_domain_names,
    legit_domain_names,
)
from repro.devtools.sanitizers import sanitizes
from repro.exceptions import MissingKeyError, ValidationError
from repro.io import (
    PersistenceError,
    atomic_write,
    site_record_from_row,
    site_record_to_row,
)
from repro.perf.parallel import pmap
from repro.web.site import Website

logger = logging.getLogger(__name__)

__all__ = [
    "MANIFEST_FILENAME",
    "SitePlan",
    "ShardManifest",
    "ShardedCorpus",
    "stable_hash",
    "shard_of",
    "site_seed",
    "plan_domains",
    "plan_site",
    "shard_filename",
    "write_shards",
]

MANIFEST_FILENAME = "manifest.json"

_SHARD_FORMAT = "repro-shard"
_MANIFEST_FORMAT = "repro-shard-manifest"
_FORMAT_VERSION = 1


def stable_hash(text: str) -> int:
    """Process-stable 64-bit hash (SHA-256 prefix).

    Python's builtin ``hash`` is salted per process, which would move
    domains between shards from run to run; this never changes.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_of(domain: str, n_shards: int) -> int:
    """The shard that owns ``domain`` in a ``n_shards``-way layout.

    Raises:
        ValidationError: for a non-positive shard count.
    """
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    return stable_hash(domain) % n_shards


def site_seed(master_seed: int, domain: str, purpose: str = "site") -> int:
    """Seed of one site's private RNG stream.

    Derived from ``(master seed, purpose, domain)`` so each domain's
    text/link draws and its role draws are independent streams, each a
    pure function of the master seed — the root of shard- and
    worker-count invariance.
    """
    digest = hashlib.sha256(
        f"{master_seed}:{purpose}:{domain}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True, slots=True)
class SitePlan:
    """One domain's deterministic generation plan (label + roles)."""

    domain: str
    label: int
    is_hub: bool = False
    is_member: bool = False
    is_outlier: bool = False
    is_asocial: bool = False
    is_imitator: bool = False
    hub_targets: tuple[str, ...] = ()


def plan_domains(
    config: GeneratorConfig, generation: int = 1
) -> tuple[list[str], list[str], tuple[str, ...]]:
    """Canonical domain plan: (legit, illegit, sorted hub domains).

    Pure function of the config — both the shard writers and
    :class:`ShardedCorpus` re-derive it instead of persisting 10^6
    domain strings.
    """
    n_illegit = config.n_illegitimate
    if generation == 2 and config.n_illegitimate_snapshot2 is not None:
        n_illegit = config.n_illegitimate_snapshot2
    legit = legit_domain_names(config.n_legitimate)
    illegit, hubs = illegit_domain_names(
        n_illegit, config.n_affiliate_hubs, generation=generation
    )
    return legit, illegit, tuple(sorted(hubs))


def plan_site(
    config: GeneratorConfig,
    domain: str,
    label: int,
    *,
    is_hub: bool = False,
    hubs: tuple[str, ...] = (),
    generation: int = 1,
    revision: int = 0,
) -> SitePlan:
    """Deterministic role assignment for one domain.

    Draws come from the domain's private ``"role"`` RNG stream in a
    fixed order, so the plan depends on nothing but ``(config.seed,
    domain)``.  Fractions are interpreted per-site (each site joins a
    role with the configured probability), which converges to the
    snapshot generator's exact rounded counts as the corpus grows.

    ``revision`` selects the delta-stream rebuild of the same domain
    (:mod:`repro.data.deltas`): revision 0 is the base snapshot stream
    (bit-identical to shard rows), revision ``r > 0`` draws fresh roles
    from the ``"role:r{r}"`` stream so a rewired affiliate can land on
    different hubs without disturbing any other site.
    """
    purpose = "role" if revision == 0 else f"role:r{revision}"
    rng = np.random.default_rng(site_seed(config.seed, domain, purpose))
    draws = rng.random(4)
    if label == 1:
        return SitePlan(
            domain=domain,
            label=1,
            is_outlier=bool(draws[0] < config.legit_outlier_fraction),
            is_asocial=bool(draws[1] < config.legit_asocial_fraction),
        )
    if is_hub:
        return SitePlan(domain=domain, label=0, is_hub=True)
    is_outlier = bool(draws[0] < config.illegit_outlier_fraction)
    is_member = not is_outlier and bool(
        draws[1] < config.affiliate_member_fraction
    )
    is_imitator = not is_outlier and bool(
        draws[2] < config.illegit_trust_imitation_fraction
    )
    hub_targets: tuple[str, ...] = ()
    if is_member and hubs:
        # Mirror the snapshot generator's 1-or-2 hub links per member.
        n_links = min(len(hubs), 1 + int(draws[3] < 0.5))
        picks = rng.choice(len(hubs), size=n_links, replace=False)
        hub_targets = tuple(hubs[int(i)] for i in sorted(picks))
    return SitePlan(
        domain=domain,
        label=0,
        is_member=is_member,
        is_outlier=is_outlier,
        is_imitator=is_imitator,
        hub_targets=hub_targets,
    )


def shard_filename(shard_index: int) -> str:
    """On-disk name of one shard's JSON-lines file."""
    return f"shard-{shard_index:05d}.jsonl"


def _bucket_domains(
    config: GeneratorConfig, n_shards: int, generation: int
) -> tuple[list[list[tuple[str, int]]], tuple[str, ...]]:
    """Per-shard ``(domain, label)`` lists in canonical corpus order."""
    legit, illegit, hubs = plan_domains(config, generation)
    buckets: list[list[tuple[str, int]]] = [[] for _ in range(n_shards)]
    for domain in legit:
        buckets[shard_of(domain, n_shards)].append((domain, 1))
    for domain in illegit:
        buckets[shard_of(domain, n_shards)].append((domain, 0))
    return buckets, hubs


def _build_planned_site(
    generator: SyntheticWebGenerator,
    plan: SitePlan,
    generation: int,
) -> tuple[Website, PharmacyRecord]:
    """Materialize one planned site from its domain-derived RNG."""
    rng = np.random.default_rng(
        site_seed(generator.config.seed, plan.domain, "site")
    )
    pages, record = generator.build_pharmacy_site(
        plan.domain,
        plan.label,
        rng,
        is_hub=plan.is_hub,
        is_member=plan.is_member,
        is_outlier=plan.is_outlier,
        is_asocial=plan.is_asocial,
        is_imitator=plan.is_imitator,
        hub_targets=plan.hub_targets,
        generation=generation,
    )
    return Website(domain=plan.domain, pages=tuple(pages)), record


def _write_shard_worker(
    item: tuple[int, tuple[tuple[str, int], ...]],
    *,
    config: GeneratorConfig,
    out_dir: str,
    n_shards: int,
    hubs: tuple[str, ...],
    generation: int,
    name: str,
) -> dict[str, object]:
    """Generate and atomically write one shard file (pmap worker).

    Pure per shard: touches only its own output file, derives every
    byte from ``(config, domain)`` — safe at any worker count.
    """
    shard_index, assigned = item
    generator = SyntheticWebGenerator(config)
    hub_set = set(hubs)
    path = Path(out_dir) / shard_filename(shard_index)
    n_pages = 0

    def write(fh) -> None:
        nonlocal n_pages
        header = {
            "format": _SHARD_FORMAT,
            "version": _FORMAT_VERSION,
            "name": name,
            "shard": shard_index,
            "n_shards": n_shards,
            "domains": [domain for domain, _ in assigned],
        }
        fh.write(json.dumps(header) + "\n")
        for domain, label in assigned:
            plan = plan_site(
                config,
                domain,
                label,
                is_hub=domain in hub_set,
                hubs=hubs,
                generation=generation,
            )
            site, record = _build_planned_site(generator, plan, generation)
            fh.write(json.dumps(site_record_to_row(site, record)) + "\n")
            n_pages += len(site.pages)

    atomic_write(path, "w", write, encoding="utf-8")
    return {
        "shard": shard_index,
        "file": shard_filename(shard_index),
        "n_sites": len(assigned),
        "n_pages": n_pages,
    }


@dataclass(frozen=True, slots=True)
class ShardManifest:
    """Metadata of one sharded corpus directory.

    ``config`` round-trips the :class:`GeneratorConfig` so readers can
    re-derive the canonical domain plan without opening any shard.
    """

    name: str
    n_shards: int
    n_sites: int
    n_legitimate: int
    n_illegitimate: int
    generation: int
    config: dict[str, object]
    shards: tuple[dict[str, object], ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable manifest payload (with format header)."""
        payload = asdict(self)
        payload["format"] = _MANIFEST_FORMAT
        payload["version"] = _FORMAT_VERSION
        payload["shards"] = list(self.shards)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ShardManifest":
        """Parse a manifest payload written by :meth:`as_dict`.

        Raises:
            PersistenceError: wrong format marker or version.
        """
        if (
            payload.get("format") != _MANIFEST_FORMAT
            or payload.get("version") != _FORMAT_VERSION
        ):
            raise PersistenceError("not a repro shard manifest")
        return cls(
            name=str(payload["name"]),
            n_shards=int(payload["n_shards"]),
            n_sites=int(payload["n_sites"]),
            n_legitimate=int(payload["n_legitimate"]),
            n_illegitimate=int(payload["n_illegitimate"]),
            generation=int(payload["generation"]),
            config=dict(payload["config"]),
            shards=tuple(dict(s) for s in payload["shards"]),
        )

    @property
    def generator_config(self) -> GeneratorConfig:
        """The corpus's :class:`GeneratorConfig`, reconstructed."""
        return GeneratorConfig(**self.config)


def write_shards(
    config: GeneratorConfig,
    out_dir: str | Path,
    n_shards: int,
    *,
    name: str = "dataset1",
    generation: int = 1,
    jobs: int | None = None,
) -> ShardManifest:
    """Generate a corpus as ``n_shards`` shard files plus a manifest.

    Args:
        config: generator knobs; ``config.seed`` roots all determinism.
        out_dir: destination directory (created if missing).
        n_shards: shard count K; placement is ``sha256(domain) mod K``.
        name: dataset name recorded in the manifest.
        generation: 1 = first crawl, 2 = drifted snapshot.
        jobs: shard-level parallelism per :func:`repro.perf.pmap`
            (``None``/1 serial, 0 = CPU count).

    Returns:
        The written :class:`ShardManifest`.
    """
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    buckets, hubs = _bucket_domains(config, n_shards, generation)
    worker = partial(
        _write_shard_worker,
        config=config,
        out_dir=str(out),
        n_shards=n_shards,
        hubs=hubs,
        generation=generation,
        name=name,
    )
    shard_stats = pmap(
        worker,
        [(k, tuple(bucket)) for k, bucket in enumerate(buckets)],
        jobs=jobs,
    )
    n_legit = sum(1 for bucket in buckets for _, label in bucket if label == 1)
    n_sites = sum(len(bucket) for bucket in buckets)
    manifest = ShardManifest(
        name=name,
        n_shards=n_shards,
        n_sites=n_sites,
        n_legitimate=n_legit,
        n_illegitimate=n_sites - n_legit,
        generation=generation,
        config=asdict(config),
        shards=tuple(shard_stats),
    )
    atomic_write(
        out / MANIFEST_FILENAME,
        "w",
        lambda fh: json.dump(manifest.as_dict(), fh, indent=2),
        encoding="utf-8",
    )
    logger.info(
        "wrote sharded corpus %s: %d sites in %d shards at %s",
        name,
        n_sites,
        n_shards,
        out,
    )
    return manifest


@dataclass(slots=True)
class _LoadedShard:
    """One parsed shard held in the reader's LRU."""

    sites: tuple[Website, ...]
    records: tuple[PharmacyRecord, ...]
    by_domain: dict[str, int]


class _LazySiteSequence(Sequence[Website]):
    """Read-only global view over all shards' sites, opened lazily.

    Index ``i`` maps to shard ``k`` via cumulative shard sizes; only
    the shards a caller actually touches are parsed, so chunked
    consumers (e.g. ``verify_sites`` slicing) stream one shard at a
    time through the corpus LRU.
    """

    def __init__(self, corpus: "ShardedCorpus") -> None:
        self._corpus = corpus
        sizes = [int(s["n_sites"]) for s in corpus.manifest.shards]
        self._offsets = list(np.cumsum([0] + sizes))

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            # The Sequence protocol requires IndexError here (iteration
            # and slicing rely on it).
            raise IndexError(index)  # repro-lint: disable=R001
        shard_index = bisect_right(self._offsets, i) - 1
        shard = self._corpus._shard(shard_index)
        return shard.sites[i - self._offsets[shard_index]]


class ShardedCorpus:
    """Lazy reader over a directory written by :func:`write_shards`.

    Holds at most ``max_open_shards`` parsed shards (LRU), so lookups
    and shard-streaming passes run in O(shard) memory regardless of
    corpus size.  ``shard_opens`` counts actual file parses — the
    lazy-serving tests pin that a single-domain lookup opens exactly
    one shard.

    Args:
        root: the sharded corpus directory.
        max_open_shards: LRU capacity in shards.
    """

    def __init__(self, root: str | Path, max_open_shards: int = 2) -> None:
        if max_open_shards < 1:
            raise ValidationError(
                f"max_open_shards must be >= 1, got {max_open_shards}"
            )
        self._root = Path(root)
        manifest_path = self._root / MANIFEST_FILENAME
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError as exc:
            raise PersistenceError(
                f"no shard manifest at {manifest_path}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"malformed shard manifest at {manifest_path}"
            ) from exc
        self._manifest = ShardManifest.from_dict(payload)
        self._max_open = max_open_shards
        self._cache: OrderedDict[int, _LoadedShard] = OrderedDict()
        self.shard_opens = 0

    # -- metadata ----------------------------------------------------------

    @property
    def root(self) -> Path:
        """The corpus directory."""
        return self._root

    @property
    def manifest(self) -> ShardManifest:
        """The parsed manifest."""
        return self._manifest

    @property
    def name(self) -> str:
        """Dataset name recorded at write time."""
        return self._manifest.name

    @property
    def n_shards(self) -> int:
        """Shard count K of the on-disk layout."""
        return self._manifest.n_shards

    @property
    def config(self) -> GeneratorConfig:
        """The generator config the corpus was synthesized from."""
        return self._manifest.generator_config

    def __len__(self) -> int:
        return self._manifest.n_sites

    def __contains__(self, domain: str) -> bool:
        return self.get(domain) is not None

    # -- shard access -------------------------------------------------------

    @sanitizes("*")
    def _parse_shard(self, shard_index: int) -> _LoadedShard:
        """Parse one shard file into typed sites and records.

        Sanitizer: every row passes through
        :func:`repro.io.site_record_from_row`, which coerces fields to
        typed frozen dataclasses; malformed or format-skewed input
        raises :class:`PersistenceError` instead of flowing onward.
        """
        path = self._root / str(
            self._manifest.shards[shard_index]["file"]
        )
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError as exc:
            raise PersistenceError(f"missing shard file: {path}") from exc
        if not lines:
            raise PersistenceError(f"empty shard file: {path}")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"malformed shard header: {path}") from exc
        if (
            header.get("format") != _SHARD_FORMAT
            or header.get("version") != _FORMAT_VERSION
        ):
            raise PersistenceError(f"unsupported shard format: {path}")
        sites: list[Website] = []
        records: list[PharmacyRecord] = []
        for line_no, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"malformed shard row at {path}:{line_no}"
                ) from exc
            site, record = site_record_from_row(row)
            sites.append(site)
            records.append(record)
        return _LoadedShard(
            sites=tuple(sites),
            records=tuple(records),
            by_domain={r.domain: i for i, r in enumerate(records)},
        )

    def _shard(self, shard_index: int) -> _LoadedShard:
        """The parsed shard, through the LRU of open shards."""
        if not 0 <= shard_index < self.n_shards:
            raise ValidationError(f"no such shard: {shard_index}")
        cached = self._cache.get(shard_index)
        if cached is not None:
            self._cache.move_to_end(shard_index)
            return cached
        shard = self._parse_shard(shard_index)
        self.shard_opens += 1
        self._cache[shard_index] = shard
        while len(self._cache) > self._max_open:
            self._cache.popitem(last=False)
        return shard

    # -- domain-keyed lookups (one shard open each) -------------------------

    def get(self, domain: str) -> Website | None:
        """The site of ``domain``, or ``None`` when absent.

        Opens only the one shard that ``sha256(domain)`` maps to.
        """
        shard = self._shard(shard_of(domain, self.n_shards))
        i = shard.by_domain.get(domain)
        return None if i is None else shard.sites[i]

    def site_for(self, domain: str) -> Website:
        """The site of ``domain``; raises :class:`MissingKeyError`."""
        site = self.get(domain)
        if site is None:
            raise MissingKeyError(domain)
        return site

    def record_for(self, domain: str) -> PharmacyRecord:
        """Ground truth of ``domain``; raises :class:`MissingKeyError`."""
        shard = self._shard(shard_of(domain, self.n_shards))
        i = shard.by_domain.get(domain)
        if i is None:
            raise MissingKeyError(domain)
        return shard.records[i]

    def oracle(self, domain: str) -> int:
        """The oracle O(p): ground-truth label of ``domain``."""
        return self.record_for(domain).label

    # -- streaming views ----------------------------------------------------

    def iter_shards(
        self,
    ) -> Iterator[tuple[int, tuple[Website, ...], tuple[PharmacyRecord, ...]]]:
        """Yield ``(shard_index, sites, records)`` one shard at a time."""
        for k in range(self.n_shards):
            shard = self._shard(k)
            yield k, shard.sites, shard.records

    def iter_sites(self) -> Iterator[Website]:
        """All sites in global (shard-major) order, streamed."""
        for _, sites, _ in self.iter_shards():
            yield from sites

    def domains(self) -> tuple[str, ...]:
        """All domains in global (shard-major) order, from headers only."""
        out: list[str] = []
        for entry in self._manifest.shards:
            path = self._root / str(entry["file"])
            with open(path, encoding="utf-8") as fh:
                header = json.loads(fh.readline())
            out.extend(header["domains"])
        return tuple(out)

    def sites_view(self) -> Sequence[Website]:
        """Lazy, indexable, sliceable view over every site.

        Drop-in for APIs that expect a sequence of sites (e.g.
        ``PharmacyVerifier.verify_sites``) without materializing the
        corpus: only the shards behind the touched indices are opened.
        """
        return _LazySiteSequence(self)
