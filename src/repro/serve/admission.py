"""Admission control: the bulkhead and the request deadline.

Overload policy in one sentence: bound the work in progress, bound the
work waiting, and shed the rest *immediately* with a retry hint.  A
:class:`Bulkhead` wraps the verifier backend with a concurrency bound
(``max_concurrent`` requests verifying at once) and a bounded wait
queue (``max_queue`` requests parked for a slot); anything beyond that
is shed — the server answers 503 + ``Retry-After`` in microseconds
instead of letting queues grow without bound until every request times
out (the classic overload collapse).

:class:`Deadline` is the request-budget token threaded from the HTTP
edge down into :meth:`~repro.core.verifier.PharmacyVerifier.verify_sites`:
an absolute expiry on an injected clock, so an overloaded server
returns partial, degraded-but-honest results rather than hanging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.web.resilience.clock import Clock

__all__ = ["AdmissionStats", "Bulkhead", "Deadline"]


@dataclass(frozen=True, slots=True)
class Deadline:
    """An absolute request expiry on an injected clock.

    Attributes:
        at: clock reading (``clock.monotonic()`` seconds) at which the
            request's budget is exhausted.
        clock: the time source the expiry is measured against.
    """

    at: float
    clock: Clock

    @classmethod
    def after(cls, budget: float, clock: Clock) -> "Deadline":
        """The deadline ``budget`` seconds from now on ``clock``."""
        if budget <= 0:
            raise ValidationError(f"budget must be > 0, got {budget}")
        return cls(at=clock.monotonic() + budget, clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.at - self.clock.monotonic()

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.remaining() <= 0.0


@dataclass(slots=True)
class AdmissionStats:
    """Counters of one :class:`Bulkhead` instance.

    ``max_in_flight``/``max_waiting`` are high-water marks; the shed
    counters split rejections by cause (queue full vs. queue wait
    timed out).
    """

    admitted: int = 0
    shed_queue_full: int = 0
    shed_timeout: int = 0
    max_in_flight: int = 0
    max_waiting: int = field(default=0)

    @property
    def shed_total(self) -> int:
        """All rejections regardless of cause."""
        return self.shed_queue_full + self.shed_timeout

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for metrics and reports)."""
        return {
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
            "shed_total": self.shed_total,
            "max_in_flight": self.max_in_flight,
            "max_waiting": self.max_waiting,
        }


class Bulkhead:
    """Concurrency bound + bounded wait queue around a backend.

    The invariant (pinned by the property tests in ``tests/serve``):
    at any instant at most ``max_concurrent`` callers hold the
    bulkhead and at most ``max_queue`` are waiting for it; everyone
    else is rejected without blocking.

    Waiting uses real thread wakeups (:class:`threading.Condition`), so
    ``timeout`` is wall time — the one deliberately physical knob in
    the serving layer, since parked OS threads cannot run on virtual
    time.

    Args:
        max_concurrent: callers allowed inside at once (>= 1).
        max_queue: callers allowed to wait for a slot (>= 0).
    """

    def __init__(self, max_concurrent: int = 8, max_queue: int = 16) -> None:
        if max_concurrent < 1:
            raise ValidationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 0:
            raise ValidationError(f"max_queue must be >= 0, got {max_queue}")
        self._max_concurrent = max_concurrent
        self._max_queue = max_queue
        self._condition = threading.Condition()
        self._in_flight = 0
        self._waiting = 0
        self.stats = AdmissionStats()

    @property
    def max_concurrent(self) -> int:
        """The concurrency bound."""
        return self._max_concurrent

    @property
    def max_queue(self) -> int:
        """The wait-queue bound."""
        return self._max_queue

    @property
    def in_flight(self) -> int:
        """Callers currently holding the bulkhead."""
        with self._condition:
            return self._in_flight

    def try_acquire(self, timeout: float = 0.0) -> bool:
        """Claim a slot, waiting up to ``timeout`` seconds in the queue.

        Returns:
            ``True`` when admitted (caller **must** :meth:`release`),
            ``False`` when shed (queue full, or no slot freed in time).
        """
        if timeout < 0:
            raise ValidationError(f"timeout must be >= 0, got {timeout}")
        with self._condition:
            if self._in_flight < self._max_concurrent:
                self._admit_locked()
                return True
            if self._waiting >= self._max_queue or timeout <= 0.0:
                self.stats.shed_queue_full += 1
                return False
            self._waiting += 1
            self.stats.max_waiting = max(self.stats.max_waiting, self._waiting)
            try:
                got = self._condition.wait_for(
                    lambda: self._in_flight < self._max_concurrent,
                    timeout=timeout,
                )
            finally:
                self._waiting -= 1
            if not got:
                self.stats.shed_timeout += 1
                return False
            self._admit_locked()
            return True

    def _admit_locked(self) -> None:
        self._in_flight += 1
        self.stats.admitted += 1
        self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`try_acquire`."""
        with self._condition:
            if self._in_flight <= 0:
                raise ValidationError("release() without a matching acquire")
            self._in_flight -= 1
            self._condition.notify()

    def drain(self, timeout: float) -> bool:
        """Wait until nothing is in flight (for graceful shutdown).

        Returns:
            ``True`` when the bulkhead emptied within ``timeout``
            seconds, ``False`` if stragglers remain.
        """
        if timeout < 0:
            raise ValidationError(f"timeout must be >= 0, got {timeout}")
        with self._condition:
            return self._condition.wait_for(
                lambda: self._in_flight == 0, timeout=timeout
            )
