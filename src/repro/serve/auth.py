"""Per-key tiered authentication for the serving layer.

Clients present an API key in the ``X-API-Key`` header; the
:class:`Authenticator` maps it to a :class:`Tier`, which bundles every
per-client serving knob: the sliding-window rate quota, the maximum
batch size, and the default request/batch deadline budgets.  Keyless
requests fall back to a deliberately stingy ``anonymous`` tier (one
bucket per client address) unless anonymous access is disabled.

Key material never round-trips: the rate-limit principal derived for a
key is ``<tier>:<sha256 prefix>``, so logs, metrics, and headers can
name the bucket without echoing the credential.

Tier and key tables load from a JSON config file (``repro serve
--tier-config``)::

    {
      "tiers": {
        "partner": {"rate_limit": 3000, "window_seconds": 60,
                     "max_batch": 100, "request_budget": 5.0,
                     "batch_budget": 30.0}
      },
      "keys": {"prn-live-123": "partner"},
      "allow_anonymous": true
    }

Unknown fields are rejected; tiers referenced by keys must exist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ConfigurationError, ValidationError

__all__ = ["Tier", "AuthResult", "Authenticator", "DEFAULT_TIERS", "ANONYMOUS_TIER"]

#: Name of the keyless fallback tier.
ANONYMOUS_TIER = "anonymous"


@dataclass(frozen=True, slots=True)
class Tier:
    """One service tier: quota, batch, and deadline policy.

    Attributes:
        name: tier identifier (also reported in responses).
        rate_limit: admissions per sliding window.
        window_seconds: rate-limit window length.
        max_batch: maximum domains per ``/v1/verify/batch`` request.
        request_budget: default deadline (seconds) for single verifies.
        batch_budget: default deadline (seconds) for batch verifies.
    """

    name: str
    rate_limit: int
    window_seconds: float
    max_batch: int
    request_budget: float
    batch_budget: float

    def __post_init__(self) -> None:
        if self.rate_limit < 1:
            raise ValidationError(f"rate_limit must be >= 1, got {self.rate_limit}")
        if self.window_seconds <= 0:
            raise ValidationError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if self.max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.request_budget <= 0 or self.batch_budget <= 0:
            raise ValidationError("deadline budgets must be > 0")


#: Built-in tiers, stingiest first.  Deployments override via config.
DEFAULT_TIERS: dict[str, Tier] = {
    "anonymous": Tier(
        name="anonymous",
        rate_limit=30,
        window_seconds=60.0,
        max_batch=5,
        request_budget=2.0,
        batch_budget=5.0,
    ),
    "standard": Tier(
        name="standard",
        rate_limit=300,
        window_seconds=60.0,
        max_batch=25,
        request_budget=5.0,
        batch_budget=15.0,
    ),
    "partner": Tier(
        name="partner",
        rate_limit=3000,
        window_seconds=60.0,
        max_batch=100,
        request_budget=5.0,
        batch_budget=30.0,
    ),
    "internal": Tier(
        name="internal",
        rate_limit=1_000_000,
        window_seconds=60.0,
        max_batch=1000,
        request_budget=30.0,
        batch_budget=120.0,
    ),
}


@dataclass(frozen=True, slots=True)
class AuthResult:
    """A resolved request identity.

    Attributes:
        principal: rate-limit bucket identity (never the raw key).
        tier: the policy that applies to this request.
        authenticated: whether a valid API key was presented.
    """

    principal: str
    tier: Tier
    authenticated: bool


def _key_principal(tier_name: str, api_key: str) -> str:
    digest = hashlib.sha256(api_key.encode("utf-8")).hexdigest()[:12]
    return f"{tier_name}:{digest}"


class Authenticator:
    """Resolve API keys (or their absence) to tiers and principals.

    Args:
        keys: API key -> tier-name table.
        tiers: tier-name -> :class:`Tier` table (default:
            :data:`DEFAULT_TIERS`; an ``anonymous`` tier must exist
            when anonymous access is allowed).
        allow_anonymous: serve keyless requests on the anonymous tier
            instead of rejecting them.
    """

    def __init__(
        self,
        keys: Mapping[str, str] | None = None,
        tiers: Mapping[str, Tier] | None = None,
        allow_anonymous: bool = True,
    ) -> None:
        self._tiers = dict(tiers) if tiers is not None else dict(DEFAULT_TIERS)
        self._keys = dict(keys or {})
        self._allow_anonymous = allow_anonymous
        for api_key, tier_name in self._keys.items():
            if tier_name not in self._tiers:
                raise ConfigurationError(
                    f"key {api_key[:4]}… references unknown tier {tier_name!r}"
                )
        if allow_anonymous and ANONYMOUS_TIER not in self._tiers:
            raise ConfigurationError(
                "anonymous access enabled but no 'anonymous' tier defined"
            )

    @property
    def allow_anonymous(self) -> bool:
        """Whether keyless requests are served."""
        return self._allow_anonymous

    def tier(self, name: str) -> Tier:
        """The tier registered under ``name``.

        Raises:
            ConfigurationError: no such tier.
        """
        try:
            return self._tiers[name]
        except KeyError:
            raise ConfigurationError(f"unknown tier {name!r}") from None

    def resolve(self, api_key: str | None, client_id: str = "unknown") -> AuthResult | None:
        """Identify one request.

        Args:
            api_key: the ``X-API-Key`` header value, or ``None``.
            client_id: transport-level client identity (e.g. remote
                address) used to bucket anonymous traffic.

        Returns:
            The resolved identity, or ``None`` when the request must be
            rejected (unknown key, or keyless with anonymous access
            disabled).
        """
        if api_key:
            tier_name = self._keys.get(api_key)
            if tier_name is None:
                return None
            tier = self._tiers[tier_name]
            return AuthResult(
                principal=_key_principal(tier_name, api_key),
                tier=tier,
                authenticated=True,
            )
        if not self._allow_anonymous:
            return None
        return AuthResult(
            principal=f"{ANONYMOUS_TIER}:{client_id}",
            tier=self._tiers[ANONYMOUS_TIER],
            authenticated=False,
        )

    # -- configuration loading ----------------------------------------------

    @classmethod
    def from_config(cls, payload: Mapping[str, Any]) -> "Authenticator":
        """Build an authenticator from a parsed config mapping.

        Config tiers override same-named defaults; unnamed defaults are
        kept, so a config may define only its custom tiers and keys.

        Raises:
            ConfigurationError: unknown top-level or tier fields, or a
                malformed tier definition.
        """
        unknown = set(payload) - {"tiers", "keys", "allow_anonymous"}
        if unknown:
            raise ConfigurationError(
                f"unknown tier-config fields: {sorted(unknown)}"
            )
        tiers = dict(DEFAULT_TIERS)
        for name, spec in dict(payload.get("tiers", {})).items():
            if not isinstance(spec, Mapping):
                raise ConfigurationError(f"tier {name!r} must be an object")
            fields = {
                "rate_limit",
                "window_seconds",
                "max_batch",
                "request_budget",
                "batch_budget",
            }
            bad = set(spec) - fields
            if bad:
                raise ConfigurationError(
                    f"tier {name!r} has unknown fields: {sorted(bad)}"
                )
            base = tiers.get(name)
            merged = {
                "rate_limit": spec.get(
                    "rate_limit", base.rate_limit if base else 60
                ),
                "window_seconds": spec.get(
                    "window_seconds", base.window_seconds if base else 60.0
                ),
                "max_batch": spec.get("max_batch", base.max_batch if base else 10),
                "request_budget": spec.get(
                    "request_budget", base.request_budget if base else 5.0
                ),
                "batch_budget": spec.get(
                    "batch_budget", base.batch_budget if base else 15.0
                ),
            }
            try:
                tiers[name] = Tier(
                    name=name,
                    rate_limit=int(merged["rate_limit"]),
                    window_seconds=float(merged["window_seconds"]),
                    max_batch=int(merged["max_batch"]),
                    request_budget=float(merged["request_budget"]),
                    batch_budget=float(merged["batch_budget"]),
                )
            except (TypeError, ValueError, ValidationError) as exc:
                raise ConfigurationError(f"invalid tier {name!r}: {exc}") from exc
        keys = payload.get("keys", {})
        if not isinstance(keys, Mapping):
            raise ConfigurationError("'keys' must map API keys to tier names")
        return cls(
            keys={str(k): str(v) for k, v in keys.items()},
            tiers=tiers,
            allow_anonymous=bool(payload.get("allow_anonymous", True)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "Authenticator":
        """Load a tier/key config from a JSON file.

        Raises:
            ConfigurationError: unreadable file or invalid JSON/schema.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigurationError(f"cannot read tier config {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid tier config {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("tier config must be a JSON object")
        return cls.from_config(payload)
