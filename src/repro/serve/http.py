"""The HTTP edge: stdlib threading server, routes, and graceful drain.

Dependency-light by design (``http.server`` + ``socketserver``
threading mix-in, matching the repo's no-framework style), the edge
does exactly the overload choreography and nothing else:

1. **route** — unknown paths 404 before any work;
2. **drain guard** — a draining server answers 503 + ``Connection:
   close`` instead of taking new work;
3. **auth** — ``X-API-Key`` → tier via the
   :class:`~repro.serve.auth.Authenticator`; unknown keys 401;
4. **rate limit** — sliding-window check per principal;
   ``X-RateLimit-*`` headers on every response, 429 + ``Retry-After``
   on denial;
5. **admission** — the :class:`~repro.serve.admission.Bulkhead`
   bounds concurrent verification and its wait queue; saturated
   servers shed with 503 + ``Retry-After`` immediately;
6. **deadline** — the tier budget (capped lower by an optional
   ``X-Request-Budget`` header) becomes the request deadline threaded
   through crawl and verification;
7. **dispatch** — service errors map to honest statuses
   (:class:`~repro.exceptions.ValidationError` 400,
   :class:`~repro.exceptions.MissingKeyError` 404,
   :class:`~repro.exceptions.ServiceUnavailableError` 503); anything
   else is a counted 500 — the fault-soak gate asserts that counter
   stays at zero.

Routes: ``POST /v1/verify``, ``POST /v1/verify/batch``,
``GET /v1/review-queue``, ``GET /healthz``, ``GET /metrics``.

Graceful drain (:meth:`VerificationHTTPServer.drain`): stop accepting,
finish in-flight requests, flush metrics, close the socket.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.exceptions import (
    MissingKeyError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.serve.admission import Bulkhead
from repro.serve.auth import Authenticator, AuthResult
from repro.serve.metrics import MetricsRegistry
from repro.serve.ratelimit import SlidingWindowRateLimiter
from repro.serve.service import VerificationService
from repro.web.resilience.clock import SystemClock

logger = logging.getLogger(__name__)

__all__ = ["VerificationHTTPServer", "VerificationRequestHandler"]

#: Largest accepted request body in bytes.
MAX_BODY_BYTES = 1_048_576

#: Seconds a shed request should wait before retrying.
SHED_RETRY_AFTER = 1


class VerificationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server wired to one :class:`VerificationService`.

    Args:
        address: ``(host, port)`` to bind (port 0 picks a free port).
        service: the application object requests dispatch into.
        authenticator: key→tier resolver (default: built-in tiers with
            anonymous access).
        limiter: sliding-window rate limiter (default: one on the
            wall clock).
        bulkhead: admission bulkhead (default: 8 concurrent, 16
            queued).
        metrics: metrics sink (default: the service's own registry).
        admission_timeout: seconds a request may wait in the bulkhead
            queue before being shed.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: VerificationService,
        authenticator: Authenticator | None = None,
        limiter: SlidingWindowRateLimiter | None = None,
        bulkhead: Bulkhead | None = None,
        metrics: MetricsRegistry | None = None,
        admission_timeout: float = 0.5,
    ) -> None:
        super().__init__(address, VerificationRequestHandler)
        self.service = service
        self.authenticator = (
            authenticator if authenticator is not None else Authenticator()
        )
        self.limiter = (
            limiter
            if limiter is not None
            else SlidingWindowRateLimiter(clock=SystemClock())
        )
        self.bulkhead = bulkhead if bulkhead is not None else Bulkhead()
        self.metrics = metrics if metrics is not None else service.metrics
        self.admission_timeout = admission_timeout
        self.draining = False
        self._serve_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return int(self.server_address[1])

    def start_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` in a daemon thread and return it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._serve_thread = thread
        return thread

    def drain(self, timeout: float = 10.0) -> bool:
        """Gracefully stop: no new work, finish in-flight, close.

        Idempotent.  New requests arriving mid-drain get 503 +
        ``Connection: close``; requests already admitted run to
        completion (up to ``timeout`` seconds).  A final metrics
        snapshot is the caller's move — ``server.metrics.flush(path)``
        after this returns — so the operator-chosen path never mixes
        with request-derived state.

        Returns:
            ``True`` when every in-flight request finished in time.
        """
        self.draining = True
        self.shutdown()  # stop accepting; returns after the serve loop exits
        drained = self.bulkhead.drain(timeout)
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=timeout)
        self.server_close()
        if not drained:
            logger.warning("drain timed out with requests still in flight")
        return drained


class VerificationRequestHandler(BaseHTTPRequestHandler):
    """Route one HTTP request through the overload pipeline."""

    server: VerificationHTTPServer  # narrowed for type checkers
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Socket inactivity timeout — a wedged client cannot pin a thread.
    timeout = 30.0

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Route BaseHTTPRequestHandler chatter to logging, not stderr."""
        logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Dispatch GET routes."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Dispatch POST routes."""
        self._dispatch("POST")

    # -- pipeline -----------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        """The request pipeline: route, drain, auth, limit, admit, run."""
        started = self.server.service.clock.monotonic()
        route = self.path.split("?", 1)[0]
        status = 500
        try:
            status = self._run_pipeline(method, route)
        finally:
            elapsed = self.server.service.clock.monotonic() - started
            self.server.metrics.increment(
                "http_requests_total", route=route, status=str(status)
            )
            self.server.metrics.observe_latency(route, max(0.0, elapsed))

    def _run_pipeline(self, method: str, route: str) -> int:
        handlers = {
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/metrics"): self._route_metrics,
            ("GET", "/v1/review-queue"): self._route_review_queue,
            ("POST", "/v1/verify"): self._route_verify,
            ("POST", "/v1/verify/batch"): self._route_verify_batch,
        }
        handler = handlers.get((method, route))
        if handler is None:
            known_routes = {r for _, r in handlers}
            if route in known_routes:
                return self._send_error(405, "method not allowed")
            return self._send_error(404, f"no such route: {route}")
        if route in ("/healthz", "/metrics"):
            # Health and metrics stay reachable while draining or
            # rate-limited — they are how operators see the overload.
            return handler(None)

        if self.server.draining:
            return self._send_error(
                503, "draining", headers={"Retry-After": str(SHED_RETRY_AFTER)},
                close=True,
            )
        auth = self.server.authenticator.resolve(
            self.headers.get("X-API-Key"), client_id=self.client_address[0]
        )
        if auth is None:
            return self._send_error(401, "invalid or missing API key")
        decision = self.server.limiter.admit(
            auth.principal, auth.tier.rate_limit, auth.tier.window_seconds
        )
        if not decision.allowed:
            self.server.metrics.increment("http_rate_limited_total")
            return self._send_error(
                429, "rate limit exceeded", headers=decision.headers()
            )
        if not self.server.bulkhead.try_acquire(self.server.admission_timeout):
            self.server.metrics.increment("http_shed_total")
            return self._send_error(
                503,
                "server saturated",
                headers={"Retry-After": str(SHED_RETRY_AFTER), **decision.headers()},
            )
        try:
            return handler(auth, extra_headers=decision.headers())
        finally:
            self.server.bulkhead.release()

    # -- routes -------------------------------------------------------------

    def _route_healthz(
        self, auth: AuthResult | None, extra_headers: Mapping[str, str] | None = None
    ) -> int:
        payload = self.server.service.health()
        if self.server.draining:
            payload = {**payload, "status": "draining"}
        return self._send_json(200, payload)

    def _route_metrics(
        self, auth: AuthResult | None, extra_headers: Mapping[str, str] | None = None
    ) -> int:
        if "format=json" in (self.path.split("?", 1) + [""])[1]:
            return self._send_json(200, self.server.metrics.snapshot())
        body = self.server.metrics.render_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return 200

    def _route_review_queue(
        self, auth: AuthResult | None, extra_headers: Mapping[str, str] | None = None
    ) -> int:
        query = (self.path.split("?", 1) + [""])[1]
        limit: int | None = None
        for part in query.split("&"):
            if part.startswith("limit="):
                try:
                    limit = int(part.removeprefix("limit="))
                except ValueError:
                    return self._send_error(
                        400, "limit must be an integer", headers=extra_headers
                    )
        return self._guarded(
            lambda: self.server.service.review_queue(limit=limit), extra_headers
        )

    def _route_verify(
        self, auth: AuthResult | None, extra_headers: Mapping[str, str] | None = None
    ) -> int:
        assert auth is not None
        body = self._read_json()
        if body is None:
            return self._send_error(400, "invalid JSON body", headers=extra_headers)
        domain = body.get("domain")
        budget = self._budget(auth, auth.tier.request_budget)
        return self._guarded(
            lambda: self.server.service.verify_domain(domain, budget=budget),
            extra_headers,
        )

    def _route_verify_batch(
        self, auth: AuthResult | None, extra_headers: Mapping[str, str] | None = None
    ) -> int:
        assert auth is not None
        body = self._read_json()
        if body is None:
            return self._send_error(400, "invalid JSON body", headers=extra_headers)
        domains = body.get("domains")
        if not isinstance(domains, list):
            return self._send_error(
                400, "'domains' must be a list", headers=extra_headers
            )
        if len(domains) > auth.tier.max_batch:
            return self._send_error(
                400,
                f"batch of {len(domains)} exceeds tier "
                f"{auth.tier.name!r} max of {auth.tier.max_batch}",
                headers=extra_headers,
            )
        budget = self._budget(auth, auth.tier.batch_budget)
        return self._guarded(
            lambda: {
                "results": self.server.service.verify_batch(domains, budget=budget),
                "budget_seconds": budget,
            },
            extra_headers,
        )

    # -- helpers ------------------------------------------------------------

    def _budget(self, auth: AuthResult, tier_budget: float) -> float:
        """The request budget: the tier default, capped lower by header."""
        header = self.headers.get("X-Request-Budget")
        if header is None:
            return tier_budget
        try:
            requested = float(header)
        except ValueError:
            return tier_budget
        if requested <= 0:
            return tier_budget
        return min(requested, tier_budget)

    def _guarded(
        self,
        run: Any,
        extra_headers: Mapping[str, str] | None,
    ) -> int:
        """Run a service call, mapping errors to honest statuses."""
        try:
            payload = run()
        except ValidationError as exc:
            return self._send_error(400, str(exc), headers=extra_headers)
        except MissingKeyError as exc:
            message = str(exc).strip("'\"")
            return self._send_error(404, message, headers=extra_headers)
        except ServiceUnavailableError as exc:
            headers = dict(extra_headers or {})
            headers["Retry-After"] = str(max(1, round(exc.retry_after)))
            return self._send_error(503, str(exc), headers=headers)
        except Exception:  # repro-lint: disable=R008
            # Last-resort boundary: a bug must surface as a counted 500
            # response (the soak gate pins this counter to zero), never
            # as a dropped connection.
            logger.exception("unhandled error on %s", self.path)
            self.server.metrics.increment("http_unhandled_errors_total")
            return self._send_error(500, "internal error", headers=extra_headers)
        return self._send_json(200, payload, headers=extra_headers)

    def _read_json(self) -> dict[str, Any] | None:
        """The request body as a JSON object, or ``None`` when invalid."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        try:
            raw = self.rfile.read(length)
            parsed = json.loads(raw.decode("utf-8")) if length else {}
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        return parsed if isinstance(parsed, dict) else None

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, object] | dict[str, object],
        headers: Mapping[str, str] | None = None,
        close: bool = False,
    ) -> int:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        return status

    def _send_error(
        self,
        status: int,
        message: str,
        headers: Mapping[str, str] | None = None,
        close: bool = False,
    ) -> int:
        return self._send_json(
            status, {"error": message, "status": status}, headers=headers, close=close
        )
