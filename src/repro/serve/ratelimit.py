"""Sliding-window rate limiting for the serving layer.

A :class:`SlidingWindowRateLimiter` admits at most ``limit`` requests
per rolling ``window`` seconds *per principal* (API key, anonymous
client, …).  Unlike fixed buckets it has no reset-boundary burst: the
window slides continuously, so at no instant can more than ``limit``
admissions fall inside any ``window``-long interval — the invariant the
property tests in ``tests/serve`` hammer with adversarial schedules.

Time is injected (:class:`~repro.web.resilience.clock.Clock`), the
same pattern as the retry/breaker machinery: deterministic
:class:`~repro.web.resilience.clock.VirtualClock` by default, the
wall-clock :class:`~repro.web.resilience.clock.SystemClock` only when a
real server opts in.  Every decision carries the standard
``X-RateLimit-Limit`` / ``X-RateLimit-Remaining`` / ``X-RateLimit-Reset``
headers plus ``Retry-After`` on denial, ready to attach to a response.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.web.resilience.clock import Clock, VirtualClock

__all__ = ["RateLimitDecision", "SlidingWindowRateLimiter"]


@dataclass(frozen=True, slots=True)
class RateLimitDecision:
    """Outcome of one admission check.

    Attributes:
        allowed: whether the request may proceed.
        limit: the window quota that applied.
        remaining: admissions left in the current window (after this
            one, when allowed).
        reset_after: seconds until the oldest counted admission slides
            out of the window (0 when the window is empty).
        retry_after: seconds to wait before a retry can succeed
            (0 when allowed).
    """

    allowed: bool
    limit: int
    remaining: int
    reset_after: float
    retry_after: float

    def headers(self) -> dict[str, str]:
        """The decision as HTTP response headers.

        ``Retry-After`` (integral seconds, rounded up, minimum 1) is
        present only on denials, per RFC 6585.
        """
        headers = {
            "X-RateLimit-Limit": str(self.limit),
            "X-RateLimit-Remaining": str(self.remaining),
            "X-RateLimit-Reset": f"{max(0.0, self.reset_after):.3f}",
        }
        if not self.allowed:
            headers["Retry-After"] = str(max(1, math.ceil(self.retry_after)))
        return headers


class SlidingWindowRateLimiter:
    """Per-principal sliding-window admission counter.

    The limiter holds one timestamp deque per principal and is safe to
    call from many server threads at once (one internal lock; the
    per-check work is O(evicted + 1)).

    Quotas are supplied per call rather than fixed at construction so
    one limiter instance serves every auth tier: the principal string
    already encodes the tier (see
    :meth:`~repro.serve.auth.Authenticator.resolve`), and a principal's
    quota never changes mid-window unless its key is re-tiered.

    Args:
        clock: time source (default: a fresh
            :class:`~repro.web.resilience.clock.VirtualClock`).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._lock = threading.Lock()
        self._admitted: dict[str, deque[float]] = {}

    def admit(self, principal: str, limit: int, window: float) -> RateLimitDecision:
        """Admit or deny one request for ``principal`` right now.

        Args:
            principal: rate-limit identity (one bucket per value).
            limit: admissions allowed per window (>= 1).
            window: rolling window length in seconds (> 0).

        Returns:
            The decision, including header-ready quota arithmetic.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        if window <= 0:
            raise ValidationError(f"window must be > 0, got {window}")
        now = self._clock.monotonic()
        with self._lock:
            admitted = self._admitted.setdefault(principal, deque())
            cutoff = now - window
            while admitted and admitted[0] <= cutoff:
                admitted.popleft()
            if len(admitted) < limit:
                admitted.append(now)
                reset_after = admitted[0] + window - now
                return RateLimitDecision(
                    allowed=True,
                    limit=limit,
                    remaining=limit - len(admitted),
                    reset_after=reset_after,
                    retry_after=0.0,
                )
            retry_after = admitted[0] + window - now
            return RateLimitDecision(
                allowed=False,
                limit=limit,
                remaining=0,
                reset_after=retry_after,
                retry_after=retry_after,
            )

    def window_count(self, principal: str, window: float) -> int:
        """Admissions currently counted against ``principal``.

        Purely observational (evicts expired stamps, admits nothing);
        used by tests and the metrics route.
        """
        now = self._clock.monotonic()
        with self._lock:
            admitted = self._admitted.get(principal)
            if admitted is None:
                return 0
            cutoff = now - window
            while admitted and admitted[0] <= cutoff:
                admitted.popleft()
            return len(admitted)

    def reset(self, principal: str | None = None) -> None:
        """Forget admission history (one principal, or everyone)."""
        with self._lock:
            if principal is None:
                self._admitted.clear()
            else:
                self._admitted.pop(principal, None)
