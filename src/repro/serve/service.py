"""The verification service: transport-independent application logic.

:class:`VerificationService` is what the HTTP edge (and any future
transport) calls into.  It owns everything between "a domain name
arrived" and "a verdict payload left":

* **domain resolution** — a pre-crawled site index (the corpus the
  server was launched with) with optional crawl-on-miss against a
  :class:`~repro.web.host.WebHost` (the live web, or a fault-injected
  synthetic one in the harness);
* **deadline propagation** — the request budget caps the crawl
  (:class:`~repro.web.crawler.Crawler` ``deadline``/``fetch_budget``)
  and is threaded into
  :meth:`~repro.core.verifier.PharmacyVerifier.verify_sites`, so an
  overloaded server emits partial, ``deadline_exceeded``-degraded
  verdicts instead of hanging;
* **per-backend circuit breaking** — unexpected backend exceptions
  (a poisoned model, a corrupt cache) trip the breaker for that route
  only, converting repeat failures into fast
  :class:`~repro.exceptions.ServiceUnavailableError` (503) while the
  other routes keep serving;
* **verdict caching** — an optional
  :class:`~repro.perf.FeatureCache` memoizes clean full-confidence
  verdicts keyed by (domain, model version), the warm-cache fast path
  the load harness measures;
* **review-queue feeding** — every degraded verdict is recorded
  least-confident-first, mirroring
  :func:`~repro.core.review_queue.degraded_domains`, and served by the
  ``/v1/review-queue`` route.

Everything degrades, nothing raises past the documented trio: callers
see a payload, :class:`~repro.exceptions.ValidationError` (bad
request), :class:`~repro.exceptions.MissingKeyError` (unknown domain,
no crawl host), or :class:`~repro.exceptions.ServiceUnavailableError`.
"""

from __future__ import annotations

import logging
import re
import threading
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.verifier import PharmacyVerifier, VerificationReport
from repro.devtools.sanitizers import sanitizes
from repro.exceptions import (
    CrawlError,
    MissingKeyError,
    ReproError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.perf import FeatureCache, content_fingerprint
from repro.serve.admission import Deadline
from repro.serve.metrics import MetricsRegistry
from repro.web.crawler import Crawler, CrawlStats
from repro.web.host import WebHost
from repro.web.resilience.breaker import CircuitBreaker
from repro.web.resilience.clock import Clock, VirtualClock
from repro.web.resilience.retry import RetryPolicy
from repro.web.site import Website

logger = logging.getLogger(__name__)

__all__ = ["ServiceConfig", "SiteIndex", "VerificationService"]

#: Backend route names the per-backend circuit breaker distinguishes.
_VERIFY_BACKEND = "verify"
_REVIEW_BACKEND = "review"


@runtime_checkable
class SiteIndex(Protocol):
    """A domain-keyed site lookup the service can resolve against.

    Structural, not nominal, so the serving layer never imports a
    concrete corpus implementation: a plain ``dict[str, Website]``
    satisfies it, and so does :class:`repro.data.sharding.
    ShardedCorpus`, whose ``get`` opens only the one shard the
    domain's hash maps to — a million-site corpus serves lookups in
    O(shard) memory.
    """

    def get(self, domain: str) -> Website | None:
        """The site of ``domain``, or ``None`` when unknown."""

    def __len__(self) -> int:
        """Number of servable domains."""


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Operating knobs of one :class:`VerificationService`.

    Attributes:
        model_version: cache namespace for verdicts; bump when the
            deployed model changes so stale verdicts miss.
        crawl_max_pages: page cap per on-demand crawl.
        crawl_fetch_budget: fetch-attempt cap per on-demand crawl.
        deadline_chunk: sites per deadline check inside batch
            verification (forwarded to ``verify_sites``).
        breaker_failure_threshold: consecutive backend failures that
            open that backend's circuit.
        breaker_reset_after: seconds an open circuit waits before a
            half-open probe.
        review_capacity: most-degraded verdicts retained for the
            review-queue route (least confident win eviction).
    """

    model_version: str = "v1"
    crawl_max_pages: int = 25
    crawl_fetch_budget: int | None = 200
    deadline_chunk: int = 8
    breaker_failure_threshold: int = 5
    breaker_reset_after: float = 30.0
    review_capacity: int = 10_000

    def __post_init__(self) -> None:
        if self.crawl_max_pages < 1:
            raise ValidationError(
                f"crawl_max_pages must be >= 1, got {self.crawl_max_pages}"
            )
        if self.deadline_chunk < 1:
            raise ValidationError(
                f"deadline_chunk must be >= 1, got {self.deadline_chunk}"
            )
        if self.review_capacity < 1:
            raise ValidationError(
                f"review_capacity must be >= 1, got {self.review_capacity}"
            )


#: Strict bare-domain shape: dot-separated LDH labels, no leading or
#: trailing hyphen, at least two labels.  Deliberately narrower than
#: the DNS grammar — anything the synthetic web generator cannot emit
#: is a bad request, not a crawl target.
_DOMAIN_RE = re.compile(
    r"^(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+"
    r"[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?$"
)


@sanitizes("path", "ssrf", "report")
def _validate_domain(domain: object) -> str:
    """Normalize and validate one request domain.

    Declared a sanitizer for the ``path``/``ssrf``/``report`` sink
    categories: the returned value matches :data:`_DOMAIN_RE`, so it
    cannot carry path separators or traversal tricks into checkpoint
    paths (T001), markup or format payloads into log records (T005),
    and every on-demand crawl is pinned to exactly this validated
    registrable domain — naming the domain to verify is the service's
    API, and the crawler's same-site guard re-checks every link it
    follows from there (T004).

    Raises:
        ValidationError: not a string, or not a bare registrable
            domain.
    """
    if not isinstance(domain, str):
        raise ValidationError(f"domain must be a string, got {type(domain).__name__}")
    cleaned = domain.strip().lower()
    if not cleaned or len(cleaned) > 253 or not _DOMAIN_RE.match(cleaned):
        raise ValidationError(
            f"domain {domain!r} must be a bare registrable domain"
        )
    return cleaned


class VerificationService:
    """Verify domains on demand behind admission, deadlines, breakers.

    Args:
        verifier: a fitted :class:`~repro.core.verifier.PharmacyVerifier`.
        sites: pre-crawled websites — either a sequence (indexed into a
            dict up front) or an already domain-keyed :class:`SiteIndex`
            such as a sharded corpus, which is resolved against lazily
            (each lookup opens one shard, never the whole corpus).
        host: optional web host for crawl-on-miss; without it unknown
            domains raise :class:`~repro.exceptions.MissingKeyError`.
        clock: time source for deadlines and breaker cooldowns
            (default: a deterministic
            :class:`~repro.web.resilience.clock.VirtualClock`; a real
            server injects
            :class:`~repro.web.resilience.clock.SystemClock`).
        cache: optional verdict cache (warm-path fast serving).
        retry_policy: retry policy for on-demand crawls.
        metrics: sink for service-level counters (verdicts, cache
            hits, degradations); optional.
        config: operating knobs (default :class:`ServiceConfig`).
    """

    def __init__(
        self,
        verifier: PharmacyVerifier,
        sites: Sequence[Website] | SiteIndex = (),
        host: WebHost | None = None,
        clock: Clock | None = None,
        cache: FeatureCache | None = None,
        retry_policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        if not verifier.is_fitted:
            raise ValidationError("VerificationService needs a fitted verifier")
        self._verifier = verifier
        self._clock: Clock = clock if clock is not None else VirtualClock()
        self._cache = cache
        self._retry_policy = retry_policy
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._config = config if config is not None else ServiceConfig()
        if isinstance(sites, SiteIndex):
            # Already domain-keyed (a dict or e.g. a sharded corpus):
            # resolve against it lazily instead of materializing sites.
            self._index: SiteIndex = sites
            domains = (
                sites.domains() if hasattr(sites, "domains") else sites
            )
            self._known_domains = tuple(sorted(domains))
        else:
            index = {site.domain: site for site in sites}
            self._index = index
            self._known_domains = tuple(sorted(index))
        self._host = host
        self._breaker = CircuitBreaker(
            failure_threshold=self._config.breaker_failure_threshold,
            reset_after=self._config.breaker_reset_after,
            clock=self._clock,
        )
        self._review_lock = threading.Lock()
        self._review: dict[str, dict[str, object]] = {}

    @property
    def clock(self) -> Clock:
        """The injected time source (shared with the HTTP edge)."""
        return self._clock

    @property
    def metrics(self) -> MetricsRegistry:
        """The service-level metrics sink."""
        return self._metrics

    @property
    def known_domains(self) -> tuple[str, ...]:
        """Domains servable without a crawl, sorted."""
        return self._known_domains

    def backend_states(self) -> dict[str, str]:
        """Circuit state per backend route."""
        return {
            name: self._breaker.state(name)
            for name in (_VERIFY_BACKEND, _REVIEW_BACKEND)
        }

    # -- request entry points -----------------------------------------------

    def verify_domain(
        self, domain: str, budget: float | None = None
    ) -> dict[str, object]:
        """Verify one domain within ``budget`` seconds.

        Returns:
            The verdict payload (see :meth:`verify_batch`).
        """
        return self.verify_batch([domain], budget=budget)[0]

    def verify_batch(
        self, domains: Sequence[str], budget: float | None = None
    ) -> list[dict[str, object]]:
        """Verify a batch of domains under one shared deadline.

        The budget is consumed left to right: crawls stop once it is
        spent, and :meth:`~repro.core.verifier.PharmacyVerifier.verify_sites`
        degrades whatever scoring the remaining budget cannot cover —
        the response is always complete (one payload per requested
        domain), parts of it merely honest about being rushed.

        Args:
            domains: registrable domains to verify.
            budget: seconds of clock budget for the whole batch
                (``None`` = no deadline).

        Returns:
            One JSON-ready payload per domain, same order.

        Raises:
            ValidationError: empty batch or malformed domain.
            MissingKeyError: unknown domain with no crawl host.
            ServiceUnavailableError: the verify backend is unavailable.
        """
        if not domains:
            raise ValidationError("batch must name at least one domain")
        cleaned = [_validate_domain(d) for d in domains]
        deadline = (
            Deadline.after(budget, self._clock) if budget is not None else None
        )
        self._check_backend(_VERIFY_BACKEND)

        payloads: dict[int, dict[str, object]] = {}
        to_verify: list[tuple[int, Website, CrawlStats | None, list[str]]] = []
        for position, domain in enumerate(cleaned):
            cached = self._cache_load(domain)
            if cached is not None:
                self._metrics.increment("service_cache_hits_total")
                payloads[position] = cached
                continue
            site, stats, extra_reasons = self._resolve(domain, deadline)
            to_verify.append((position, site, stats, extra_reasons))

        if to_verify:
            reports = self._call_verifier(
                [site for _, site, _, _ in to_verify],
                [stats for _, _, stats, _ in to_verify],
                deadline,
            )
            for (position, _, _, extra_reasons), report in zip(to_verify, reports):
                payload = self._payload(report, extra_reasons)
                payloads[position] = payload
                self._record(payload)
        return [payloads[i] for i in range(len(cleaned))]

    def review_queue(self, limit: int | None = None) -> dict[str, object]:
        """The degraded-verdict review queue, least confident first.

        Mirrors :func:`~repro.core.review_queue.degraded_domains`
        ordering — (confidence, domain) ascending — so the domains a
        human should look at first lead the list.

        Args:
            limit: truncate to the first ``limit`` entries.

        Raises:
            ServiceUnavailableError: the review backend is unavailable.
        """
        self._check_backend(_REVIEW_BACKEND)
        try:
            with self._review_lock:
                # the review dict mutates per verdict, so no caching
                entries = sorted(  # repro-hot: disable=P006
                    self._review.values(),
                    key=lambda e: (e["confidence"], e["domain"]),
                )
        except Exception as exc:  # repro-lint: disable=R008
            # Serving boundary: any backend bug must become a 503 with
            # an open circuit, never an unhandled exception mid-route.
            self._breaker.record_failure(_REVIEW_BACKEND)
            logger.exception("review backend failed")
            raise ServiceUnavailableError(
                _REVIEW_BACKEND, str(exc), retry_after=self._config.breaker_reset_after
            ) from exc
        self._breaker.record_success(_REVIEW_BACKEND)
        if limit is not None:
            if limit < 1:
                raise ValidationError(f"limit must be >= 1, got {limit}")
            entries = entries[:limit]
        return {
            "priority_domains": [e["domain"] for e in entries],
            "entries": entries,
            "total_degraded": len(self._review),
        }

    def health(self) -> dict[str, object]:
        """Liveness/readiness payload for ``GET /healthz``."""
        backends = self.backend_states()
        healthy = all(state != "open" for state in backends.values())
        return {
            "status": "ok" if healthy else "degraded",
            "backends": backends,
            "known_domains": len(self._index),
            "crawl_on_miss": self._host is not None,
            "model_version": self._config.model_version,
            "cache": self._cache.stats.as_dict() if self._cache else None,
        }

    # -- internals ----------------------------------------------------------

    def _check_backend(self, backend: str) -> None:
        if not self._breaker.allow(backend):
            raise ServiceUnavailableError(
                backend,
                "circuit open",
                retry_after=self._config.breaker_reset_after,
            )

    def _resolve(
        self, domain: str, deadline: Deadline | None
    ) -> tuple[Website, CrawlStats | None, list[str]]:
        """Find or crawl ``domain``; degrade instead of raising.

        Returns ``(site, crawl_stats, extra_reasons)`` where a dead or
        unbudgeted crawl yields an empty site plus a service-level
        degradation reason — the verifier then produces a network-only
        verdict for it.
        """
        site = self._index.get(domain)
        if site is not None:
            return site, None, []
        if self._host is None:
            raise MissingKeyError(
                f"unknown domain {domain!r} (no crawl host configured)"
            )
        if deadline is not None and deadline.expired():
            return Website(domain=domain, pages=()), None, ["not_crawled"]
        crawler = Crawler(
            self._host,
            max_pages=self._config.crawl_max_pages,
            retry_policy=self._retry_policy,
            clock=self._clock,
            deadline=deadline.remaining() if deadline is not None else None,
            fetch_budget=self._config.crawl_fetch_budget,
        )
        try:
            crawled = crawler.crawl_site(f"https://www.{domain}/")
        except CrawlError:
            logger.info("seed unreachable for %s; degrading", domain, exc_info=True)
            self._metrics.increment("service_seed_unreachable_total")
            return Website(domain=domain, pages=()), None, ["seed_unreachable"]
        return crawled, crawler.last_stats, []

    def _call_verifier(
        self,
        sites: Sequence[Website],
        stats: Sequence[CrawlStats | None],
        deadline: Deadline | None,
    ) -> list[VerificationReport]:
        """Run the verifier behind the verify-backend breaker."""
        try:
            reports = self._verifier.verify_sites(
                sites,
                crawl_stats=stats,
                deadline=deadline.at if deadline is not None else None,
                clock=self._clock,
                deadline_chunk=self._config.deadline_chunk,
            )
        except ReproError:
            # Request-shaped failures (validation) are the caller's to
            # hear about and do not indict the backend.
            raise
        except Exception as exc:  # repro-lint: disable=R008
            # Serving boundary: a poisoned model or cache path must
            # degrade to 503s on this route, not crash the server.
            self._breaker.record_failure(_VERIFY_BACKEND)
            logger.exception("verify backend failed on %d site(s)", len(sites))
            raise ServiceUnavailableError(
                _VERIFY_BACKEND, str(exc), retry_after=self._config.breaker_reset_after
            ) from exc
        self._breaker.record_success(_VERIFY_BACKEND)
        return reports

    def _payload(
        self, report: VerificationReport, extra_reasons: Sequence[str]
    ) -> dict[str, object]:
        """A JSON-ready verdict payload from one report."""
        reasons = list(report.degradation_reasons) + [
            r for r in extra_reasons if r not in report.degradation_reasons
        ]
        degraded = report.degraded or bool(reasons)
        payload: dict[str, object] = {
            "domain": report.domain,
            "verdict": "legitimate" if report.is_legitimate else "illegitimate",
            "predicted_label": report.predicted_label,
            "legitimacy_probability": report.legitimacy_probability,
            "text_rank": report.text_rank,
            "network_rank": report.network_rank,
            "rank_score": report.rank_score,
            "degraded": degraded,
            "confidence": report.confidence,
            "degradation_reasons": reasons,
            "cached": False,
        }
        self._metrics.increment("service_verdicts_total")
        if degraded:
            self._metrics.increment("service_degraded_verdicts_total")
        return payload

    def _record(self, payload: dict[str, object]) -> None:
        """File degraded verdicts for review; cache clean ones."""
        domain = str(payload["domain"])
        if payload["degraded"]:
            entry = {
                "domain": domain,
                "confidence": payload["confidence"],
                "degradation_reasons": payload["degradation_reasons"],
                "rank_score": payload["rank_score"],
            }
            with self._review_lock:
                self._review[domain] = entry
                if len(self._review) > self._config.review_capacity:
                    # Evict the most confident entry: it needs human
                    # eyes least urgently.
                    victim = max(
                        self._review.values(),
                        key=lambda e: (e["confidence"], e["domain"]),
                    )
                    del self._review[str(victim["domain"])]
            return
        self._cache_store(domain, payload)

    def _cache_key(self, domain: str) -> str:
        assert self._cache is not None
        return self._cache.key(
            kind="serve_verdict",
            content=content_fingerprint([domain]),
            params={"model_version": self._config.model_version},
        )

    def _cache_load(self, domain: str) -> dict[str, object] | None:
        if self._cache is None:
            return None
        cached = self._cache.load(self._cache_key(domain))
        if not isinstance(cached, dict):
            return None
        cached = dict(cached)
        cached["cached"] = True
        return cached

    def _cache_store(self, domain: str, payload: Mapping[str, object]) -> None:
        if self._cache is None:
            return
        self._cache.store(self._cache_key(domain), dict(payload))
