"""Assembly: build a ready-to-run verification server in one call.

:func:`build_server` is the one place the serving stack is wired
together — the CLI (``repro serve``), the load harness, and the tests
all go through it, so every entry point gets the same defaults: a
wall-clock service unless a clock is injected, a sliding-window
limiter on that same clock, a bulkhead sized by ``jobs``, and an
optional verdict cache.
"""

from __future__ import annotations

from repro.core.verifier import PharmacyVerifier
from repro.perf import FeatureCache
from repro.serve.admission import Bulkhead
from repro.serve.auth import Authenticator
from repro.serve.http import VerificationHTTPServer
from repro.serve.metrics import MetricsRegistry
from repro.serve.ratelimit import SlidingWindowRateLimiter
from repro.serve.service import ServiceConfig, SiteIndex, VerificationService
from repro.web.host import WebHost
from repro.web.resilience.clock import Clock, SystemClock
from repro.web.resilience.retry import RetryPolicy
from repro.web.site import Website

__all__ = ["build_server"]


def build_server(
    verifier: PharmacyVerifier,
    sites: tuple[Website, ...] | list[Website] | SiteIndex = (),
    host: WebHost | None = None,
    bind_host: str = "127.0.0.1",
    port: int = 8470,
    authenticator: Authenticator | None = None,
    cache_dir: str | None = None,
    jobs: int = 8,
    max_queue: int = 16,
    admission_timeout: float = 0.5,
    clock: Clock | None = None,
    retry_policy: RetryPolicy | None = None,
    service_config: ServiceConfig | None = None,
) -> VerificationHTTPServer:
    """Wire service + edge and bind the listening socket.

    Args:
        verifier: a fitted verifier (the model backend).
        sites: pre-crawled websites served from memory, or a lazy
            domain-keyed :class:`~repro.serve.service.SiteIndex` (e.g.
            a :class:`repro.data.sharding.ShardedCorpus`) resolved
            per-lookup without loading the corpus.
        host: optional web host for crawl-on-miss verification.
        bind_host: interface to bind.
        port: port to bind (0 picks a free one; see
            :attr:`~repro.serve.http.VerificationHTTPServer.port`).
        authenticator: key/tier table (default: built-in tiers with
            anonymous access).
        cache_dir: when set, verdicts are cached here
            (:class:`~repro.perf.FeatureCache`) for warm-path serving.
        jobs: bulkhead concurrency bound (requests verifying at once).
        max_queue: bulkhead wait-queue bound.
        admission_timeout: seconds a request may queue before shedding.
        clock: time source (default
            :class:`~repro.web.resilience.clock.SystemClock` — this is
            the one assembly point that defaults to real time, because
            it exists to serve real traffic; tests inject a
            :class:`~repro.web.resilience.clock.VirtualClock`).
        retry_policy: crawl retry policy for on-miss crawls.
        service_config: service knobs (default :class:`ServiceConfig`).

    Returns:
        A bound, not-yet-serving
        :class:`~repro.serve.http.VerificationHTTPServer`; call
        ``serve_forever()`` (or ``start_background()``) to serve and
        ``drain()`` to stop.
    """
    resolved_clock: Clock = clock if clock is not None else SystemClock()
    metrics = MetricsRegistry()
    service = VerificationService(
        verifier,
        sites=sites if isinstance(sites, SiteIndex) else tuple(sites),
        host=host,
        clock=resolved_clock,
        cache=FeatureCache(cache_dir) if cache_dir else None,
        retry_policy=retry_policy,
        metrics=metrics,
        config=service_config,
    )
    return VerificationHTTPServer(
        (bind_host, port),
        service,
        authenticator=authenticator,
        limiter=SlidingWindowRateLimiter(clock=resolved_clock),
        bulkhead=Bulkhead(max_concurrent=jobs, max_queue=max_queue),
        metrics=metrics,
        admission_timeout=admission_timeout,
    )
