"""Verification-as-a-service: the overload-robust serving layer.

Wraps the trained :class:`~repro.core.verifier.PharmacyVerifier` in a
long-running HTTP service with the full overload toolkit — per-key
tiered auth, sliding-window rate limiting, bulkhead admission control
with immediate load shedding, request deadlines propagated into
verification, per-backend circuit breaking, and graceful drain::

    from repro.serve import build_server

    server = build_server(verifier, sites=corpus.sites, port=8470)
    server.start_background()
    ...
    server.drain()

See ``docs/api.md`` (Serve section) for the endpoint and semantics
reference, and ``benchmarks/serve/harness.py`` for the closed-loop
load harness that gates this layer in CI.
"""

from repro.serve.admission import AdmissionStats, Bulkhead, Deadline
from repro.serve.app import build_server
from repro.serve.auth import DEFAULT_TIERS, AuthResult, Authenticator, Tier
from repro.serve.http import VerificationHTTPServer, VerificationRequestHandler
from repro.serve.metrics import MetricsRegistry
from repro.serve.ratelimit import RateLimitDecision, SlidingWindowRateLimiter
from repro.serve.service import ServiceConfig, SiteIndex, VerificationService

__all__ = [
    "AdmissionStats",
    "AuthResult",
    "Authenticator",
    "Bulkhead",
    "DEFAULT_TIERS",
    "Deadline",
    "MetricsRegistry",
    "RateLimitDecision",
    "ServiceConfig",
    "SiteIndex",
    "SlidingWindowRateLimiter",
    "Tier",
    "VerificationHTTPServer",
    "VerificationRequestHandler",
    "VerificationService",
    "build_server",
]
