"""Request metrics: counters + latency quantiles, dependency-free.

A :class:`MetricsRegistry` is the single sink every serving component
reports into: the HTTP edge (per-route/status request counts and
latencies), the rate limiter (429s), the bulkhead (sheds), and the
service (verdicts, degradations, cache hits).  Two read surfaces:

* :meth:`snapshot` — a JSON-ready dict (the ``/metrics?format=json``
  route, the drain-time flush, and the load harness);
* :meth:`render_text` — a Prometheus-style exposition (``GET
  /metrics``), counters as ``name{label="…"} value`` lines and
  latencies as pre-computed ``*_seconds{quantile="…"}`` gauges.

Latency reservoirs keep the most recent :data:`RESERVOIR_SIZE`
observations per route (bounded memory under sustained load) alongside
exact running count/sum, so throughput math never loses events even
when quantiles are estimated from the tail.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Mapping

import numpy as np

from repro.exceptions import ValidationError
from repro.io import atomic_write_text

__all__ = ["MetricsRegistry", "RESERVOIR_SIZE"]

#: Most recent latency observations retained per route.
RESERVOIR_SIZE = 10_000

#: Quantiles exported for every latency series.
_QUANTILES = (0.5, 0.95, 0.99)


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + body + "}"


class MetricsRegistry:
    """Thread-safe counters and per-route latency reservoirs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        self._latency: dict[str, deque[float]] = {}
        self._latency_count: dict[str, int] = {}
        self._latency_sum: dict[str, float] = {}

    def increment(
        self, name: str, amount: float = 1.0, **labels: str
    ) -> None:
        """Add ``amount`` to counter ``name`` with ``labels``."""
        if amount < 0:
            raise ValidationError(f"counters only go up; got {amount}")
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def observe_latency(self, route: str, seconds: float) -> None:
        """Record one request latency for ``route``."""
        if seconds < 0:
            raise ValidationError(f"latency must be >= 0, got {seconds}")
        with self._lock:
            reservoir = self._latency.get(route)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[route] = reservoir
            reservoir.append(seconds)
            self._latency_count[route] = self._latency_count.get(route, 0) + 1
            self._latency_sum[route] = self._latency_sum.get(route, 0.0) + seconds

    def counter_value(self, name: str, **labels: str) -> float:
        """The current value of one counter (0.0 when never touched)."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._counters.get(key, 0.0)

    def snapshot(self) -> dict[str, object]:
        """All metrics as a JSON-serializable dict."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                # counters mutate between calls, so no caching
                for (name, labels), value in sorted(self._counters.items())  # repro-hot: disable=P006
            ]
            latency: dict[str, dict[str, float]] = {}
            # routes appear as traffic arrives, so no caching
            for route, reservoir in sorted(self._latency.items()):  # repro-hot: disable=P006
                observed = np.asarray(reservoir, dtype=np.float64)
                quantiles = np.quantile(observed, _QUANTILES)
                latency[route] = {
                    "count": float(self._latency_count[route]),
                    "sum_seconds": self._latency_sum[route],
                    "p50_seconds": float(quantiles[0]),
                    "p95_seconds": float(quantiles[1]),
                    "p99_seconds": float(quantiles[2]),
                }
        return {"counters": counters, "latency": latency}

    def render_text(self) -> str:
        """Prometheus-style text exposition of every metric."""
        snapshot = self.snapshot()
        lines: list[str] = []
        for entry in snapshot["counters"]:  # type: ignore[union-attr]
            assert isinstance(entry, dict)
            lines.append(
                f"{entry['name']}{_label_suffix(entry['labels'])} "
                f"{entry['value']:g}"
            )
        latency = snapshot["latency"]
        assert isinstance(latency, dict)
        for route, stats in latency.items():
            labels = {"route": route}
            lines.append(
                f"request_latency_seconds_count{_label_suffix(labels)} "
                f"{stats['count']:g}"
            )
            lines.append(
                f"request_latency_seconds_sum{_label_suffix(labels)} "
                f"{stats['sum_seconds']:.6f}"
            )
            for quantile in _QUANTILES:
                q_labels = {"route": route, "quantile": f"{quantile:g}"}
                key = f"p{int(quantile * 100)}_seconds"
                lines.append(
                    f"request_latency_seconds{_label_suffix(q_labels)} "
                    f"{stats[key]:.6f}"
                )
        return "\n".join(lines) + "\n"

    def flush(self, path: str) -> None:
        """Atomically write :meth:`snapshot` as JSON to ``path``.

        Called after a graceful drain (by the CLI and the load
        harness) so the final state of a terminated server survives
        it.
        """
        atomic_write_text(path, json.dumps(self.snapshot(), indent=2, sort_keys=True))
