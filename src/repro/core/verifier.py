"""The end-to-end pharmacy verification system.

:class:`PharmacyVerifier` is the library's one-stop API: train it on a
labelled corpus, then hand it crawled websites (or URLs on a host) and
receive a :class:`VerificationReport` with the classification, the
membership probability, the trust scores, and the cumulative rank —
everything a human reviewer triaging pharmacies would consume.

Internally it composes the pieces exactly as the paper does: summary
documents → TF-IDF text classifier, the training-set TrustRank
propagation for network scores, and the Section-5 cumulative ranking.

Verification degrades gracefully instead of failing: a site whose
crawl was partial (see :attr:`~repro.web.crawler.CrawlStats.is_partial`)
or whose content supports only one evidence channel (no usable text, no
network signal) still gets a report — scored from whatever evidence
exists, flagged ``degraded`` with an explicit ``confidence`` and the
reasons spelled out — so a misbehaving web thins confidence, never the
report stream.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ranking import RankingResult, rank_pharmacies
from repro.core.text_pipeline import TfidfTextPipeline
from repro.data.corpus import ILLEGITIMATE, LEGITIMATE, PharmacyCorpus
from repro.exceptions import NotFittedError, ReproError, ValidationError
from repro.ml.base import BaseClassifier
from repro.ml.naive_bayes import MultinomialNB
from repro.network.construction import build_pharmacy_graph
from repro.network.trustrank import trustrank
from repro.text.summarization import Summarizer
from repro.web.crawler import Crawler, CrawlStats
from repro.web.host import WebHost
from repro.web.resilience.clock import Clock, VirtualClock
from repro.web.resilience.retry import RetryPolicy
from repro.web.site import Website

logger = logging.getLogger(__name__)

__all__ = ["PharmacyVerifier", "VerificationReport"]


#: Confidence penalties per degradation reason; reports bottom out at
#: :data:`MIN_CONFIDENCE` rather than zero (a report always says
#: *something*).
_CONFIDENCE_PENALTIES = {
    "partial_crawl": 0.3,
    "no_text": 0.4,
    "no_network_signal": 0.2,
    "deadline_exceeded": 0.5,
}

MIN_CONFIDENCE = 0.1


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """Verdict for one pharmacy website.

    Attributes:
        domain: the pharmacy's registrable domain.
        predicted_label: 1 legitimate, 0 illegitimate.
        legitimacy_probability: text-classifier membership probability
            of the legitimate class (0.5 when text evidence was
            unavailable and the verdict is network-only).
        text_rank: textRank term of the cumulative ranking model.
        network_rank: networkRank term (TrustRank-derived).
        rank_score: text_rank + network_rank (Section 5).
        degraded: the verdict rests on partial or single-channel
            evidence; treat it as triage input, not a final call.
        confidence: 1.0 for a full-evidence verdict, lowered per
            degradation reason (never below :data:`MIN_CONFIDENCE`).
        degradation_reasons: why the verdict is degraded — a subset of
            ``{"partial_crawl", "no_text", "no_network_signal"}``.
    """

    domain: str
    predicted_label: int
    legitimacy_probability: float
    text_rank: float
    network_rank: float
    rank_score: float
    degraded: bool = False
    confidence: float = 1.0
    degradation_reasons: tuple[str, ...] = ()

    @property
    def is_legitimate(self) -> bool:
        return self.predicted_label == LEGITIMATE


class PharmacyVerifier:
    """Train-once, verify-many pharmacy verification system.

    Args:
        classifier: text classifier prototype (default NBM — the
            paper's most robust AUC performer).
        max_terms: summary subsample size (None = all terms).
        damping: TrustRank damping factor.
        seed: RNG seed for summarization subsampling.
    """

    def __init__(
        self,
        classifier: BaseClassifier | None = None,
        max_terms: int | None = 1000,
        damping: float = 0.85,
        seed: int = 0,
    ) -> None:
        self._summarizer = Summarizer(max_terms=max_terms, seed=seed)
        self._pipeline = TfidfTextPipeline(classifier or MultinomialNB())
        self._damping = damping
        self._trust_scores: dict[str, float] | None = None
        self._training_corpus: PharmacyCorpus | None = None
        self._decision_threshold: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self._trust_scores is not None

    @property
    def decision_threshold(self) -> float | None:
        """Probability threshold set by :meth:`tune_threshold` (if any)."""
        return self._decision_threshold

    def tune_threshold(
        self,
        sites: Sequence[Website],
        labels: Sequence[int],
        min_precision: float = 0.95,
    ) -> float | None:
        """Pick the decision threshold for a legitimate-precision floor.

        The operational knob of a verification deployment: only mark a
        pharmacy legitimate when the expected precision of that call
        stays above ``min_precision``, maximizing recall under that
        constraint.  Evaluate on held-out sites, not the training set.

        Args:
            sites: held-out websites.
            labels: their oracle labels.
            min_precision: the precision floor for the legitimate call.

        Returns:
            The chosen threshold, or ``None`` when no threshold meets
            the floor (the verifier then falls back to argmax).
        """
        from repro.ml.metrics import threshold_for_precision

        if self._trust_scores is None:
            raise NotFittedError("PharmacyVerifier has not been fitted")
        documents = [self._summarizer.summarize_site(s) for s in sites]
        scores = self._pipeline.predict_proba(documents)[:, -1]
        self._decision_threshold = threshold_for_precision(
            labels, scores, min_precision
        )
        return self._decision_threshold

    def fit(self, corpus: PharmacyCorpus) -> "PharmacyVerifier":
        """Train on a labelled corpus (the oracle-known set P0)."""
        documents = [self._summarizer.summarize_site(s) for s in corpus.sites]
        self._pipeline.fit(documents, corpus.labels)
        graph = build_pharmacy_graph(corpus.sites)
        trusted = [
            domain
            for domain, label in zip(corpus.domains, corpus.labels)
            if label == LEGITIMATE
        ]
        self._trust_scores = trustrank(graph, trusted, damping=self._damping)
        self._training_corpus = corpus
        logger.info(
            "verifier fitted on %d pharmacies (%d legitimate seeds, "
            "%d graph nodes)",
            len(corpus),
            len(trusted),
            graph.n_nodes,
        )
        return self

    # -- verification -------------------------------------------------------

    def verify_site(
        self, site: Website, crawl_stats: CrawlStats | None = None
    ) -> VerificationReport:
        """Verify one crawled website (degraded when evidence is thin)."""
        return self.verify_sites([site], crawl_stats=[crawl_stats])[0]

    def verify_sites(
        self,
        sites: Sequence[Website],
        crawl_stats: Sequence[CrawlStats | None] | None = None,
        *,
        deadline: float | None = None,
        clock: Clock | None = None,
        deadline_chunk: int = 8,
    ) -> list[VerificationReport]:
        """Verify a batch of crawled websites.

        Every site gets a report.  Sites with usable text go through
        the text pipeline; sites without (empty or zero-page crawls)
        fall back to network-only scoring with ``degraded=True`` — this
        method does not raise on thin or partial content.

        With a ``deadline``, the batch is scored in ``deadline_chunk``
        chunks and the clock is checked between them: chunks whose turn
        comes after the deadline skip the text pipeline and get cheap
        network-only reports flagged ``deadline_exceeded`` — the serving
        layer's guarantee that an overloaded verifier returns partial
        degraded results instead of hanging past its budget.  Per-site
        results are independent, so the chunked path scores exactly as
        the unchunked one for every site the budget covers.

        Args:
            sites: crawled websites.
            crawl_stats: optional per-site crawl statistics, aligned
                with ``sites``; partial crawls (see
                :attr:`~repro.web.crawler.CrawlStats.is_partial`) mark
                their reports degraded.
            deadline: absolute ``clock.monotonic()`` reading after
                which remaining sites degrade (``None`` = no budget).
            clock: time source for the deadline (default: a fresh
                :class:`~repro.web.resilience.VirtualClock`, under
                which a deadline in the future never expires —
                production servers inject a real clock).
            deadline_chunk: sites scored between deadline checks.
        """
        if self._trust_scores is None:
            raise NotFittedError("PharmacyVerifier has not been fitted")
        if crawl_stats is not None and len(crawl_stats) != len(sites):
            raise ValidationError(
                f"crawl_stats and sites disagree: {len(crawl_stats)} vs {len(sites)}"
            )
        if deadline_chunk < 1:
            raise ValidationError(
                f"deadline_chunk must be >= 1, got {deadline_chunk}"
            )
        if deadline is None:
            return self._verify_batch(sites, crawl_stats)
        timer: Clock = clock if clock is not None else VirtualClock()
        reports: list[VerificationReport] = []
        for start in range(0, len(sites), deadline_chunk):
            chunk = sites[start : start + deadline_chunk]
            chunk_stats = (
                crawl_stats[start : start + deadline_chunk]
                if crawl_stats is not None
                else None
            )
            # Time is injected: deterministic VirtualClock unless the
            # caller opts into real time (the serving layer does).
            if timer.monotonic() >= deadline:  # repro-flow: disable=D002
                reports.extend(self._expired_reports(chunk, chunk_stats))
            else:
                reports.extend(self._verify_batch(chunk, chunk_stats))
        return reports

    def _verify_batch(
        self,
        sites: Sequence[Website],
        crawl_stats: Sequence[CrawlStats | None] | None,
    ) -> list[VerificationReport]:
        """Score one batch with no deadline bookkeeping."""
        reasons: list[list[str]] = []
        scorable: list[int] = []
        for i, site in enumerate(sites):
            site_reasons = []
            stats = crawl_stats[i] if crawl_stats is not None else None
            if stats is not None and stats.is_partial:
                site_reasons.append("partial_crawl")
            if site.n_pages == 0 or not site.merged_text().strip():
                site_reasons.append("no_text")
            else:
                scorable.append(i)
            if not site.outbound_endpoints() and (
                self._trust_scores.get(site.domain, 0.0) <= 0.0
            ):
                site_reasons.append("no_network_signal")
            reasons.append(site_reasons)

        probas, labels, text_ranks = self._score_text(
            [sites[i] for i in scorable]
        )
        if probas is None:
            # Text pipeline failed wholesale: degrade every site that
            # depended on it to network-only scoring.
            for i in scorable:
                reasons[i].append("no_text")
            scorable = []
        by_index = {idx: pos for pos, idx in enumerate(scorable)}

        network_ranks = self._network_ranks(sites)
        reports = []
        for i, site in enumerate(sites):
            network_rank = float(network_ranks[i])
            if i in by_index:
                pos = by_index[i]
                proba = float(probas[pos])
                label = int(labels[pos])
                text_rank = float(text_ranks[pos])
            else:
                # Network-only verdict: neutral probability, any trust
                # at all tips the label to legitimate.
                proba = 0.5
                text_rank = 0.0
                label = LEGITIMATE if network_rank > 0.0 else ILLEGITIMATE
            site_reasons = tuple(dict.fromkeys(reasons[i]))
            confidence = 1.0
            for reason in site_reasons:
                confidence -= _CONFIDENCE_PENALTIES.get(reason, 0.0)
            reports.append(
                VerificationReport(
                    domain=site.domain,
                    predicted_label=label,
                    legitimacy_probability=proba,
                    text_rank=text_rank,
                    network_rank=network_rank,
                    rank_score=text_rank + network_rank,
                    degraded=bool(site_reasons),
                    confidence=max(MIN_CONFIDENCE, confidence),
                    degradation_reasons=site_reasons,
                )
            )
        return reports

    def _expired_reports(
        self,
        sites: Sequence[Website],
        crawl_stats: Sequence[CrawlStats | None] | None,
    ) -> list[VerificationReport]:
        """Cheap network-only reports for sites past their deadline.

        No text pipeline, no summarization — just the trust-score
        lookups (dict reads), so emitting these consumes effectively
        none of an exhausted budget.  Reports carry the
        ``deadline_exceeded`` reason on top of any ``partial_crawl``
        flag their stats earned.
        """
        network_ranks = self._network_ranks(sites)
        reports = []
        for i, site in enumerate(sites):
            site_reasons = ["deadline_exceeded"]
            stats = crawl_stats[i] if crawl_stats is not None else None
            if stats is not None and stats.is_partial:
                site_reasons.append("partial_crawl")
            network_rank = float(network_ranks[i])
            confidence = 1.0
            for reason in site_reasons:
                confidence -= _CONFIDENCE_PENALTIES.get(reason, 0.0)
            reports.append(
                VerificationReport(
                    domain=site.domain,
                    predicted_label=(
                        LEGITIMATE if network_rank > 0.0 else ILLEGITIMATE
                    ),
                    legitimacy_probability=0.5,
                    text_rank=0.0,
                    network_rank=network_rank,
                    rank_score=network_rank,
                    degraded=True,
                    confidence=max(MIN_CONFIDENCE, confidence),
                    degradation_reasons=tuple(site_reasons),
                )
            )
        return reports

    def _score_text(self, sites: Sequence[Website]):
        """Run the text pipeline; ``(None, None, None)`` on failure."""
        if not sites:
            return np.empty(0), np.empty(0, dtype=int), np.empty(0)
        try:
            documents = [self._summarizer.summarize_site(s) for s in sites]
            probas = self._pipeline.predict_proba(documents)[:, -1]
            if self._decision_threshold is not None:
                labels = (probas >= self._decision_threshold).astype(int)
            else:
                labels = self._pipeline.predict(documents)
            text_ranks = self._pipeline.text_rank(documents)
            return probas, labels, text_ranks
        except ReproError:
            logger.warning(
                "text pipeline failed on %d site(s); degrading to "
                "network-only verdicts",
                len(sites),
                exc_info=True,
            )
            return None, None, None

    def verify_url(
        self,
        host: WebHost,
        url: str,
        max_pages: int = 200,
        retry_policy: RetryPolicy | None = None,
        deadline: float | None = None,
        fetch_budget: int | None = None,
    ) -> VerificationReport:
        """Crawl a site from ``url`` on ``host`` and verify it.

        Resilience knobs are forwarded to the
        :class:`~repro.web.crawler.Crawler`; the crawl's stats feed the
        report, so an interrupted or partially failed crawl yields a
        ``degraded`` verdict instead of an exception (the seed itself
        being unreachable still raises
        :class:`~repro.exceptions.CrawlError`).
        """
        crawler = Crawler(
            host,
            max_pages=max_pages,
            retry_policy=retry_policy,
            deadline=deadline,
            fetch_budget=fetch_budget,
        )
        site = crawler.crawl_site(url)
        return self.verify_site(site, crawl_stats=crawler.last_stats)

    def rank_sites(self, sites: Sequence[Website],
                   oracle_labels: Sequence[int] | None = None) -> RankingResult:
        """Rank a batch of sites by decreasing legitimacy (Problem 2)."""
        reports = self.verify_sites(sites)
        return rank_pharmacies(
            domains=[r.domain for r in reports],
            text_ranks=[r.text_rank for r in reports],
            network_ranks=[r.network_rank for r in reports],
            oracle_labels=oracle_labels,
        )

    # -- internals --------------------------------------------------------------

    def _network_rank(self, site: Website) -> float:
        """TrustRank-derived network score of a (possibly unseen) site.

        Own node score (if the site was in the training graph) plus the
        mean trust of its outbound endpoints, which generalizes to
        sites outside the training graph.
        """
        return float(self._network_ranks([site])[0])

    def _network_ranks(self, sites: Sequence[Website]) -> np.ndarray:
        """Batched network ranks: one segmented mean over all endpoints.

        Endpoint trust lookups of every site are concatenated into one
        flat array and per-site sums come from a single
        ``np.add.reduceat`` over the segment starts; sites without
        outbound endpoints keep an outlink term of exactly 0.0.
        """
        assert self._trust_scores is not None
        trust = self._trust_scores.get
        own = np.array([trust(site.domain, 0.0) for site in sites], dtype=np.float64)
        per_site = [site.outbound_endpoints() for site in sites]
        lengths = np.array([len(endpoints) for endpoints in per_site], dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            return own
        flat = np.fromiter(
            (trust(e, 0.0) for endpoints in per_site for e in endpoints),
            dtype=np.float64,
            count=total,
        )
        # reduceat mishandles zero-length segments (it reads the next
        # one), so reduce only over the non-empty sites' offsets.
        nonzero = lengths > 0
        offsets = np.concatenate(([0], np.cumsum(lengths[nonzero])[:-1]))
        outlink = np.zeros(len(per_site), dtype=np.float64)
        outlink[nonzero] = np.add.reduceat(flat, offsets) / lengths[nonzero]
        return own + outlink
