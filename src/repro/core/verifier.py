"""The end-to-end pharmacy verification system.

:class:`PharmacyVerifier` is the library's one-stop API: train it on a
labelled corpus, then hand it crawled websites (or URLs on a host) and
receive a :class:`VerificationReport` with the classification, the
membership probability, the trust scores, and the cumulative rank —
everything a human reviewer triaging pharmacies would consume.

Internally it composes the pieces exactly as the paper does: summary
documents → TF-IDF text classifier, the training-set TrustRank
propagation for network scores, and the Section-5 cumulative ranking.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ranking import RankingResult, rank_pharmacies
from repro.core.text_pipeline import TfidfTextPipeline
from repro.data.corpus import LEGITIMATE, PharmacyCorpus
from repro.exceptions import NotFittedError
from repro.ml.base import BaseClassifier
from repro.ml.naive_bayes import MultinomialNB
from repro.network.construction import build_pharmacy_graph
from repro.network.trustrank import trustrank
from repro.text.summarization import Summarizer
from repro.web.crawler import Crawler
from repro.web.host import WebHost
from repro.web.site import Website

logger = logging.getLogger(__name__)

__all__ = ["PharmacyVerifier", "VerificationReport"]


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """Verdict for one pharmacy website.

    Attributes:
        domain: the pharmacy's registrable domain.
        predicted_label: 1 legitimate, 0 illegitimate.
        legitimacy_probability: text-classifier membership probability
            of the legitimate class.
        text_rank: textRank term of the cumulative ranking model.
        network_rank: networkRank term (TrustRank-derived).
        rank_score: text_rank + network_rank (Section 5).
    """

    domain: str
    predicted_label: int
    legitimacy_probability: float
    text_rank: float
    network_rank: float
    rank_score: float

    @property
    def is_legitimate(self) -> bool:
        return self.predicted_label == LEGITIMATE


class PharmacyVerifier:
    """Train-once, verify-many pharmacy verification system.

    Args:
        classifier: text classifier prototype (default NBM — the
            paper's most robust AUC performer).
        max_terms: summary subsample size (None = all terms).
        damping: TrustRank damping factor.
        seed: RNG seed for summarization subsampling.
    """

    def __init__(
        self,
        classifier: BaseClassifier | None = None,
        max_terms: int | None = 1000,
        damping: float = 0.85,
        seed: int = 0,
    ) -> None:
        self._summarizer = Summarizer(max_terms=max_terms, seed=seed)
        self._pipeline = TfidfTextPipeline(classifier or MultinomialNB())
        self._damping = damping
        self._trust_scores: dict[str, float] | None = None
        self._training_corpus: PharmacyCorpus | None = None
        self._decision_threshold: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self._trust_scores is not None

    @property
    def decision_threshold(self) -> float | None:
        """Probability threshold set by :meth:`tune_threshold` (if any)."""
        return self._decision_threshold

    def tune_threshold(
        self,
        sites: Sequence[Website],
        labels: Sequence[int],
        min_precision: float = 0.95,
    ) -> float | None:
        """Pick the decision threshold for a legitimate-precision floor.

        The operational knob of a verification deployment: only mark a
        pharmacy legitimate when the expected precision of that call
        stays above ``min_precision``, maximizing recall under that
        constraint.  Evaluate on held-out sites, not the training set.

        Args:
            sites: held-out websites.
            labels: their oracle labels.
            min_precision: the precision floor for the legitimate call.

        Returns:
            The chosen threshold, or ``None`` when no threshold meets
            the floor (the verifier then falls back to argmax).
        """
        from repro.ml.metrics import threshold_for_precision

        if self._trust_scores is None:
            raise NotFittedError("PharmacyVerifier has not been fitted")
        documents = [self._summarizer.summarize_site(s) for s in sites]
        scores = self._pipeline.predict_proba(documents)[:, -1]
        self._decision_threshold = threshold_for_precision(
            labels, scores, min_precision
        )
        return self._decision_threshold

    def fit(self, corpus: PharmacyCorpus) -> "PharmacyVerifier":
        """Train on a labelled corpus (the oracle-known set P0)."""
        documents = [self._summarizer.summarize_site(s) for s in corpus.sites]
        self._pipeline.fit(documents, corpus.labels)
        graph = build_pharmacy_graph(corpus.sites)
        trusted = [
            domain
            for domain, label in zip(corpus.domains, corpus.labels)
            if label == LEGITIMATE
        ]
        self._trust_scores = trustrank(graph, trusted, damping=self._damping)
        self._training_corpus = corpus
        logger.info(
            "verifier fitted on %d pharmacies (%d legitimate seeds, "
            "%d graph nodes)",
            len(corpus),
            len(trusted),
            graph.n_nodes,
        )
        return self

    # -- verification -------------------------------------------------------

    def verify_site(self, site: Website) -> VerificationReport:
        """Verify one crawled website."""
        return self.verify_sites([site])[0]

    def verify_sites(self, sites: Sequence[Website]) -> list[VerificationReport]:
        """Verify a batch of crawled websites."""
        if self._trust_scores is None:
            raise NotFittedError("PharmacyVerifier has not been fitted")
        documents = [self._summarizer.summarize_site(s) for s in sites]
        probas = self._pipeline.predict_proba(documents)[:, -1]
        if self._decision_threshold is not None:
            labels = (probas >= self._decision_threshold).astype(int)
        else:
            labels = self._pipeline.predict(documents)
        text_ranks = self._pipeline.text_rank(documents)
        reports = []
        for site, label, proba, text_rank in zip(
            sites, labels, probas, text_ranks
        ):
            network_rank = self._network_rank(site)
            reports.append(
                VerificationReport(
                    domain=site.domain,
                    predicted_label=int(label),
                    legitimacy_probability=float(proba),
                    text_rank=float(text_rank),
                    network_rank=network_rank,
                    rank_score=float(text_rank) + network_rank,
                )
            )
        return reports

    def verify_url(self, host: WebHost, url: str, max_pages: int = 200
                   ) -> VerificationReport:
        """Crawl a site from ``url`` on ``host`` and verify it."""
        crawler = Crawler(host, max_pages=max_pages)
        return self.verify_site(crawler.crawl_site(url))

    def rank_sites(self, sites: Sequence[Website],
                   oracle_labels: Sequence[int] | None = None) -> RankingResult:
        """Rank a batch of sites by decreasing legitimacy (Problem 2)."""
        reports = self.verify_sites(sites)
        return rank_pharmacies(
            domains=[r.domain for r in reports],
            text_ranks=[r.text_rank for r in reports],
            network_ranks=[r.network_rank for r in reports],
            oracle_labels=oracle_labels,
        )

    # -- internals --------------------------------------------------------------

    def _network_rank(self, site: Website) -> float:
        """TrustRank-derived network score of a (possibly unseen) site.

        Own node score (if the site was in the training graph) plus the
        mean trust of its outbound endpoints, which generalizes to
        sites outside the training graph.
        """
        assert self._trust_scores is not None
        own = self._trust_scores.get(site.domain, 0.0)
        endpoints = site.outbound_endpoints()
        outlink = (
            float(np.mean([self._trust_scores.get(e, 0.0) for e in endpoints]))
            if endpoints
            else 0.0
        )
        return own + outlink
