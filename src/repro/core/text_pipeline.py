"""Text-classification pipelines (Section 4.1): TF-IDF and N-Gram Graphs.

A *pipeline* wires one text representation, an optional resampler, and
one classifier into a fit/predict unit operating on summary documents.
Two flavours mirror the paper:

* :class:`TfidfTextPipeline` — Term Vector model with TF-IDF weights;
  classifiers see a sparse document-term matrix.
* :class:`NGramGraphTextPipeline` — per-class character 4-gram graphs;
  classifiers see the 8-dimensional CS/SS/VS/NVS similarity features
  (Figure 2).  Per the paper, no resampling is used with this
  representation, and the class graphs are built from a random half of
  the training instances.

Both expose ``text_rank`` — the ranking signal of Section 5:
probabilistic classifiers contribute their legitimate-class membership
probability, non-probabilistic ones (SVM) the hard 0/1 label, and the
N-Gram-Graph pipeline the similarity sum of Equation 3.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NotFittedError
from repro.ml.base import BaseClassifier, clone
from repro.ml.svm import LinearSVC
from repro.text.ngram_graph import ClassGraphModel
from repro.text.summarization import SummaryDocument
from repro.text.term_vector import TfidfVectorizer

__all__ = ["TfidfTextPipeline", "NGramGraphTextPipeline"]


class TfidfTextPipeline:
    """Term-Vector (TF-IDF) text classification pipeline.

    Args:
        classifier: unfitted classifier prototype (cloned on fit).
        sampler: optional resampler with ``fit_resample(X, y)``
            (:class:`~repro.ml.sampling.RandomUnderSampler` or
            :class:`~repro.ml.sampling.SMOTE`); ``None`` keeps the
            natural distribution.
        min_df: vectorizer document-frequency floor.
        probabilistic_rank: when False (the paper's convention for
            SVM), ``text_rank`` returns hard 0/1 labels instead of
            membership probabilities.  Defaults to auto: False for
            LinearSVC, True otherwise.
        calibrate: fit a Platt scaler on a held-out slice of the
            training data so ``predict_proba`` (and ``text_rank``,
            which becomes probabilistic) returns calibrated
            probabilities — the production alternative to the paper's
            hard 0/1 SVM ranking.
        calibration_fraction: training fraction held out for Platt
            scaling when ``calibrate`` is on.
        seed: RNG seed for the calibration split.
    """

    def __init__(
        self,
        classifier: BaseClassifier,
        sampler=None,
        min_df: int = 1,
        probabilistic_rank: bool | None = None,
        calibrate: bool = False,
        calibration_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        self._prototype = classifier
        self._sampler = sampler
        self._min_df = min_df
        if probabilistic_rank is None:
            probabilistic_rank = calibrate or not isinstance(classifier, LinearSVC)
        self._probabilistic_rank = probabilistic_rank
        self._calibrate = calibrate
        self._calibration_fraction = calibration_fraction
        self._seed = seed
        self._vectorizer: TfidfVectorizer | None = None
        self._classifier: BaseClassifier | None = None
        self._scaler = None

    @property
    def classifier(self) -> BaseClassifier:
        if self._classifier is None:
            raise NotFittedError("TfidfTextPipeline has not been fitted")
        return self._classifier

    def fit(
        self, documents: Sequence[SummaryDocument], y: Sequence[int]
    ) -> "TfidfTextPipeline":
        """Vectorize, optionally resample, and fit the classifier."""
        tokens = [doc.tokens for doc in documents]
        vectorizer = TfidfVectorizer(min_df=self._min_df)
        X = vectorizer.fit_transform(tokens)
        y_arr = np.asarray(y, dtype=np.int64)
        self._vectorizer = vectorizer
        self._scaler = None
        if self._calibrate:
            from repro.ml.calibration import PlattScaler
            from repro.ml.model_selection import train_test_split

            fit_idx, holdout_idx = train_test_split(
                y_arr, test_fraction=self._calibration_fraction, seed=self._seed
            )
            X_fit, y_fit = X[fit_idx], y_arr[fit_idx]
            if self._sampler is not None:
                X_fit, y_fit = self._sampler.fit_resample(X_fit, y_fit)
            classifier = clone(self._prototype)
            classifier.fit(X_fit, y_fit)
            self._scaler = PlattScaler().fit(
                classifier.decision_scores(X[holdout_idx]), y_arr[holdout_idx]
            )
            self._classifier = classifier
            return self
        if self._sampler is not None:
            X, y_arr = self._sampler.fit_resample(X, y_arr)
        classifier = clone(self._prototype)
        classifier.fit(X, y_arr)
        self._classifier = classifier
        return self

    def _transform(self, documents: Sequence[SummaryDocument]):
        if self._vectorizer is None:
            raise NotFittedError("TfidfTextPipeline has not been fitted")
        return self._vectorizer.transform([doc.tokens for doc in documents])

    def predict(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        if self._scaler is not None:
            proba = self.predict_proba(documents)
            classes = self.classifier._fitted_classes()
            return classes[(proba[:, 1] >= 0.5).astype(np.int64)]
        return self.classifier.predict(self._transform(documents))

    def predict_proba(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        X = self._transform(documents)
        if self._scaler is not None:
            pos = self._scaler.transform(self.classifier.decision_scores(X))
            return np.column_stack([1.0 - pos, pos])
        return self.classifier.predict_proba(X)

    def decision_scores(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        """Continuous positive-class score for ROC analysis."""
        return self.classifier.decision_scores(self._transform(documents))

    def text_rank(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        """The textRank term of Section 5.

        Probability of the legitimate class for probabilistic
        classifiers, hard 0/1 for non-probabilistic ones.
        """
        if self._probabilistic_rank:
            return self.predict_proba(documents)[:, -1]
        return self.predict(documents).astype(np.float64)


class NGramGraphTextPipeline:
    """N-Gram-Graph text classification pipeline (Figure 2).

    Args:
        classifier: unfitted classifier prototype (cloned on fit).
        n: n-gram rank (paper: 4).
        window: Dwin (paper: 4).
        class_sample_fraction: fraction of training docs per class used
            to build the class graphs (paper: 0.5).
        seed: class-graph subsample seed.
    """

    def __init__(
        self,
        classifier: BaseClassifier,
        n: int = 4,
        window: int = 4,
        class_sample_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        self._prototype = classifier
        self._n = n
        self._window = window
        self._fraction = class_sample_fraction
        self._seed = seed
        self._model: ClassGraphModel | None = None
        self._classifier: BaseClassifier | None = None

    @property
    def classifier(self) -> BaseClassifier:
        if self._classifier is None:
            raise NotFittedError("NGramGraphTextPipeline has not been fitted")
        return self._classifier

    @property
    def class_graph_model(self) -> ClassGraphModel:
        if self._model is None:
            raise NotFittedError("NGramGraphTextPipeline has not been fitted")
        return self._model

    def fit(
        self, documents: Sequence[SummaryDocument], y: Sequence[int]
    ) -> "NGramGraphTextPipeline":
        """Build class graphs and fit the classifier on similarities."""
        texts = [doc.text for doc in documents]
        y_arr = np.asarray(y, dtype=np.int64)
        model = ClassGraphModel(
            n=self._n,
            window=self._window,
            class_sample_fraction=self._fraction,
            seed=self._seed,
        )
        features = model.fit_transform(texts, y_arr.tolist())
        classifier = clone(self._prototype)
        classifier.fit(features, y_arr)
        self._model = model
        self._classifier = classifier
        return self

    def _transform(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        return self.class_graph_model.transform([doc.text for doc in documents])

    def predict(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        return self.classifier.predict(self._transform(documents))

    def predict_proba(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        return self.classifier.predict_proba(self._transform(documents))

    def decision_scores(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        return self.classifier.decision_scores(self._transform(documents))

    def text_rank(self, documents: Sequence[SummaryDocument]) -> np.ndarray:
        """Equation 3: the 8-term similarity sum against both classes.

        ``CS_legit + (1 - CS_illegit) + SS_legit + (1 - SS_illegit) +
        VS_legit + (1 - VS_illegit) + NVS_legit + (1 - NVS_illegit)``
        """
        model = self.class_graph_model
        features = self._transform(documents)
        classes = model.classes
        # Columns are 4 similarities per class, in model.classes order.
        by_class = {
            label: features[:, 4 * i : 4 * (i + 1)]
            for i, label in enumerate(classes)
        }
        legit = by_class[max(classes)]
        illegit = by_class[min(classes)]
        return legit.sum(axis=1) + (1.0 - illegit).sum(axis=1)
