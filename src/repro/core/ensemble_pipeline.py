"""Ensemble classification (Section 6.3.3) and combined-feature models.

:class:`EnsembleClassificationPipeline` builds a model library out of
text and network models fitted on a sub-training set, runs Ensemble
Selection (Caruana et al. 2004) on a held-out hill-climbing slice of
the training fold, and predicts by bag-averaged probabilities —
mirroring the paper's use of Weka's "Ensemble Selection".

:class:`CombinedFeaturePipeline` is the future-work alternative
(Section 7b): a single classifier over the concatenation of text and
network features.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.network_pipeline import NetworkClassificationPipeline
from repro.data.corpus import PharmacyCorpus
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, clone, ensure_dense
from repro.ml.ensemble import EnsembleSelection, LibraryModel
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import train_test_split
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.svm import LinearSVC
from repro.ml.tree import C45Tree
from repro.network.graph import DirectedGraph
from repro.text.ngram_graph import ClassGraphModel
from repro.text.summarization import SummaryDocument
from repro.text.term_vector import TfidfVectorizer

__all__ = ["EnsembleClassificationPipeline", "CombinedFeaturePipeline"]


class EnsembleClassificationPipeline:
    """Text + network model library combined by Ensemble Selection.

    The library defaults to the paper's strongest members: NBM, SVM and
    J48 on TF-IDF text, MLP on N-Gram-Graph similarities, and Naïve
    Bayes on TrustRank network scores.

    The pipeline is transductive (the network member re-runs TrustRank
    per training fold), so like
    :class:`~repro.core.network_pipeline.NetworkClassificationPipeline`
    it fits on corpus row indices.

    Args:
        corpus: full working set.
        documents: summary documents aligned with the corpus rows.
        hillclimb_fraction: slice of the training fold held out for the
            greedy selection.
        seed: RNG seed (hill-climbing split, member classifiers).
        include_ngg_member: include the (expensive) N-Gram-Graph MLP
            member; disable for quick runs.
        graph: optional prebuilt link graph for the corpus, shared with
            the network member (see
            :class:`~repro.core.network_pipeline.NetworkClassificationPipeline`).
    """

    def __init__(
        self,
        corpus: PharmacyCorpus,
        documents: Sequence[SummaryDocument],
        hillclimb_fraction: float = 0.3,
        seed: int = 0,
        include_ngg_member: bool = True,
        graph: DirectedGraph | None = None,
    ) -> None:
        if len(documents) != len(corpus):
            raise ValidationError(
                f"documents/corpus length mismatch: {len(documents)} vs {len(corpus)}"
            )
        self._corpus = corpus
        self._documents = list(documents)
        self._hillclimb_fraction = hillclimb_fraction
        self._seed = seed
        self._include_ngg = include_ngg_member
        self._graph = graph
        self._selection: EnsembleSelection | None = None
        self._library: list[LibraryModel] = []

    @property
    def selection(self) -> EnsembleSelection:
        if self._selection is None:
            raise NotFittedError("EnsembleClassificationPipeline is not fitted")
        return self._selection

    def fit(self, train_indices: Sequence[int]) -> "EnsembleClassificationPipeline":
        """Fit the library on a sub-train split and select the bag."""
        train_idx = np.asarray(train_indices, dtype=np.int64)
        labels = self._corpus.labels
        y_train = labels[train_idx]
        sub_rel, hill_rel = train_test_split(
            y_train, test_fraction=self._hillclimb_fraction, seed=self._seed
        )
        sub_idx = train_idx[sub_rel]
        hill_idx = train_idx[hill_rel]

        library = self._build_library(sub_idx)
        selection = EnsembleSelection()
        selection.fit(library, hill_idx, labels[hill_idx])
        self._library = library
        self._selection = selection
        return self

    # -- library construction ----------------------------------------------

    def _build_library(self, sub_idx: np.ndarray) -> list[LibraryModel]:
        labels = self._corpus.labels
        docs = self._documents
        y_sub = labels[sub_idx]
        library: list[LibraryModel] = []

        # Text members on TF-IDF.
        vectorizer = TfidfVectorizer()
        X_text_sub = vectorizer.fit_transform(
            [docs[i].tokens for i in sub_idx]
        )
        X_text_all = vectorizer.transform([doc.tokens for doc in docs])
        for name, prototype in (
            ("nbm-text", MultinomialNB()),
            ("svm-text", LinearSVC(seed=self._seed)),
            ("j48-text", C45Tree(max_candidate_features=400)),
        ):
            model = clone(prototype)
            model.fit(X_text_sub, y_sub)
            library.append(
                LibraryModel(
                    name=name,
                    predict_proba=_indexed_proba(model, X_text_all),
                )
            )

        # N-Gram-Graph member (MLP on similarity features).
        if self._include_ngg:
            ngg = ClassGraphModel(seed=self._seed)
            ngg.fit([docs[i].text for i in sub_idx], y_sub.tolist())
            X_ngg_all = ngg.transform([doc.text for doc in docs])
            mlp = MLPClassifier(seed=self._seed)
            mlp.fit(X_ngg_all[sub_idx], y_sub)
            library.append(
                LibraryModel(
                    name="mlp-ngg",
                    predict_proba=_indexed_proba(mlp, X_ngg_all),
                )
            )

        # Network member (NB on TrustRank scores, seeded on sub-train).
        network = NetworkClassificationPipeline(
            self._corpus, GaussianNB(), graph=self._graph
        )
        network.fit(sub_idx)
        library.append(
            LibraryModel(
                name="nb-network",
                predict_proba=lambda idx: network.predict_proba(idx),
            )
        )
        return library

    # -- prediction --------------------------------------------------------

    def predict(self, indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return self.selection.predict(idx)

    def predict_proba(self, indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return self.selection.predict_proba(idx)

    def decision_scores(self, indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return self.selection.decision_scores(idx)


def _indexed_proba(model: BaseClassifier, X_all) -> Callable[[np.ndarray], np.ndarray]:
    """Close over a fitted model + full feature matrix; index rows."""

    def predict_proba(indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return model.predict_proba(X_all[idx])

    return predict_proba


class CombinedFeaturePipeline:
    """One classifier over concatenated text + network features.

    Future-work extension (Section 7b): instead of voting over separate
    models, concatenate the TF-IDF matrix (densified), the
    N-Gram-Graph similarities, and the TrustRank scores into a single
    feature space.

    Fits on corpus row indices like the other transductive pipelines.

    Args:
        corpus: full working set.
        documents: summary documents aligned with corpus rows.
        classifier: prototype (default MLP).
        max_text_features: TF-IDF vocabulary cap (densified, keep small).
        seed: RNG seed.
    """

    def __init__(
        self,
        corpus: PharmacyCorpus,
        documents: Sequence[SummaryDocument],
        classifier: BaseClassifier | None = None,
        max_text_features: int = 300,
        seed: int = 0,
    ) -> None:
        self._corpus = corpus
        self._documents = list(documents)
        self._prototype = classifier or MLPClassifier(seed=seed)
        self._max_text_features = max_text_features
        self._seed = seed
        self._classifier: BaseClassifier | None = None
        self._X_all: np.ndarray | None = None

    def fit(self, train_indices: Sequence[int]) -> "CombinedFeaturePipeline":
        train_idx = np.asarray(train_indices, dtype=np.int64)
        labels = self._corpus.labels
        docs = self._documents

        vectorizer = TfidfVectorizer(max_features=self._max_text_features)
        vectorizer.fit([docs[i].tokens for i in train_idx])
        X_text = ensure_dense(
            vectorizer.transform([doc.tokens for doc in docs])
        )

        ngg = ClassGraphModel(seed=self._seed)
        ngg.fit(
            [docs[i].text for i in train_idx], labels[train_idx].tolist()
        )
        X_ngg = ngg.transform([doc.text for doc in docs])

        network = NetworkClassificationPipeline(self._corpus, GaussianNB())
        network.fit(train_idx)
        X_net = network.feature_matrix.column("outlink_trust").reshape(-1, 1)

        self._X_all = np.hstack([X_text, X_ngg, X_net])
        classifier = clone(self._prototype)
        classifier.fit(self._X_all[train_idx], labels[train_idx])
        self._classifier = classifier
        return self

    def _require_fitted(self) -> BaseClassifier:
        if self._X_all is None or self._classifier is None:
            raise NotFittedError("CombinedFeaturePipeline is not fitted")
        return self._classifier

    def _rows(self, indices: Sequence[int]) -> np.ndarray:
        assert self._X_all is not None
        idx = np.asarray(indices, dtype=np.int64)
        return self._X_all[idx]

    def predict(self, indices: Sequence[int]) -> np.ndarray:
        return self._require_fitted().predict(self._rows(indices))

    def predict_proba(self, indices: Sequence[int]) -> np.ndarray:
        return self._require_fitted().predict_proba(self._rows(indices))

    def decision_scores(self, indices: Sequence[int]) -> np.ndarray:
        return self._require_fitted().decision_scores(self._rows(indices))
