"""Core layer: the paper's contribution assembled from the substrates."""

from repro.core.config import ExperimentConfig, PRESETS, ScalePreset, preset
from repro.core.ensemble_pipeline import (
    CombinedFeaturePipeline,
    EnsembleClassificationPipeline,
)
from repro.core.evaluation import (
    AggregatedReport,
    MeasureSummary,
    cross_validate_indexed,
    cross_validate_pipeline,
    train_test_evaluate,
)
from repro.core.network_pipeline import NetworkClassificationPipeline
from repro.core.review_queue import (
    ReviewLogEntry,
    ReviewQueue,
    degraded_domains,
    effort_to_find_fraction,
    simulate_review,
)
from repro.core.ranking import (
    OutlierReport,
    RankedPharmacy,
    RankingResult,
    analyze_outliers,
    rank_pharmacies,
)
from repro.core.text_pipeline import NGramGraphTextPipeline, TfidfTextPipeline
from repro.core.verifier import PharmacyVerifier, VerificationReport

__all__ = [
    "ExperimentConfig",
    "PRESETS",
    "ScalePreset",
    "preset",
    "CombinedFeaturePipeline",
    "EnsembleClassificationPipeline",
    "AggregatedReport",
    "MeasureSummary",
    "cross_validate_indexed",
    "cross_validate_pipeline",
    "train_test_evaluate",
    "NetworkClassificationPipeline",
    "ReviewLogEntry",
    "ReviewQueue",
    "degraded_domains",
    "effort_to_find_fraction",
    "simulate_review",
    "OutlierReport",
    "RankedPharmacy",
    "RankingResult",
    "analyze_outliers",
    "rank_pharmacies",
    "NGramGraphTextPipeline",
    "TfidfTextPipeline",
    "PharmacyVerifier",
    "VerificationReport",
]
