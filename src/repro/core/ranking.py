"""Online Pharmacy Ranking — Problem 2 (Section 5).

The trust score of a pharmacy is the cumulative model

    rank(p) = textRank(p) + networkRank(p)

where textRank is the legitimate-class membership probability (TF-IDF
pipelines with probabilistic classifiers), the hard 0/1 label (SVM), or
the Equation-3 similarity sum (N-Gram Graphs); networkRank is the
TrustRank value.  Quality is measured by pairwise orderedness over the
test pairs, and the outlier analysis of Section 6.4 surfaces the
illegitimate pharmacies that fooled the system and the legitimate ones
it under-ranked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.devtools.contracts import check_score_range
from repro.exceptions import ValidationError
from repro.ml.metrics import pairwise_orderedness

__all__ = [
    "RankedPharmacy",
    "RankingResult",
    "OutlierReport",
    "rank_pharmacies",
    "analyze_outliers",
]


@dataclass(frozen=True, slots=True)
class RankedPharmacy:
    """One row of the legitimacy ranking."""

    domain: str
    rank_score: float
    text_rank: float
    network_rank: float
    oracle_label: int | None = None


@dataclass(frozen=True, slots=True)
class RankingResult:
    """A complete ranking with its quality measure.

    Attributes:
        entries: pharmacies in decreasing legitimacy order.
        pairord: pairwise orderedness against the oracle labels
            (``nan`` when labels were not supplied).
    """

    entries: tuple[RankedPharmacy, ...]
    pairord: float

    @property
    def domains(self) -> tuple[str, ...]:
        """Domains in ranking order (most legitimate first)."""
        return tuple(entry.domain for entry in self.entries)


@check_score_range(0.0, 1.0, getter=lambda result: result.pairord, allow_nan=True)
def rank_pharmacies(
    domains: Sequence[str],
    text_ranks: Sequence[float],
    network_ranks: Sequence[float],
    oracle_labels: Sequence[int] | None = None,
) -> RankingResult:
    """Build the totally ordered set of Problem 2.

    Args:
        domains: pharmacy domains.
        text_ranks: textRank values aligned with ``domains``.
        network_ranks: networkRank values aligned with ``domains``.
        oracle_labels: ground truth for pairwise orderedness (optional).

    Returns:
        Ranking in decreasing legitimacy (most legitimate first), with
        deterministic tie-breaking on domain name.
    """
    if not (len(domains) == len(text_ranks) == len(network_ranks)):
        raise ValidationError("domains/text_ranks/network_ranks length mismatch")
    text = np.asarray(text_ranks, dtype=np.float64)
    network = np.asarray(network_ranks, dtype=np.float64)
    scores = text + network
    labels = (
        np.asarray(oracle_labels, dtype=np.int64)
        if oracle_labels is not None
        else None
    )
    order = sorted(
        range(len(domains)), key=lambda i: (-scores[i], domains[i])
    )
    entries = tuple(
        RankedPharmacy(
            domain=domains[i],
            rank_score=float(scores[i]),
            text_rank=float(text[i]),
            network_rank=float(network[i]),
            oracle_label=int(labels[i]) if labels is not None else None,
        )
        for i in order
    )
    pairord = (
        pairwise_orderedness(scores, labels) if labels is not None else float("nan")
    )
    return RankingResult(entries=entries, pairord=pairord)


@dataclass(frozen=True, slots=True)
class OutlierReport:
    """Section 6.4 outlier analysis.

    Attributes:
        illegitimate_outliers: illegitimate pharmacies ranked highest
            (the ones that fooled the system).
        legitimate_outliers: legitimate pharmacies ranked lowest (the
            ones the system under-ranks).
    """

    illegitimate_outliers: tuple[RankedPharmacy, ...]
    legitimate_outliers: tuple[RankedPharmacy, ...]


def analyze_outliers(result: RankingResult, top_k: int = 5) -> OutlierReport:
    """Extract ranking outliers per Section 6.4.

    Args:
        result: a ranking whose entries carry oracle labels.
        top_k: how many outliers to report per class.

    Raises:
        ValueError: when the ranking has no oracle labels.
    """
    if any(entry.oracle_label is None for entry in result.entries):
        raise ValidationError("outlier analysis requires oracle labels")
    illegit_high = [e for e in result.entries if e.oracle_label == 0][:top_k]
    legit_low = [e for e in reversed(result.entries) if e.oracle_label == 1][
        :top_k
    ]
    return OutlierReport(
        illegitimate_outliers=tuple(illegit_high),
        legitimate_outliers=tuple(legit_low),
    )
