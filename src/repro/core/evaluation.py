"""Cross-validation evaluation harness (Section 6 protocol).

Runs the paper's 3-fold cross-validation for any of the pipelines and
aggregates the measures of Section 6.2 with 95% confidence intervals.
Also provides the cross-dataset evaluation used by the
model-over-time experiments (Section 6.5): train on one corpus, test
on another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import (
    BinaryClassificationReport,
    classification_report,
    mean_confidence_interval,
)
from repro.ml.model_selection import StratifiedKFold

__all__ = [
    "AggregatedReport",
    "MeasureSummary",
    "cross_validate_pipeline",
    "cross_validate_indexed",
    "train_test_evaluate",
]

#: The measures every paper table draws from.
MEASURES = (
    "accuracy",
    "legitimate_precision",
    "legitimate_recall",
    "illegitimate_precision",
    "illegitimate_recall",
    "auc_roc",
)


@dataclass(frozen=True, slots=True)
class MeasureSummary:
    """Mean and 95%-CI half-width of one measure across folds."""

    mean: float
    ci_half_width: float

    def __format__(self, spec: str) -> str:
        return format(self.mean, spec or ".3f")


@dataclass(frozen=True, slots=True)
class AggregatedReport:
    """Fold-aggregated evaluation of one configuration."""

    fold_reports: tuple[BinaryClassificationReport, ...]

    def measure(self, name: str) -> MeasureSummary:
        """Aggregate one measure by name (see MEASURES)."""
        values = [getattr(report, name) for report in self.fold_reports]
        mean, half = mean_confidence_interval(values)
        return MeasureSummary(mean=mean, ci_half_width=half)

    @property
    def accuracy(self) -> MeasureSummary:
        return self.measure("accuracy")

    @property
    def legitimate_precision(self) -> MeasureSummary:
        return self.measure("legitimate_precision")

    @property
    def legitimate_recall(self) -> MeasureSummary:
        return self.measure("legitimate_recall")

    @property
    def illegitimate_precision(self) -> MeasureSummary:
        return self.measure("illegitimate_precision")

    @property
    def illegitimate_recall(self) -> MeasureSummary:
        return self.measure("illegitimate_recall")

    @property
    def auc_roc(self) -> MeasureSummary:
        return self.measure("auc_roc")

    def as_dict(self) -> dict[str, float]:
        """Mean of every measure, keyed by name."""
        return {name: self.measure(name).mean for name in MEASURES}


def cross_validate_pipeline(
    pipeline_factory: Callable[[], object],
    documents: Sequence[object],
    y: Sequence[int],
    n_folds: int = 3,
    seed: int = 0,
) -> AggregatedReport:
    """K-fold CV of a text pipeline (fit/predict on document lists).

    Args:
        pipeline_factory: zero-arg callable returning a fresh unfitted
            pipeline with fit / predict / decision_scores methods
            taking document sequences.
        documents: per-pharmacy summary documents.
        y: labels aligned with ``documents``.
        n_folds: fold count (paper: 3).
        seed: fold-assignment seed.
    """
    labels = np.asarray(y, dtype=np.int64)
    splitter = StratifiedKFold(n_splits=n_folds, shuffle=True, seed=seed)
    reports: list[BinaryClassificationReport] = []
    for train_idx, test_idx in splitter.split(labels):
        pipeline = pipeline_factory()
        pipeline.fit([documents[i] for i in train_idx], labels[train_idx])
        test_docs = [documents[i] for i in test_idx]
        predictions = pipeline.predict(test_docs)
        scores = pipeline.decision_scores(test_docs)
        reports.append(
            classification_report(labels[test_idx], predictions, scores)
        )
    return AggregatedReport(fold_reports=tuple(reports))


def cross_validate_indexed(
    fit_predict: Callable[
        [np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]
    ],
    y: Sequence[int],
    n_folds: int = 3,
    seed: int = 0,
) -> AggregatedReport:
    """K-fold CV for transductive pipelines that work on row indices.

    Used by the network and ensemble pipelines, whose features depend
    on the composition of the training fold (TrustRank seeds).

    Args:
        fit_predict: callable ``(train_idx, test_idx) ->
            (predictions, scores)`` for the test rows.
        y: labels for stratification and scoring.
    """
    labels = np.asarray(y, dtype=np.int64)
    splitter = StratifiedKFold(n_splits=n_folds, shuffle=True, seed=seed)
    reports: list[BinaryClassificationReport] = []
    for train_idx, test_idx in splitter.split(labels):
        predictions, scores = fit_predict(train_idx, test_idx)
        reports.append(
            classification_report(labels[test_idx], predictions, scores)
        )
    return AggregatedReport(fold_reports=tuple(reports))


def train_test_evaluate(
    pipeline_factory: Callable[[], object],
    train_documents: Sequence[object],
    y_train: Sequence[int],
    test_documents: Sequence[object],
    y_test: Sequence[int],
) -> BinaryClassificationReport:
    """Train on one corpus, evaluate on another (Section 6.5 Old-New)."""
    pipeline = pipeline_factory()
    pipeline.fit(list(train_documents), np.asarray(y_train, dtype=np.int64))
    predictions = pipeline.predict(list(test_documents))
    scores = pipeline.decision_scores(list(test_documents))
    return classification_report(
        np.asarray(y_test, dtype=np.int64), predictions, scores
    )
