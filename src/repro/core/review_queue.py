"""Reviewer-assistance simulation.

The paper's motivation (Section 1) is operational: the review process
at verification companies is manual, and the system's job is to order
the reviewers' queue so their limited time lands on the right sites.
This module quantifies that benefit:

* :class:`ReviewQueue` — a work queue ordered by a ranking (most
  suspicious first, i.e. ascending legitimacy score), consumed in
  budgeted batches;
* :func:`simulate_review` — run a reviewer with a per-day budget over a
  queue and record how fast illegitimate pharmacies are found;
* :func:`effort_to_find_fraction` — how many reviews are needed to
  surface a given fraction of all illegitimate sites (the headline
  "reviewer effort saved" number, compared against a random queue);
* :func:`degraded_domains` — pull the low-confidence (degraded)
  verdicts out of a report batch so they can jump the queue: a site
  the system could only half-see is exactly the one that needs human
  eyes first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable, Sequence

import numpy as np

from repro.core.ranking import RankingResult
from repro.core.verifier import VerificationReport
from repro.exceptions import ValidationError

__all__ = [
    "ReviewQueue",
    "ReviewLogEntry",
    "degraded_domains",
    "simulate_review",
    "effort_to_find_fraction",
]


def degraded_domains(reports: Iterable[VerificationReport]) -> tuple[str, ...]:
    """Domains of degraded reports, least-confident first.

    Feed this to :class:`ReviewQueue`'s ``priority_domains`` so sites
    verified on partial evidence are hand-reviewed before the rest.
    """
    flagged = [r for r in reports if r.degraded]
    flagged.sort(key=lambda r: (r.confidence, r.domain))
    return tuple(r.domain for r in flagged)


class ReviewQueue:
    """A reviewer queue ordered most-suspicious-first.

    Args:
        ranking: a :class:`RankingResult` whose entries carry oracle
            labels (the simulation plays the reviewer, who, like the
            paper's experts, labels correctly).
        priority_domains: domains bumped to the head of the queue
            (e.g. :func:`degraded_domains` output — verdicts the
            system itself does not trust).  Within the bumped group,
            and within the rest, most-suspicious-first order is kept.
    """

    def __init__(
        self, ranking: RankingResult, priority_domains: Collection[str] = ()
    ) -> None:
        if any(entry.oracle_label is None for entry in ranking.entries):
            raise ValidationError("review simulation requires oracle labels")
        # Most suspicious first: ascending rank score.
        ordered = tuple(reversed(ranking.entries))
        bumped_order: tuple[str, ...] = ()
        if priority_domains:
            bumped = frozenset(priority_domains)
            head = tuple(e for e in ordered if e.domain in bumped)
            ordered = head + tuple(e for e in ordered if e.domain not in bumped)
            bumped_order = tuple(e.domain for e in head)
        self._entries = ordered
        self._priority_domains = bumped_order
        self._cursor = 0

    @property
    def priority_domains(self) -> tuple[str, ...]:
        """Domains bumped to the head of the queue, in queue order.

        The serving layer's ``GET /v1/review-queue`` route surfaces
        this set: the verdicts the system itself flagged as needing
        human eyes first.
        """
        return self._priority_domains

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def remaining(self) -> int:
        return len(self._entries) - self._cursor

    def next_batch(self, batch_size: int):
        """Pop the next ``batch_size`` entries (fewer at the end)."""
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        batch = self._entries[self._cursor : self._cursor + batch_size]
        self._cursor += len(batch)
        return batch


@dataclass(frozen=True, slots=True)
class ReviewLogEntry:
    """One reviewer-day in the simulation."""

    day: int
    reviewed: int
    illegitimate_found_today: int
    illegitimate_found_total: int
    recall_of_illegitimate: float


def simulate_review(
    ranking: RankingResult, daily_budget: int = 20
) -> list[ReviewLogEntry]:
    """Run a budgeted reviewer over a ranked queue.

    Args:
        ranking: labelled ranking of the pharmacies to triage.
        daily_budget: reviews per day.

    Returns:
        Per-day log until the queue is exhausted.
    """
    queue = ReviewQueue(ranking)
    total_illegitimate = sum(
        1 for entry in ranking.entries if entry.oracle_label == 0
    )
    log: list[ReviewLogEntry] = []
    found = 0
    day = 0
    while queue.remaining:
        day += 1
        batch = queue.next_batch(daily_budget)
        today = sum(1 for entry in batch if entry.oracle_label == 0)
        found += today
        log.append(
            ReviewLogEntry(
                day=day,
                reviewed=len(batch),
                illegitimate_found_today=today,
                illegitimate_found_total=found,
                recall_of_illegitimate=(
                    found / total_illegitimate if total_illegitimate else 1.0
                ),
            )
        )
    return log


def effort_to_find_fraction(
    ranks: Sequence[float],
    oracle_labels: Sequence[int],
    fraction: float = 0.9,
    target_label: int = 1,
) -> int:
    """Reviews needed to surface a fraction of one class.

    The queue is traversed in the direction that favours the target:
    most-legitimate-first when hunting legitimate pharmacies
    (``target_label=1`` — the discriminative task in a corpus that is
    ~90% illegitimate), most-suspicious-first otherwise.

    A perfect ranking needs exactly ``fraction * n_target`` reviews; a
    random queue needs ~``fraction * n_total``.

    Args:
        ranks: legitimacy scores (higher = more legitimate).
        oracle_labels: ground truth (1 legit, 0 illegit).
        fraction: target fraction of the class to surface.
        target_label: which class the reviewer is hunting.

    Returns:
        Number of reviews (queue positions consumed).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValidationError(f"fraction must be in (0, 1], got {fraction}")
    scores = np.asarray(ranks, dtype=np.float64)
    labels = np.asarray(oracle_labels, dtype=np.int64)
    if scores.shape != labels.shape:
        raise ValidationError("ranks and oracle_labels disagree in shape")
    n_target = int(np.sum(labels == target_label))
    if n_target == 0:
        return 0
    target = int(np.ceil(fraction * n_target))
    key = -scores if target_label == 1 else scores
    order = np.argsort(key, kind="stable")
    found = 0
    for position, idx in enumerate(order, start=1):
        if labels[idx] == target_label:
            found += 1
            if found >= target:
                return position
    return len(order)
