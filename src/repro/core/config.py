"""Experiment-wide configuration and scale presets.

The paper's corpus (Table 1) has 167 legitimate and ~1290 illegitimate
pharmacies.  Generating and evaluating at that scale is supported
(``PAPER`` preset) but slow in pure Python, so tests and benchmarks
default to scaled-down presets that keep the 12%/88% class ratio and
every structural signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.synthesis import GeneratorConfig
from repro.exceptions import ConfigurationError

__all__ = ["ScalePreset", "PRESETS", "preset", "ExperimentConfig"]


@dataclass(frozen=True, slots=True)
class ScalePreset:
    """A named dataset scale."""

    name: str
    generator: GeneratorConfig


PRESETS: dict[str, ScalePreset] = {
    # Fast unit-test scale.
    "tiny": ScalePreset(
        name="tiny",
        generator=GeneratorConfig(
            n_legitimate=12,
            n_illegitimate=88,
            n_affiliate_hubs=3,
            min_pages=3,
            max_pages=6,
            min_terms_per_page=60,
            max_terms_per_page=120,
            seed=7,
        ),
    ),
    # Integration-test scale.
    "small": ScalePreset(
        name="small",
        generator=GeneratorConfig(
            n_legitimate=24,
            n_illegitimate=176,
            n_affiliate_hubs=4,
            min_pages=3,
            max_pages=8,
            min_terms_per_page=70,
            max_terms_per_page=150,
            seed=7,
        ),
    ),
    # Benchmark scale (default for the experiment harness).
    "medium": ScalePreset(
        name="medium",
        generator=GeneratorConfig(
            n_legitimate=40,
            n_illegitimate=294,
            n_affiliate_hubs=6,
            seed=7,
        ),
    ),
    # Full Table 1 scale (1459 / 1442 examples).
    "paper": ScalePreset(
        name="paper",
        generator=GeneratorConfig(
            n_legitimate=167,
            n_illegitimate=1292,
            n_illegitimate_snapshot2=1275,
            n_affiliate_hubs=10,
            min_pages=5,
            max_pages=14,
            seed=7,
        ),
    ),
    # Scale-out benchmark scale (ROADMAP item 2): web-scale site counts
    # with a lighter per-site profile so 10^5–10^6-domain corpora are
    # synthesizable in minutes; exercised by the sharded pipeline and
    # benchmarks/perf/scale_harness.py, not the paper tables.
    "large": ScalePreset(
        name="large",
        generator=GeneratorConfig(
            n_legitimate=11_500,
            n_illegitimate=88_500,
            n_affiliate_hubs=60,
            min_pages=2,
            max_pages=3,
            min_terms_per_page=30,
            max_terms_per_page=60,
            seed=7,
        ),
    ),
}


def preset(name: str) -> ScalePreset:
    """Look up a scale preset by name.

    Raises:
        ConfigurationError: unknown preset name.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Shared knobs of the paper-reproduction experiments.

    Attributes:
        scale: dataset scale preset name.
        n_folds: cross-validation folds (paper: 3).
        term_subsets: summary subsample sizes; ``None`` = all terms.
        cv_seed: fold-assignment RNG seed.
        summary_seed: term-subsample RNG seed.
        jobs: worker processes for per-document feature extraction
            (``repro.perf.parallel.resolve_jobs`` semantics: 1 serial,
            0 = CPU count).  Excluded from equality/hash: results are
            identical at any worker count, so cached sweeps are shared.
        cache_dir: on-disk feature-cache directory
            (:class:`repro.perf.cache.FeatureCache`); ``None`` disables
            disk caching.  Excluded from equality/hash: the cache only
            memoizes, it never changes values.
        shared_sweeps: fit each (subset, fold)'s feature matrices once
            and share them across every classifier/sampling config of a
            sweep (:mod:`repro.experiments.sweep`).  ``False`` refits
            per config — slower, identical tables (the equivalence the
            sweep tests pin).  Excluded from equality/hash for the same
            reason as ``jobs``.
    """

    scale: str = "medium"
    n_folds: int = 3
    term_subsets: tuple[int | None, ...] = (100, 250, 1000, 2000, None)
    cv_seed: int = 0
    summary_seed: int = 0
    jobs: int = field(default=1, compare=False)
    cache_dir: str | None = field(default=None, compare=False)
    shared_sweeps: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if self.n_folds < 2:
            raise ConfigurationError(f"n_folds must be >= 2, got {self.n_folds}")
        if self.jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {self.jobs}")
        preset(self.scale)  # validate eagerly

    @property
    def generator(self) -> GeneratorConfig:
        return preset(self.scale).generator
