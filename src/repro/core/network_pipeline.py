"""Network-classification pipeline (Section 4.2 + Table 12/13).

Fold protocol, per the paper: the two training folds form the TrustRank
seed P0 (legitimate members get trust 1, everything else 0); the
propagation runs over the full working-set graph; a Naïve Bayes
classifier is trained on the TrustRank-derived scores of the training
pharmacies and evaluated on the test pharmacies.

Because TrustRank is transductive (the seed changes per fold and the
scores of *all* nodes depend on it), this pipeline fits on index sets
over a fixed corpus rather than on feature matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.corpus import LEGITIMATE, PharmacyCorpus
from repro.exceptions import NotFittedError
from repro.ml.base import BaseClassifier, clone
from repro.ml.naive_bayes import GaussianNB
from repro.network.features import NetworkFeatureExtractor, NetworkFeatureMatrix
from repro.network.graph import DirectedGraph
from repro.perf.cache import FeatureCache, content_fingerprint

__all__ = ["NetworkClassificationPipeline"]


def _link_fingerprint(sites: Sequence, auxiliary: Sequence) -> str:
    """Fingerprint of the link structure the extractor consumes.

    Network features depend only on domains and outbound links (page
    text never enters the graph), so the fingerprint covers exactly
    that — text edits reuse cached TrustRank features, link edits do
    not.
    """
    parts: list[str] = []
    for site in list(sites) + list(auxiliary):
        parts.append(site.domain)
        for page in site.pages:
            parts.append(page.url)
            parts.extend(page.links)
    return content_fingerprint(parts)


class NetworkClassificationPipeline:
    """TrustRank-score classifier over a pharmacy corpus.

    Args:
        corpus: the full working set P (train + test pharmacies).
        classifier: unfitted classifier prototype (paper: Naïve Bayes).
        damping: TrustRank damping factor.
        feature_columns: which extractor columns feed the classifier.
            Defaults to ``("outlink_trust",)`` — see
            :class:`~repro.network.features.NetworkFeatureExtractor`
            for why the seed-biased own-node score is excluded.
        include_anti_trustrank: also seed distrust from the training
            illegitimate pharmacies and append the distrust columns
            (future-work extension).
        use_auxiliary_sites: add the corpus's non-pharmacy auxiliary
            sites (health portals / spam directories) to the link graph
            (future-work extension (a)); when enabled, pharmacies gain
            in-links from portals, so the ``inlink_trust`` column is
            appended to the classifier features.
        cache: optional on-disk feature cache; TrustRank feature
            matrices are memoized per (link structure, fold seeds,
            extractor params), so repeated folds/runs over the same
            graph skip the propagation entirely.
        graph: optional prebuilt link graph for exactly this corpus
            (plus its auxiliary sites when ``use_auxiliary_sites``).
            The graph depends only on the working set, never on the
            fold, so CV drivers build it once and share it across every
            fold's pipeline; when omitted each :meth:`fit` builds it.
    """

    def __init__(
        self,
        corpus: PharmacyCorpus,
        classifier: BaseClassifier | None = None,
        damping: float = 0.85,
        feature_columns: Sequence[str] = ("outlink_trust",),
        include_anti_trustrank: bool = False,
        use_auxiliary_sites: bool = False,
        cache: FeatureCache | None = None,
        graph: DirectedGraph | None = None,
    ) -> None:
        self._corpus = corpus
        self._prototype = classifier or GaussianNB()
        self._damping = damping
        columns = tuple(feature_columns)
        if use_auxiliary_sites and "inlink_trust" not in columns:
            columns = columns + ("inlink_trust",)
        self._feature_columns = columns
        self._include_anti = include_anti_trustrank
        self._use_auxiliary = use_auxiliary_sites
        self._cache = cache
        self._shared_graph = graph
        self._classifier: BaseClassifier | None = None
        self._features: NetworkFeatureMatrix | None = None

    @property
    def corpus(self) -> PharmacyCorpus:
        return self._corpus

    @property
    def classifier(self) -> BaseClassifier:
        if self._classifier is None:
            raise NotFittedError("NetworkClassificationPipeline is not fitted")
        return self._classifier

    @property
    def feature_matrix(self) -> NetworkFeatureMatrix:
        """Features of the whole corpus from the last :meth:`fit`."""
        if self._features is None:
            raise NotFittedError("NetworkClassificationPipeline is not fitted")
        return self._features

    def fit(self, train_indices: Sequence[int]) -> "NetworkClassificationPipeline":
        """Seed TrustRank from the training fold and fit the classifier.

        Args:
            train_indices: corpus row indices forming P0.
        """
        train_idx = np.asarray(train_indices, dtype=np.int64)
        labels = self._corpus.labels
        domains = self._corpus.domains
        trusted = [domains[i] for i in train_idx if labels[i] == LEGITIMATE]
        distrusted = [domains[i] for i in train_idx if labels[i] != LEGITIMATE]
        extractor = NetworkFeatureExtractor(
            damping=self._damping,
            include_anti_trustrank=self._include_anti,
        )
        auxiliary = self._corpus.auxiliary_sites if self._use_auxiliary else ()

        def extract() -> NetworkFeatureMatrix:
            return extractor.extract(
                self._corpus.sites,
                trusted_domains=trusted,
                distrusted_domains=distrusted if self._include_anti else (),
                auxiliary_sites=auxiliary,
                graph=self._shared_graph,
            )

        if self._cache is None:
            self._features = extract()
        else:
            key = self._cache.key(
                "network-features",
                _link_fingerprint(self._corpus.sites, auxiliary),
                {
                    "trusted": sorted(trusted),
                    "distrusted": sorted(distrusted) if self._include_anti else [],
                    "damping": self._damping,
                    "anti": self._include_anti,
                    "auxiliary": self._use_auxiliary,
                },
            )
            self._features = self._cache.get_or_compute(key, extract)
        X = self._select_columns(self._features)
        classifier = clone(self._prototype)
        classifier.fit(X[train_idx], labels[train_idx])
        self._classifier = classifier
        return self

    def _select_columns(self, matrix: NetworkFeatureMatrix) -> np.ndarray:
        columns = list(self._feature_columns)
        if self._include_anti:
            for name in ("outlink_distrust",):
                if name not in columns and name in matrix.feature_names:
                    columns.append(name)
        return np.column_stack([matrix.column(name) for name in columns])

    def _rows(self, indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return self._select_columns(self.feature_matrix)[idx]

    def predict(self, indices: Sequence[int]) -> np.ndarray:
        """Predicted labels for corpus rows ``indices``."""
        return self.classifier.predict(self._rows(indices))

    def predict_proba(self, indices: Sequence[int]) -> np.ndarray:
        return self.classifier.predict_proba(self._rows(indices))

    def decision_scores(self, indices: Sequence[int]) -> np.ndarray:
        return self.classifier.decision_scores(self._rows(indices))

    def network_rank(self, indices: Sequence[int]) -> np.ndarray:
        """The networkRank term of Section 5: the TrustRank value.

        Returns the raw trust feature (not the classifier output),
        matching "networkRank() simply returns the TrustRank value".
        """
        idx = np.asarray(indices, dtype=np.int64)
        trust = self.feature_matrix.column("outlink_trust") + self.feature_matrix.column(
            "trustrank"
        )
        return trust[idx]
