"""Per-pharmacy network features and link-popularity analysis.

Provides:

* :class:`NetworkFeatureExtractor` — computes, for each pharmacy node,
  a TrustRank-derived legitimacy score seeded from the known-legitimate
  training pharmacies (the paper's network feature), optionally
  extended with Anti-TrustRank distrust and degree features (the
  paper's future-work "richer input");
* :func:`top_linked_domains` — the Table 11 analysis: the most
  frequently linked-to external domains per class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.network.construction import build_pharmacy_graph
from repro.network.graph import DirectedGraph
from repro.network.trustrank import anti_trustrank, trustrank
from repro.web.site import Website
from repro.exceptions import ValidationError

__all__ = [
    "NetworkFeatureExtractor",
    "NetworkFeatureMatrix",
    "top_linked_domains",
]


@dataclass(frozen=True, slots=True)
class NetworkFeatureMatrix:
    """Network features for an ordered list of pharmacy domains.

    Attributes:
        domains: pharmacy domains, row order of :attr:`features`.
        features: array of shape ``(len(domains), n_features)``.
        feature_names: column names.
    """

    domains: tuple[str, ...]
    features: np.ndarray
    feature_names: tuple[str, ...]

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        return self.features[:, self.feature_names.index(name)]


class NetworkFeatureExtractor:
    """TrustRank-based network features for pharmacy classification.

    ``extract`` builds the web graph from the full working set (labeled
    + unlabeled sites — TrustRank is semi-supervised by design) and runs
    the propagation seeded from the *training* legitimate pharmacies
    only, matching the paper's protocol where the two training folds
    form the seed P0.

    Two TrustRank-derived columns are always produced:

    * ``outlink_trust`` — the mean TrustRank score of the external
      endpoints the pharmacy links to.  This is the column the default
      network classifier trains on.  It is the signal that lets
      TrustRank scores separate *unseen* pharmacies at all: legitimate
      seeds pump trust into fda.gov/nabp.net/..., and an unseen
      pharmacy linking to those domains inherits a high value while
      affiliate-network targets stay cold.  Crucially its distribution
      is the same for seed and non-seed pharmacies, so a classifier
      trained on the fold that forms the seed transfers to the test
      fold.
    * ``trustrank`` — the pharmacy node's own TrustRank score.  In the
      paper's graph (Algorithm 1 emits only pharmacy -> endpoint
      edges), trust reaches a non-seed pharmacy only through in-links
      from other pharmacies (affiliate networks), so this is near zero
      for every unlabeled site while being large for the seed nodes
      themselves.  That train/test mismatch is why the default
      classifier excludes it; it is still exposed for analysis and
      ablation.  Without the neighbourhood-level column the paper's
      Table 12/13 numbers (accuracy 0.96, legitimate recall 0.73) are
      unreachable in this graph topology, so we treat ``outlink_trust``
      as the intended reading of "train a classifier using the output
      values" (Section 4.2).

    Args:
        damping: TrustRank damping factor.
        include_anti_trustrank: add the analogous distrust columns
            propagated backwards from the illegitimate seed
            (future-work extension; off for the paper's Tables 12–13).
        include_degree_features: add log-scaled out/in degree features
            (extension; off by default).
    """

    #: Column the default network classifier trains on.
    DEFAULT_CLASSIFICATION_FEATURE = "outlink_trust"

    def __init__(
        self,
        damping: float = 0.85,
        include_anti_trustrank: bool = False,
        include_degree_features: bool = False,
    ) -> None:
        self._damping = damping
        self._include_anti = include_anti_trustrank
        self._include_degree = include_degree_features
        self._graph: DirectedGraph | None = None

    @property
    def graph(self) -> DirectedGraph | None:
        """The constructed web graph (after :meth:`extract`)."""
        return self._graph

    def feature_names(self) -> tuple[str, ...]:
        names = ["outlink_trust", "trustrank", "inlink_trust"]
        if self._include_anti:
            names.extend(["outlink_distrust", "anti_trustrank"])
        if self._include_degree:
            names.extend(["log_out_degree", "log_in_degree"])
        return tuple(names)

    def extract(
        self,
        sites: Sequence[Website],
        trusted_domains: Sequence[str],
        distrusted_domains: Sequence[str] = (),
        auxiliary_sites: Sequence[Website] = (),
        graph: DirectedGraph | None = None,
    ) -> NetworkFeatureMatrix:
        """Build the graph and compute per-pharmacy features.

        Args:
            sites: the full working set P (train + test pharmacies).
            trusted_domains: known-legitimate seed (P0+, training fold).
            distrusted_domains: known-illegitimate seed (only used when
                Anti-TrustRank is enabled).
            auxiliary_sites: non-pharmacy sites to add to the graph
                (future-work extension (a); empty = the paper's graph).
            graph: a prebuilt web graph for exactly ``sites`` +
                ``auxiliary_sites``.  The graph depends only on the
                working set — not on the seeds — so cross-validation
                folds over a fixed working set can build it once and
                share it; when omitted it is built here.

        Returns:
            Feature matrix with one row per entry in ``sites``.
        """
        if graph is None:
            graph = build_pharmacy_graph(sites, auxiliary_sites=auxiliary_sites)
        self._graph = graph
        trust = trustrank(graph, trusted_domains, damping=self._damping)
        own = np.array([trust.get(site.domain, 0.0) for site in sites])
        outlink = np.array([_outlink_mean(site, trust) for site in sites])
        inlink = np.array(
            [_inlink_mean(graph, site.domain, trust) for site in sites]
        )
        columns: list[np.ndarray] = [outlink, own, inlink]
        if self._include_anti:
            if distrusted_domains:
                anti = anti_trustrank(
                    graph, distrusted_domains, damping=self._damping
                )
            else:
                anti = {}
            anti_own = np.array(
                [anti.get(site.domain, 0.0) for site in sites]
            )
            anti_out = np.array([_outlink_mean(site, anti) for site in sites])
            columns.extend([anti_out, anti_own])
        if self._include_degree:
            columns.append(
                np.array(
                    [np.log1p(graph.out_degree(site.domain)) for site in sites]
                )
            )
            columns.append(
                np.array(
                    [np.log1p(graph.in_degree(site.domain)) for site in sites]
                )
            )
        features = np.column_stack(columns)
        return NetworkFeatureMatrix(
            domains=tuple(site.domain for site in sites),
            features=features,
            feature_names=self.feature_names(),
        )


def _outlink_mean(site: Website, scores: Mapping[str, float]) -> float:
    """Mean score of the external endpoints ``site`` links to (0 if none)."""
    endpoints = site.outbound_endpoints()
    if not endpoints:
        return 0.0
    return float(np.mean([scores.get(e, 0.0) for e in endpoints]))


def _inlink_mean(
    graph: DirectedGraph, domain: str, scores: Mapping[str, float]
) -> float:
    """Mean score of the domains linking *to* ``domain`` (0 if none).

    Only informative when the graph carries in-edges to pharmacies —
    affiliate spokes pointing at hubs in the paper's graph, or portal /
    directory links when the auxiliary-site extension is enabled.
    Unlike the raw node score, this is identically distributed for seed
    and non-seed pharmacies, so classifiers trained on it transfer.
    """
    if domain not in graph:
        return 0.0
    predecessors = graph.predecessors(domain)
    if not predecessors:
        return 0.0
    return float(np.mean([scores.get(p, 0.0) for p in predecessors]))


def top_linked_domains(
    sites: Sequence[Website],
    labels: Sequence[int],
    top_k: int = 10,
    count_mode: str = "links",
) -> dict[int, list[tuple[str, int]]]:
    """Most linked-to external domains per class (Table 11).

    Args:
        sites: pharmacy websites.
        labels: class labels aligned with ``sites`` (1 legit, 0 illegit).
        top_k: how many domains to report per class.
        count_mode: ``"links"`` tallies raw link multiplicity across all
            pages; ``"sites"`` tallies how many pharmacies of the class
            link to the domain at least once.

    Returns:
        label -> list of (domain, count), most-linked first; ties broken
        alphabetically for determinism.
    """
    if len(sites) != len(labels):
        raise ValidationError(
            f"sites and labels disagree in length: {len(sites)} vs {len(labels)}"
        )
    if count_mode not in ("links", "sites"):
        raise ValidationError(f"unknown count_mode: {count_mode!r}")
    per_class: dict[int, Counter[str]] = {}
    for site, label in zip(sites, labels):
        counter = per_class.setdefault(int(label), Counter())
        if count_mode == "links":
            counter.update(site.outbound_endpoint_counts())
        else:
            counter.update(set(site.outbound_endpoints()))
    result: dict[int, list[tuple[str, int]]] = {}
    for label, counter in per_class.items():
        ranked = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))
        result[label] = ranked[:top_k]
    return result
