"""Network substrate: web graph, PageRank/TrustRank, link features."""

from repro.network.construction import (
    build_graph_from_link_table,
    build_pharmacy_graph,
)
from repro.network.eigentrust import eigentrust
from repro.network.features import (
    NetworkFeatureExtractor,
    NetworkFeatureMatrix,
    top_linked_domains,
)
from repro.network.blockrank import (
    BlockPlan,
    block_anti_trustrank,
    block_pagerank,
    block_personalized_pagerank,
    block_trustrank,
    compile_transition_store,
    compile_transition_store_from_edges,
    load_block_plan,
)
from repro.network.graph import DirectedGraph
from repro.network.pagerank import (
    pagerank,
    personalized_pagerank,
    teleport_vector,
    transition_matrix,
)
from repro.network.trustrank import anti_trustrank, reverse_graph, trustrank

__all__ = [
    "BlockPlan",
    "block_anti_trustrank",
    "block_pagerank",
    "block_personalized_pagerank",
    "block_trustrank",
    "compile_transition_store",
    "compile_transition_store_from_edges",
    "load_block_plan",
    "teleport_vector",
    "transition_matrix",
    "build_graph_from_link_table",
    "build_pharmacy_graph",
    "eigentrust",
    "NetworkFeatureExtractor",
    "NetworkFeatureMatrix",
    "top_linked_domains",
    "DirectedGraph",
    "pagerank",
    "personalized_pagerank",
    "anti_trustrank",
    "reverse_graph",
    "trustrank",
]
