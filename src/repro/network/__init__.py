"""Network substrate: web graph, PageRank/TrustRank, link features."""

from repro.network.construction import (
    build_graph_from_link_table,
    build_pharmacy_graph,
)
from repro.network.eigentrust import eigentrust
from repro.network.features import (
    NetworkFeatureExtractor,
    NetworkFeatureMatrix,
    top_linked_domains,
)
from repro.network.graph import DirectedGraph
from repro.network.pagerank import pagerank, personalized_pagerank
from repro.network.trustrank import anti_trustrank, reverse_graph, trustrank

__all__ = [
    "build_graph_from_link_table",
    "build_pharmacy_graph",
    "eigentrust",
    "NetworkFeatureExtractor",
    "NetworkFeatureMatrix",
    "top_linked_domains",
    "DirectedGraph",
    "pagerank",
    "personalized_pagerank",
    "anti_trustrank",
    "reverse_graph",
    "trustrank",
]
