"""Directed graph with string nodes and weighted edges.

A small, dependency-free adjacency-map digraph sized for the paper's
web graphs (a few thousand nodes).  Node identities are strings
(registrable domains).  Parallel links are folded into one edge with an
additive weight.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import GraphError

__all__ = ["DirectedGraph"]


class DirectedGraph:
    """Adjacency-map directed graph."""

    def __init__(self) -> None:
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}

    # -- mutation --------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Add a node (no-op if present)."""
        if not node:
            raise GraphError("node id must be a non-empty string")
        self._succ.setdefault(node, {})
        self._pred.setdefault(node, {})

    def add_edge(self, src: str, dst: str, weight: float = 1.0) -> None:
        """Add (or reinforce) the edge ``src -> dst``.

        Repeated additions accumulate weight; self-loops are allowed
        but the paper's graphs never produce them.
        """
        if weight <= 0.0:
            raise GraphError(f"edge weight must be > 0, got {weight}")
        self.add_node(src)
        self.add_node(dst)
        self._succ[src][dst] = self._succ[src].get(dst, 0.0) + weight
        self._pred[dst][src] = self._pred[dst].get(src, 0.0) + weight

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(out) for out in self._succ.values())

    def nodes(self) -> Iterator[str]:
        """Nodes in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """All (src, dst, weight) triples."""
        for src, out in self._succ.items():
            for dst, weight in out.items():
                yield src, dst, weight

    def successors(self, node: str) -> Mapping[str, float]:
        """Outgoing neighbours with weights."""
        self._require(node)
        return dict(self._succ[node])

    def predecessors(self, node: str) -> Mapping[str, float]:
        """Incoming neighbours with weights."""
        self._require(node)
        return dict(self._pred[node])

    def out_degree(self, node: str) -> int:
        """Number of outgoing edges of ``node``."""
        self._require(node)
        return len(self._succ[node])

    def in_degree(self, node: str) -> int:
        """Number of incoming edges of ``node``."""
        self._require(node)
        return len(self._pred[node])

    def has_edge(self, src: str, dst: str) -> bool:
        """Whether the edge ``src -> dst`` exists."""
        return src in self._succ and dst in self._succ[src]

    def subgraph(self, nodes: Iterable[str]) -> "DirectedGraph":
        """Induced subgraph on ``nodes`` (unknown nodes ignored)."""
        keep = {n for n in nodes if n in self._succ}
        sub = DirectedGraph()
        for node in keep:
            sub.add_node(node)
        for src in keep:
            for dst, weight in self._succ[src].items():
                if dst in keep:
                    sub.add_edge(src, dst, weight)
        return sub

    def _require(self, node: str) -> None:
        if node not in self._succ:
            raise GraphError(f"unknown node: {node!r}")
