"""TrustRank and Anti-TrustRank (Section 4.2).

TrustRank (Gyöngyi, Garcia-Molina, Pedersen 2004) propagates trust from
a seed of known-good pages through the link graph, on the premise of
*approximate isolation*: good pages rarely point to bad ones.  The
paper's initialization gives trust 1 to the known legitimate pharmacies
of the training fold (P0+) and 0 to everything else, normalizes, and
iterates to convergence.

Anti-TrustRank (Krishnan & Raj 2006) is the dual: distrust propagates
*backwards* from known-bad seeds (an illegitimate site is reachable
from other bad sites), implemented here as TrustRank on the reversed
graph with the illegitimate seed.  It is listed as related work in the
paper and implemented as the "richer input" future-work extension.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.contracts import check_probability_vector
from repro.exceptions import GraphError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import personalized_pagerank

__all__ = ["trustrank", "anti_trustrank", "reverse_graph"]


@check_probability_vector()
def trustrank(
    graph: DirectedGraph,
    trusted_seed: Iterable[str],
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Propagate trust from ``trusted_seed`` through ``graph``.

    Args:
        graph: the web graph (Algorithm 1 output).
        trusted_seed: known-good nodes (trust score 1 at initialization).
        damping: trust decay per hop (α = 0.85 in the TrustRank paper).
        max_iterations: power-iteration cap.
        tolerance: convergence threshold.

    Returns:
        node -> trust score in [0, 1]; seed nodes score highest,
        nodes unreachable from the seed score 0 (up to dangling
        redistribution).

    Raises:
        GraphError: when no seed node exists in the graph.
    """
    seed = [node for node in trusted_seed if node in graph]
    if not seed:
        raise GraphError("trusted seed has no overlap with the graph")
    teleport = {node: 1.0 for node in seed}
    return personalized_pagerank(
        graph,
        teleport=teleport,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )


def reverse_graph(graph: DirectedGraph) -> DirectedGraph:
    """Return ``graph`` with every edge direction flipped."""
    reversed_g = DirectedGraph()
    for node in graph.nodes():
        reversed_g.add_node(node)
    for src, dst, weight in graph.edges():
        reversed_g.add_edge(dst, src, weight)
    return reversed_g


@check_probability_vector()
def anti_trustrank(
    graph: DirectedGraph,
    distrusted_seed: Iterable[str],
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Propagate *distrust* backwards from known-bad seeds.

    A node that links to distrusted nodes accumulates distrust, so the
    propagation runs on the reversed graph.

    Returns:
        node -> distrust score (higher = more likely illegitimate).
    """
    return trustrank(
        reverse_graph(graph),
        trusted_seed=distrusted_seed,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
