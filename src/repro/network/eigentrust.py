"""EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003).

Cited by the paper (Section 2.2) as the related trust algorithm for
peer-to-peer networks.  Implemented here as an alternative to TrustRank
for the network-analysis ablations: instead of propagating trust from a
seed by teleporting random walks, EigenTrust computes the principal
left eigenvector of the normalized *local-trust* matrix, with pre-trust
mass on a seed of known-good peers providing both the start vector and
a blending anchor:

    t_{k+1} = (1 - a) * C^T t_k + a * p

where ``C`` is the row-normalized local trust matrix, ``p`` the
pre-trust distribution, and ``a`` the blending weight.  On a web graph,
"local trust" is link weight (a page 'vouches' for what it links to),
which makes the iteration the same family as personalized PageRank but
with the EigenTrust convention of blending toward the pre-trusted set
every step.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.devtools.contracts import check_probability_vector
from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph

__all__ = ["eigentrust"]


@check_probability_vector()
def eigentrust(
    graph: DirectedGraph,
    pretrusted: Iterable[str],
    alpha: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Compute EigenTrust scores over a directed trust graph.

    Args:
        graph: trust statements as weighted directed edges
            (``src`` vouches for ``dst`` with the edge weight).
        pretrusted: the pre-trusted peer set P (uniform pre-trust mass).
        alpha: blending weight ``a`` toward the pre-trust vector.
        max_iterations: power-iteration cap.
        tolerance: L1 convergence threshold.

    Returns:
        node -> global trust value; values sum to 1.

    Raises:
        GraphError: empty graph or no pre-trusted node in the graph.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot compute EigenTrust on an empty graph")
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    seed = [index[n] for n in pretrusted if n in index]
    if not seed:
        raise GraphError("pre-trusted set has no overlap with the graph")

    n = len(nodes)
    p = np.zeros(n)
    p[seed] = 1.0 / len(seed)

    out_targets: list[np.ndarray] = []
    out_weights: list[np.ndarray] = []
    dangling = np.zeros(n, dtype=bool)
    for i, node in enumerate(nodes):
        succ = graph.successors(node)
        if not succ:
            dangling[i] = True
            out_targets.append(np.empty(0, dtype=np.int64))
            out_weights.append(np.empty(0))
            continue
        targets = np.fromiter((index[d] for d in succ), dtype=np.int64)
        weights = np.fromiter(succ.values(), dtype=np.float64)
        out_targets.append(targets)
        out_weights.append(weights / weights.sum())

    t = p.copy()
    for _ in range(max_iterations):
        propagated = np.zeros(n)
        for i in range(n):
            mass = t[i]
            if mass == 0.0:  # repro-lint: disable=R006 (exact sparsity skip)
                continue
            if dangling[i]:
                # A peer with no trust statements defers to pre-trust.
                propagated += mass * p
            else:
                propagated[out_targets[i]] += mass * out_weights[i]
        new_t = (1.0 - alpha) * propagated + alpha * p
        if np.abs(new_t - t).sum() < tolerance:
            t = new_t
            break
        t = new_t
    return {node: float(t[index[node]]) for node in nodes}
