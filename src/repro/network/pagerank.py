"""PageRank by power iteration over a sparse transition matrix.

TrustRank (Gyöngyi et al. 2004) is biased PageRank: the teleport
distribution is concentrated on a trusted seed instead of being
uniform.  This module implements the shared power-iteration core; both
uniform PageRank and the biased variants delegate to
:func:`personalized_pagerank`.

The link structure is compiled once into a ``scipy.sparse`` CSR matrix
``P`` with ``P[dst, src] = w(src, dst) / out_weight(src)`` plus a
dangling-node mask, so each power step is a single sparse
matrix-vector product::

    rank' = damping * (P @ rank + dangling_mass * t) + (1 - damping) * t

instead of one Python loop iteration per node
(:func:`repro.perf.reference.reference_personalized_pagerank` keeps
the loop form as the equivalence baseline).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.devtools.contracts import check_probability_vector
from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph

__all__ = [
    "pagerank",
    "personalized_pagerank",
    "teleport_vector",
    "transition_matrix",
]


def teleport_vector(
    graph: DirectedGraph,
    index: Mapping[str, int],
    teleport: Mapping[str, float] | None,
) -> np.ndarray:
    """Normalized teleport distribution over the graph's node order.

    Raises:
        ValidationError: on negative teleport entries.
        GraphError: when no positive mass lands on graph nodes.
    """
    n = len(index)
    if teleport is None:
        return np.full(n, 1.0 / n)
    t = np.zeros(n)
    for node, mass in teleport.items():
        if mass < 0.0:
            raise ValidationError(
                f"teleport mass must be >= 0, got {mass} for {node!r}"
            )
        if node in index and mass > 0.0:
            t[index[node]] = mass
    total = t.sum()
    if total <= 0.0:
        raise GraphError("teleport vector has no mass on graph nodes")
    return t / total


def transition_matrix(
    graph: DirectedGraph, index: Mapping[str, int]
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Column-stochastic CSR transition matrix and dangling mask.

    ``matrix[dst, src]`` carries the weight-normalized probability of
    following the ``src -> dst`` link; columns of dangling nodes are
    empty and flagged in the boolean mask instead.  Public because the
    block-wise ranker (:mod:`repro.network.blockrank`) compiles its
    row-partitioned blocks from this exact matrix — slicing rows of one
    CSR is what makes block SpMV bit-identical to the full product.
    """
    n = len(index)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    dangling = np.zeros(n, dtype=bool)
    for node, i in index.items():
        succ = graph.successors(node)
        if not succ:
            dangling[i] = True
            continue
        targets = np.fromiter((index[d] for d in succ), dtype=np.int64)
        weights = np.fromiter(succ.values(), dtype=np.float64)
        src_parts.append(np.full(targets.size, i, dtype=np.int64))
        dst_parts.append(targets)
        data_parts.append(weights / weights.sum())
    if not src_parts:
        matrix = sp.csr_matrix((n, n), dtype=np.float64)
    else:
        matrix = sp.csr_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(dst_parts), np.concatenate(src_parts)),
            ),
            shape=(n, n),
            dtype=np.float64,
        )
    return matrix, dangling


@check_probability_vector()
def personalized_pagerank(
    graph: DirectedGraph,
    teleport: Mapping[str, float] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Power-iteration PageRank with an arbitrary teleport distribution.

    Dangling nodes redistribute their mass according to the teleport
    vector (the standard TrustRank convention, which keeps trust from
    leaking to untrusted nodes through dead ends).

    Args:
        graph: the link graph.
        teleport: node -> probability; normalized internally.  ``None``
            means the uniform distribution (plain PageRank).
        damping: probability of following a link (α).
        max_iterations: iteration cap.
        tolerance: L1 convergence threshold.

    Returns:
        node -> score; scores sum to 1.

    Raises:
        GraphError: for an empty graph or an all-zero teleport vector.
        ValidationError: for an out-of-range damping factor or negative
            teleport entries.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot rank an empty graph")
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    t = teleport_vector(graph, index, teleport)
    matrix, dangling = transition_matrix(graph, index)
    any_dangling = bool(dangling.any())

    rank = t.copy()
    for _ in range(max_iterations):
        new_rank = matrix @ rank
        if any_dangling:
            new_rank += rank[dangling].sum() * t
        new_rank = damping * new_rank + (1.0 - damping) * t
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return {node: float(rank[i]) for node, i in index.items()}


def pagerank(
    graph: DirectedGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Plain (uniform-teleport) PageRank."""
    return personalized_pagerank(
        graph,
        teleport=None,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
