"""PageRank by power iteration.

TrustRank (Gyöngyi et al. 2004) is biased PageRank: the teleport
distribution is concentrated on a trusted seed instead of being
uniform.  This module implements the shared power-iteration core; both
uniform PageRank and the biased variants delegate to
:func:`personalized_pagerank`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.devtools.contracts import check_probability_vector
from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph

__all__ = ["pagerank", "personalized_pagerank"]


@check_probability_vector()
def personalized_pagerank(
    graph: DirectedGraph,
    teleport: Mapping[str, float] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Power-iteration PageRank with an arbitrary teleport distribution.

    Dangling nodes redistribute their mass according to the teleport
    vector (the standard TrustRank convention, which keeps trust from
    leaking to untrusted nodes through dead ends).

    Args:
        graph: the link graph.
        teleport: node -> probability; normalized internally.  ``None``
            means the uniform distribution (plain PageRank).
        damping: probability of following a link (α).
        max_iterations: iteration cap.
        tolerance: L1 convergence threshold.

    Returns:
        node -> score; scores sum to 1.

    Raises:
        GraphError: for an empty graph or an all-zero teleport vector.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot rank an empty graph")
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    if teleport is None:
        t = np.full(n, 1.0 / n)
    else:
        t = np.zeros(n)
        for node, mass in teleport.items():
            if node in index and mass > 0.0:
                t[index[node]] = mass
        total = t.sum()
        if total <= 0.0:
            raise GraphError("teleport vector has no mass on graph nodes")
        t /= total

    # Column-stochastic sparse structure: for each node, its outgoing
    # weight-normalized edges.
    out_targets: list[np.ndarray] = []
    out_weights: list[np.ndarray] = []
    dangling = np.zeros(n, dtype=bool)
    for i, node in enumerate(nodes):
        succ = graph.successors(node)
        if not succ:
            dangling[i] = True
            out_targets.append(np.empty(0, dtype=np.int64))
            out_weights.append(np.empty(0))
            continue
        targets = np.fromiter((index[d] for d in succ), dtype=np.int64)
        weights = np.fromiter(succ.values(), dtype=np.float64)
        out_targets.append(targets)
        out_weights.append(weights / weights.sum())

    rank = t.copy()
    for _ in range(max_iterations):
        new_rank = np.zeros(n)
        for i in range(n):
            mass = rank[i]
            if mass == 0.0:  # repro-lint: disable=R006 (exact sparsity skip)
                continue
            if dangling[i]:
                new_rank += mass * t
            else:
                new_rank[out_targets[i]] += mass * out_weights[i]
        new_rank = damping * new_rank + (1.0 - damping) * t
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return {node: float(rank[index[node]]) for node in nodes}


def pagerank(
    graph: DirectedGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Plain (uniform-teleport) PageRank."""
    return personalized_pagerank(
        graph,
        teleport=None,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
