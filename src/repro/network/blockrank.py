"""Block-wise, multi-process PageRank/TrustRank over out-of-core CSR.

:func:`repro.network.pagerank.personalized_pagerank` holds the whole
transition matrix in RAM and runs each power step as one SpMV.  At
10^6 domains the matrix still fits a workstation, but a single process
leaves every other core idle and couples peak RSS to corpus size.
This module splits the work **by CSR row blocks**:

* :func:`compile_transition_store` builds the exact transition matrix
  of :func:`~repro.network.pagerank.transition_matrix` once, slices it
  into row blocks, and spills each block through
  :class:`repro.perf.MatrixStore` (atomic writes, mmap loads).  Row
  ``i`` of a CSR row slice has byte-identical data in the same order
  as row ``i`` of the full matrix, so the per-row dot products — and
  therefore the concatenated block results — are **bit-equal** to the
  single-process SpMV, not merely close.
* :func:`compile_transition_store_from_edges` compiles the same block
  layout directly from flat ``(src, dst, weight)`` edge arrays without
  ever materializing the full matrix — the path the million-site scale
  harness uses, where the graph comes from streamed shards.
* :func:`block_personalized_pagerank` runs the power iteration with a
  persistent :class:`repro.perf.WorkerPool`: the current rank vector
  lives in one shared-memory segment that every worker maps read-only,
  each worker computes its block's SpMV against its mmap'd block, and
  the parent concatenates block results in block order (deterministic
  reduction), applies dangling + teleport mass, and checks
  convergence.  Pool- or shared-memory-failure degrades to the serial
  block loop, which computes the identical result.

``block_trustrank`` / ``block_anti_trustrank`` / ``block_pagerank``
mirror the in-memory API over a compiled plan.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import partial
from multiprocessing import shared_memory
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.devtools.contracts import check_probability_vector
from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph
from repro.network.pagerank import teleport_vector, transition_matrix
from repro.perf.parallel import WorkerPool
from repro.perf.store import MatrixStore

logger = logging.getLogger(__name__)

__all__ = [
    "BlockPlan",
    "compile_transition_store",
    "compile_transition_store_from_edges",
    "load_block_plan",
    "block_personalized_pagerank",
    "block_pagerank",
    "block_trustrank",
    "block_anti_trustrank",
]


def _block_offsets(n: int, n_blocks: int) -> list[int]:
    """Balanced row-partition boundaries: ``n_blocks + 1`` offsets."""
    if n_blocks < 1:
        raise ValidationError(f"n_blocks must be >= 1, got {n_blocks}")
    n_blocks = min(n_blocks, max(1, n))
    base, extra = divmod(n, n_blocks)
    offsets = [0]
    for b in range(n_blocks):
        offsets.append(offsets[-1] + base + (1 if b < extra else 0))
    return offsets


@dataclass(frozen=True)
class BlockPlan:
    """A compiled, spilled row-blocked transition matrix.

    Attributes:
        store: the matrix store holding the artifacts.
        prefix: artifact namespace inside the store.
        nodes: node order — row/column index ``i`` is ``nodes[i]``.
        offsets: block row boundaries (``offsets[b]:offsets[b+1]``).
    """

    store: MatrixStore
    prefix: str
    nodes: tuple[str, ...]
    offsets: tuple[int, ...]

    @property
    def n(self) -> int:
        """Node count (rank-vector length)."""
        return len(self.nodes)

    @property
    def n_blocks(self) -> int:
        """Number of row blocks."""
        return len(self.offsets) - 1

    def block_name(self, block: int) -> str:
        """Store key of one row block's CSR artifact."""
        return f"{self.prefix}/block-{block:05d}"


def _save_plan(
    store: MatrixStore,
    prefix: str,
    nodes: Sequence[str],
    offsets: Sequence[int],
    dangling: np.ndarray,
) -> BlockPlan:
    store.save_array(f"{prefix}/dangling", np.asarray(dangling, dtype=bool))
    store.save_meta(
        f"{prefix}/plan",
        {
            "format": "repro-blockrank",
            "version": 1,
            "n": len(nodes),
            "offsets": [int(o) for o in offsets],
            "nodes": list(nodes),
        },
    )
    return BlockPlan(
        store=store,
        prefix=prefix,
        nodes=tuple(nodes),
        offsets=tuple(int(o) for o in offsets),
    )


def compile_transition_store(
    graph: DirectedGraph,
    store: MatrixStore,
    n_blocks: int,
    prefix: str = "rank",
) -> BlockPlan:
    """Compile ``graph`` into spilled row blocks of its transition matrix.

    Builds the exact matrix of
    :func:`~repro.network.pagerank.transition_matrix` and slices it, so
    block-wise ranking over the result is bit-equal to the in-memory
    power iteration on the same graph.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot compile an empty graph")
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    matrix, dangling = transition_matrix(graph, index)
    offsets = _block_offsets(len(nodes), n_blocks)
    plan = _save_plan(store, prefix, nodes, offsets, dangling)
    for b in range(plan.n_blocks):
        store.save_csr(
            plan.block_name(b), matrix[offsets[b] : offsets[b + 1], :]
        )
    return plan


def compile_transition_store_from_edges(
    store: MatrixStore,
    nodes: Sequence[str],
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    n_blocks: int,
    prefix: str = "rank",
) -> BlockPlan:
    """Compile blocks from flat edge arrays without the full matrix.

    ``src``/``dst`` are node indices into ``nodes``; parallel edges
    must already be folded (the sharded graph builder folds them).
    Each block's rows are assembled independently from the edges whose
    destination falls inside the block, so peak memory is one block
    plus the edge arrays — never the full matrix.
    """
    n = len(nodes)
    if n == 0:
        raise GraphError("cannot compile an empty graph")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)
    if not (src.shape == dst.shape == weight.shape):
        raise ValidationError("edge arrays must have identical shapes")
    out_weight = np.bincount(src, weights=weight, minlength=n)
    # A node is dangling iff it has no out-edges at all, so exact zero
    # is the intended test.
    dangling = out_weight == 0.0  # repro-lint: disable=R006
    offsets = _block_offsets(n, n_blocks)
    plan = _save_plan(store, prefix, nodes, offsets, dangling)
    if src.size:
        data = weight / out_weight[src]
        order = np.argsort(dst, kind="stable")
        src, dst, data = src[order], dst[order], data[order]
    else:
        data = weight
    bounds = np.searchsorted(dst, offsets)
    for b in range(plan.n_blocks):
        lo, hi = bounds[b], bounds[b + 1]
        rows = offsets[b + 1] - offsets[b]
        block = sp.csr_matrix(
            (data[lo:hi], (dst[lo:hi] - offsets[b], src[lo:hi])),
            shape=(rows, n),
            dtype=np.float64,
        )
        store.save_csr(plan.block_name(b), block)
    return plan


def load_block_plan(store: MatrixStore, prefix: str = "rank") -> BlockPlan:
    """Reload a compiled plan from its store."""
    meta = store.load_meta(f"{prefix}/plan")
    if meta.get("format") != "repro-blockrank" or meta.get("version") != 1:
        raise ValidationError(f"not a blockrank plan: {prefix}")
    return BlockPlan(
        store=store,
        prefix=prefix,
        nodes=tuple(meta["nodes"]),
        offsets=tuple(int(o) for o in meta["offsets"]),
    )


def _block_spmv(
    block: int,
    *,
    store_root: str,
    prefix: str,
    shm_name: str,
    n: int,
) -> np.ndarray:
    """One block's SpMV against the shared rank vector (pool worker).

    Read-only: maps the parent's shared-memory rank vector, mmap-loads
    its own CSR block, and returns the product.  No shared state is
    mutated, so results are identical at any worker count.
    """
    store = MatrixStore(store_root)
    matrix = store.load_csr(f"{prefix}/block-{block:05d}")
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        rank = np.ndarray((n,), dtype=np.float64, buffer=shm.buf)
        return np.asarray(matrix @ rank)
    finally:
        shm.close()


def _serial_block_spmv(plan: BlockPlan, rank: np.ndarray) -> np.ndarray:
    """The serial fallback: same blocks, same order, in-process."""
    parts = [
        plan.store.load_csr(plan.block_name(b)) @ rank
        for b in range(plan.n_blocks)
    ]
    return np.concatenate(parts)


@check_probability_vector()
def block_personalized_pagerank(
    plan: BlockPlan,
    teleport: Mapping[str, float] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    jobs: int | None = None,
) -> dict[str, float]:
    """Power-iteration PageRank over spilled row blocks, in parallel.

    Semantics match
    :func:`~repro.network.pagerank.personalized_pagerank` exactly when
    the plan was compiled from the same graph (bit-equal block SpMV,
    identical dangling/teleport handling, same convergence test).

    Args:
        plan: compiled blocks from :func:`compile_transition_store` or
            :func:`compile_transition_store_from_edges`.
        teleport: node -> probability; ``None`` = uniform.
        damping: probability of following a link (α).
        max_iterations: iteration cap.
        tolerance: L1 convergence threshold.
        jobs: worker processes per :func:`repro.perf.resolve_jobs`
            (``None``/1 serial, 0 = CPU count).  Serial and parallel
            runs return identical values.

    Returns:
        node -> score; scores sum to 1.
    """
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")
    n = plan.n
    index = {node: i for i, node in enumerate(plan.nodes)}
    graph_view = _PlanNodeView(index)
    t = teleport_vector(graph_view, index, teleport)
    dangling = np.asarray(
        plan.store.load_array(f"{plan.prefix}/dangling", mmap=False),
        dtype=bool,
    )
    any_dangling = bool(dangling.any())

    rank = t.copy()
    with WorkerPool(jobs) as pool:
        shm: shared_memory.SharedMemory | None = None
        if pool.workers > 1:
            try:
                shm = shared_memory.SharedMemory(create=True, size=rank.nbytes)
            except OSError:
                # No /dev/shm here; the serial loop computes the same.
                shm = None
        try:
            if shm is not None:
                shared_rank = np.ndarray((n,), dtype=np.float64, buffer=shm.buf)
                worker = partial(
                    _block_spmv,
                    store_root=str(plan.store.root),
                    prefix=plan.prefix,
                    shm_name=shm.name,
                    n=n,
                )
            for _ in range(max_iterations):
                if shm is not None:
                    shared_rank[:] = rank
                    parts = pool.map(
                        worker, range(plan.n_blocks), chunksize=1
                    )
                    new_rank = np.concatenate(parts)
                else:
                    new_rank = _serial_block_spmv(plan, rank)
                if any_dangling:
                    new_rank = new_rank + rank[dangling].sum() * t
                new_rank = damping * new_rank + (1.0 - damping) * t
                if np.abs(new_rank - rank).sum() < tolerance:
                    rank = new_rank
                    break
                rank = new_rank
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
    return {node: float(rank[i]) for node, i in index.items()}


class _PlanNodeView:
    """Minimal graph-shaped membership view for teleport validation."""

    def __init__(self, index: Mapping[str, int]) -> None:
        self._index = index

    def __contains__(self, node: str) -> bool:
        return node in self._index


def block_pagerank(
    plan: BlockPlan,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    jobs: int | None = None,
) -> dict[str, float]:
    """Plain (uniform-teleport) PageRank over spilled blocks."""
    return block_personalized_pagerank(
        plan,
        teleport=None,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
        jobs=jobs,
    )


def block_trustrank(
    plan: BlockPlan,
    trusted_seed: Iterable[str],
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    jobs: int | None = None,
) -> dict[str, float]:
    """TrustRank over spilled blocks (teleport mass on the seed)."""
    node_set = set(plan.nodes)
    seed = [node for node in trusted_seed if node in node_set]
    if not seed:
        raise GraphError("trusted seed has no overlap with the graph")
    return block_personalized_pagerank(
        plan,
        teleport={node: 1.0 for node in seed},
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
        jobs=jobs,
    )


def block_anti_trustrank(
    reversed_plan: BlockPlan,
    distrusted_seed: Iterable[str],
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    jobs: int | None = None,
) -> dict[str, float]:
    """Anti-TrustRank over blocks compiled from the *reversed* graph.

    Distrust propagates backwards, so compile the plan from
    :func:`repro.network.trustrank.reverse_graph` (or swap the edge
    arrays' src/dst) before calling this.
    """
    return block_trustrank(
        reversed_plan,
        trusted_seed=distrusted_seed,
        damping=damping,
        max_iterations=max_iterations,
        tolerance=tolerance,
        jobs=jobs,
    )
