"""Web-graph construction: Algorithm 1 of the paper (GRAPH-CREATION).

For every pharmacy website ``p`` in the working set, add a node for
``p`` itself and, for every outbound link ``u`` of ``p``, a node for
``endpoint(u)`` (the link target's second-level domain) plus the
directed edge ``p -> endpoint(u)``.

The endpoint pruning collapses the URL feature space to registrable
domains, under the assumption that all pages of one domain share one
trustiness value.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.network.graph import DirectedGraph
from repro.web.site import Website

__all__ = ["build_pharmacy_graph", "build_graph_from_link_table"]


def build_pharmacy_graph(
    sites: Sequence[Website],
    weighted: bool = False,
    auxiliary_sites: Sequence[Website] = (),
) -> DirectedGraph:
    """Algorithm 1: build the graph G(V, E) from crawled pharmacies.

    Args:
        sites: the pharmacy working set P (labeled and unlabeled).
        weighted: when True, edges carry the link multiplicity instead
            of weight 1 (an extension; the paper's graph is unweighted).
        auxiliary_sites: non-pharmacy sites whose outbound links are
            also added — the paper's future-work extension (a):
            "include in our network analysis non pharmacy websites that
            point to pharmacies".  Their links give pharmacy nodes
            in-edges and put the seed at graph distance > 1 from some
            pharmacies.  Empty reproduces the paper's graph exactly.

    Returns:
        Directed graph whose nodes are pharmacy domains plus every
        external endpoint linked by a pharmacy or auxiliary site.
    """
    graph = DirectedGraph()
    for site in list(sites) + list(auxiliary_sites):
        graph.add_node(site.domain)
        if weighted:
            for endpoint_domain, count in site.outbound_endpoint_counts().items():
                graph.add_edge(site.domain, endpoint_domain, float(count))
        else:
            for endpoint_domain in site.outbound_endpoints():
                graph.add_edge(site.domain, endpoint_domain, 1.0)
    return graph


def build_graph_from_link_table(
    links: Iterable[tuple[str, str]]
) -> DirectedGraph:
    """Build a graph from explicit (source_domain, target_domain) pairs.

    Convenience constructor for tests and for callers who already hold
    a harvested link table instead of :class:`Website` objects.
    """
    graph = DirectedGraph()
    for src, dst in links:
        graph.add_edge(src, dst, 1.0)
    return graph
