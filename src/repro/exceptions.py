"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class InvalidURLError(ReproError):
    """Raised when a URL cannot be parsed into a usable structure."""


class CrawlError(ReproError):
    """Raised when a crawl cannot start (e.g. unknown seed domain)."""


class FetchError(ReproError):
    """Base class for single-URL fetch failures raised by web hosts.

    The resilience layer (:mod:`repro.web.resilience`) distinguishes
    retryable from terminal failures through the two subclasses below;
    plain hosts may keep returning ``None`` instead, which the crawler
    treats as a terminal not-found.
    """

    def __init__(self, url: str, reason: str = "") -> None:
        self.url = url
        self.reason = reason
        super().__init__(f"fetch failed for {url!r}" + (f": {reason}" if reason else ""))


class TransientFetchError(FetchError):
    """A fetch failure that may succeed on retry (timeout, 5xx, reset)."""


class PermanentFetchError(FetchError):
    """A fetch failure that retrying cannot fix (DNS dead, 4xx, blocked)."""


class FetchTimeoutError(TransientFetchError):
    """A fetch that exceeded its per-request time allowance."""


class CircuitOpenError(TransientFetchError):
    """Fail-fast rejection: the target's circuit breaker is open."""


class CheckpointError(ReproError):
    """Raised for unreadable or mismatched crawl checkpoints."""


class DataGenerationError(ReproError):
    """Raised when synthetic-web generation parameters are inconsistent."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or pipeline configuration."""


class GraphError(ReproError):
    """Raised for invalid graph operations (missing nodes, bad weights)."""


class ValidationError(ReproError, ValueError):
    """Raised when caller-supplied values fail validation.

    Subclasses :class:`ValueError` so call sites that predate the
    library-specific hierarchy (``except ValueError``) keep working.
    """


class MissingKeyError(ReproError, KeyError):
    """Raised for lookups of unknown keys (domains, table rows, ids).

    Subclasses :class:`KeyError` so mapping-protocol consumers (``in``
    checks via ``__getitem__``, ``dict.get``-style fallbacks) behave.
    """


class ServiceUnavailableError(ReproError):
    """Raised by the serving layer when a backend cannot take the call.

    Carries what an HTTP edge needs to answer 503 honestly: which
    backend refused (``backend``) and how long the client should wait
    before retrying (``retry_after`` seconds — the breaker cooldown, or
    a load-shedding hint).

    Attributes:
        backend: name of the refusing backend route.
        retry_after: suggested client wait in seconds.
    """

    def __init__(self, backend: str, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(f"backend {backend!r} unavailable: {reason}")
        self.backend = backend
        self.retry_after = retry_after


class ContractViolationError(ReproError, AssertionError):
    """Raised by :mod:`repro.devtools.contracts` when a numeric
    contract (probability vector, row-stochastic matrix, score range)
    is violated at runtime under the checked build."""
