"""Host abstraction the crawler fetches pages from.

In the paper the crawler (crawler4j) fetched live websites.  Here the
"web" is any object satisfying the :class:`WebHost` protocol; the
synthetic generator provides an :class:`InMemoryWebHost`.  Keeping the
crawler behind this interface means the crawl semantics (BFS frontier,
page cap) are identical regardless of where bytes come from.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.exceptions import InvalidURLError
from repro.web.page import WebPage
from repro.web.url import normalize_url

__all__ = ["WebHost", "InMemoryWebHost"]


@runtime_checkable
class WebHost(Protocol):
    """Anything the crawler can fetch pages from."""

    def fetch(self, url: str) -> WebPage | None:
        """Return the page at ``url``, or ``None`` for a 404/timeout."""
        ...


class InMemoryWebHost:
    """A static, in-memory web: URL -> :class:`WebPage`.

    URLs are normalized on insertion and lookup (scheme/host lowering,
    fragment/query stripping) so that generated links resolve even when
    they differ in these cosmetic details.
    """

    def __init__(self, pages: Iterable[WebPage] = ()) -> None:
        self._pages: dict[str, WebPage] = {}
        for page in pages:
            self.add(page)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return self._key(url) in self._pages

    @staticmethod
    def _key(url: str) -> str:
        return normalize_url(url)

    def add(self, page: WebPage) -> None:
        """Register a page; later additions with the same URL win."""
        self._pages[self._key(page.url)] = page

    def fetch(self, url: str) -> WebPage | None:
        """Return the page at ``url`` or ``None`` when unknown."""
        try:
            key = self._key(url)
        except InvalidURLError:
            return None
        return self._pages.get(key)

    def urls(self) -> tuple[str, ...]:
        """The original ``url`` attribute of every hosted page.

        Insertion order; these are the pages' as-added URLs, not the
        normalized lookup keys."""
        return tuple(page.url for page in self._pages.values())
