"""Website model: a domain plus its pages.

A :class:`Website` is the unit of classification in the paper — one
online pharmacy.  It aggregates the pages the crawler collected for one
registrable domain and exposes the two raw signals the system uses:

* the merged text of all crawled pages (input to summarization), and
* the set of outbound link endpoints (input to the network graph).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.exceptions import DataGenerationError
from repro.web.page import WebPage
from repro.web.url import endpoint

__all__ = ["Website"]


@dataclass(frozen=True, slots=True)
class Website:
    """A crawled website: one registrable domain and its pages.

    Attributes:
        domain: registrable domain (e.g. ``"healthmart-rx.com"``).
        pages: crawled pages, all belonging to :attr:`domain`.
    """

    domain: str
    pages: tuple[WebPage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for page in self.pages:
            if page.domain != self.domain:
                raise DataGenerationError(
                    f"page {page.url!r} does not belong to domain {self.domain!r}"
                )

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    def merged_text(self) -> str:
        """Concatenated text of all pages (paper's summarization input)."""
        return "\n".join(page.text for page in self.pages)

    def outbound_endpoints(self) -> tuple[str, ...]:
        """Distinct external second-level domains linked from any page.

        This is ``outboundLinks`` + ``endpoint`` of Algorithm 1, already
        deduplicated, in first-seen order.
        """
        seen: dict[str, None] = {}
        for page in self.pages:
            for url in page.external_links():
                seen.setdefault(endpoint(url), None)
        return tuple(seen)

    def outbound_endpoint_counts(self) -> Counter[str]:
        """Multiplicity of external endpoints (how often each is linked)."""
        counts: Counter[str] = Counter()
        for page in self.pages:
            for url in page.external_links():
                counts[endpoint(url)] += 1
        return counts

    def front_page(self) -> WebPage | None:
        """The first crawled page (by convention the site root), if any."""
        return self.pages[0] if self.pages else None
