"""Per-key circuit breaker (closed → open → half-open).

Keys are registrable domains in the crawler, but any hashable string
works.  Semantics are the classic trio:

* **closed** — calls flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls
  are rejected without touching the host until ``reset_after`` seconds
  of clock time pass;
* **half-open** — the first call after the cooldown is allowed through
  as a probe; success closes the circuit, failure re-opens it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.web.resilience.clock import Clock, VirtualClock

__all__ = ["CircuitBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


@dataclass(slots=True)
class _CircuitState:
    state: str = _CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0


class CircuitBreaker:
    """Track failure streaks per key and fail fast on dead targets.

    Args:
        failure_threshold: consecutive failures that open the circuit.
        reset_after: seconds the circuit stays open before a probe.
        clock: time source (default: a fresh :class:`VirtualClock`).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 60.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after < 0:
            raise ValidationError(f"reset_after must be >= 0, got {reset_after}")
        self._threshold = failure_threshold
        self._reset_after = reset_after
        self._clock = clock if clock is not None else VirtualClock()
        self._circuits: dict[str, _CircuitState] = {}

    def _circuit(self, key: str) -> _CircuitState:
        return self._circuits.setdefault(key, _CircuitState())

    def state(self, key: str) -> str:
        """The circuit state for ``key``: closed, open, or half-open."""
        return self._circuit(key).state

    def allow(self, key: str) -> bool:
        """Whether a call to ``key`` may proceed right now.

        An open circuit transitions to half-open (and allows one probe)
        once ``reset_after`` seconds have elapsed since it opened.
        """
        circuit = self._circuit(key)
        if circuit.state == _OPEN:
            elapsed = self._clock.monotonic() - circuit.opened_at
            # Time is injected: the default clock is the deterministic
            # VirtualClock; SystemClock is the one audited real-time
            # boundary callers opt into.
            if elapsed >= self._reset_after:  # repro-flow: disable=D002
                circuit.state = _HALF_OPEN
                return True
            return False
        return True

    def record_success(self, key: str) -> None:
        """Report a successful call: closes the circuit, clears streaks."""
        circuit = self._circuit(key)
        circuit.state = _CLOSED
        circuit.consecutive_failures = 0

    def record_failure(self, key: str) -> None:
        """Report a failed call; may open (or re-open) the circuit."""
        circuit = self._circuit(key)
        circuit.consecutive_failures += 1
        # The injected clock only stamps opened_at; these comparisons
        # are deterministic under the default VirtualClock.
        if (
            circuit.state == _HALF_OPEN  # repro-flow: disable=D002
            or circuit.consecutive_failures >= self._threshold  # repro-flow: disable=D002
        ):
            circuit.state = _OPEN
            circuit.opened_at = self._clock.monotonic()
