"""Crawl checkpoint/resume.

A :class:`CrawlCheckpoint` is the crawler's loop state frozen to JSON:
the fetched pages, the visited set, the remaining frontier, and the
stat counters.  The crawler saves one (atomically, through
:func:`repro.io.atomic_write_text`) whenever a crawl stops early —
deadline hit, fetch budget exhausted — and a later crawl of the same
seed resumes from it without re-fetching a single completed page.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.sanitizers import sanitizes
from repro.exceptions import CheckpointError
from repro.web.page import WebPage

__all__ = ["CrawlCheckpoint", "save_checkpoint", "load_checkpoint"]

_FORMAT = "repro-crawl-checkpoint"
_VERSION = 1


@dataclass(frozen=True, slots=True)
class CrawlCheckpoint:
    """Mid-crawl state for one site.

    Attributes:
        seed_url: the crawl's seed (resume validates it matches).
        domain: registrable domain being crawled.
        pages: pages fetched so far, in BFS order.
        visited: normalized URLs already enqueued or fetched.
        frontier: URLs still to fetch, in queue order.
        counters: stat counters accumulated so far (retries, failures,
            rejected links, ...), merged into the resumed crawl's stats.
        failed_urls: URLs already given up on, in encounter order.
    """

    seed_url: str
    domain: str
    pages: tuple[WebPage, ...]
    visited: frozenset[str]
    frontier: tuple[str, ...]
    counters: dict[str, int] = field(default_factory=dict)
    failed_urls: tuple[str, ...] = ()

    def to_json(self) -> str:
        """Serialize to a stable, human-inspectable JSON document."""
        return json.dumps(
            {
                "format": _FORMAT,
                "version": _VERSION,
                "seed_url": self.seed_url,
                "domain": self.domain,
                "pages": [
                    {"url": p.url, "text": p.text, "links": list(p.links)}
                    for p in self.pages
                ],
                "visited": sorted(self.visited),
                "frontier": list(self.frontier),
                "counters": dict(self.counters),
                "failed_urls": list(self.failed_urls),
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "<memory>") -> "CrawlCheckpoint":
        """Parse a checkpoint serialized by :meth:`to_json`.

        Raises:
            CheckpointError: malformed JSON, wrong format, or version
                skew.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"malformed checkpoint {source}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise CheckpointError(f"not a crawl checkpoint: {source}")
        if payload.get("version") != _VERSION:
            raise CheckpointError(
                f"checkpoint version {payload.get('version')} != {_VERSION}: {source}"
            )
        try:
            pages = tuple(
                WebPage(url=p["url"], text=p["text"], links=tuple(p["links"]))
                for p in payload["pages"]
            )
            return cls(
                seed_url=payload["seed_url"],
                domain=payload["domain"],
                pages=pages,
                visited=frozenset(payload["visited"]),
                frontier=tuple(payload["frontier"]),
                counters={k: int(v) for k, v in payload.get("counters", {}).items()},
                failed_urls=tuple(payload.get("failed_urls", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"incomplete checkpoint {source}: {exc}") from exc


def save_checkpoint(checkpoint: CrawlCheckpoint, path: str | Path) -> None:
    """Atomically persist ``checkpoint`` to ``path``."""
    # Imported lazily: repro.io sits above the web layer's substrate
    # modules in import order (it pulls in repro.data at load time).
    from repro.io import atomic_write_text

    atomic_write_text(path, checkpoint.to_json() + "\n")


@sanitizes("*")
def load_checkpoint(path: str | Path) -> CrawlCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Declared a full sanitizer: a checkpoint is this library's own
    serialized state, written only through :func:`save_checkpoint` to an
    operator-chosen path.  :meth:`CrawlCheckpoint.from_json` rejects
    anything that is not a well-formed document of the expected format
    and version, and the crawler independently re-checks the seed/domain
    binding and re-runs every restored frontier URL through its
    same-site SSRF guard before fetching.

    Raises:
        CheckpointError: missing or unreadable file, malformed content.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise CheckpointError(f"no such checkpoint: {path}") from exc
    except OSError as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    return CrawlCheckpoint.from_json(text, source=str(path))
