"""Injectable time: ``Clock`` (read) and ``Sleeper`` (wait) protocols.

Retry backoff, circuit-breaker cooldowns, and crawl deadlines all need
a notion of time, but reading the wall clock inside library code makes
crawls irreproducible (and trips repro-flow's D002 determinism rule).
Time is therefore injected:

* :class:`VirtualClock` — the default everywhere: a manually advanced
  monotonic counter whose :meth:`~VirtualClock.sleep` *advances the
  clock instead of blocking*, so backoff schedules and deadlines are
  exercised deterministically and tests finish instantly;
* :class:`SystemClock` — the production implementation backed by
  :func:`time.monotonic`/:func:`time.sleep`, for crawling hosts that
  are actually remote.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.exceptions import ValidationError

__all__ = ["Clock", "Sleeper", "SystemClock", "VirtualClock"]


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, never-decreasing origin."""
        ...


@runtime_checkable
class Sleeper(Protocol):
    """Something that can wait (or pretend to)."""

    def sleep(self, seconds: float) -> None:
        """Block (or advance virtual time) for ``seconds``."""
        ...


class VirtualClock:
    """Deterministic clock + sleeper: sleeping advances time instantly.

    Args:
        start: initial reading of :meth:`monotonic`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without blocking."""
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move the clock forward (e.g. to model a slow response)."""
        if seconds < 0:
            raise ValidationError(f"cannot advance time by {seconds}")
        self._now += float(seconds)


class SystemClock:
    """Wall-clock implementation for production crawls.

    The only place the library touches real time; everything else goes
    through the protocols so determinism is opt-out, not opt-in.
    """

    def monotonic(self) -> float:
        """Real monotonic seconds (:func:`time.monotonic`)."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really sleep (:func:`time.sleep`); never negative."""
        time.sleep(max(0.0, seconds))
