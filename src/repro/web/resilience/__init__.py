"""Resilience layer for the acquisition path.

The paper crawled thousands of live pharmacy sites — an environment of
timeouts, transient errors, truncated pages, and hostile link farms.
This package makes that environment *reproducible* and the crawl
*survivable*:

* :mod:`~repro.web.resilience.clock` — injectable ``Clock``/``Sleeper``
  abstractions so retry backoff and crawl deadlines never read the wall
  clock in library code (repro-flow D002 stays clean) and tests never
  actually sleep;
* :mod:`~repro.web.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` executed by :class:`FaultInjectingWebHost` over
  any host: transient/permanent failures, slow responses, truncated or
  garbled bodies, flapping domains;
* :mod:`~repro.web.resilience.retry` — :class:`RetryPolicy` with
  exponential backoff and seeded jitter;
* :mod:`~repro.web.resilience.breaker` — a per-domain
  :class:`CircuitBreaker` that fails fast on persistently dead hosts;
* :mod:`~repro.web.resilience.checkpoint` — atomic crawl
  checkpoint/resume so an interrupted crawl never re-fetches completed
  pages.

The :class:`~repro.web.crawler.Crawler` consumes all of these through
constructor knobs; everything is optional and defaults to the old
fail-soft behavior.
"""

from repro.web.resilience.breaker import CircuitBreaker
from repro.web.resilience.checkpoint import (
    CrawlCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.web.resilience.clock import Clock, Sleeper, SystemClock, VirtualClock
from repro.web.resilience.faults import (
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.web.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Clock",
    "CrawlCheckpoint",
    "FaultInjectingWebHost",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "Sleeper",
    "SystemClock",
    "VirtualClock",
    "load_checkpoint",
    "save_checkpoint",
]
