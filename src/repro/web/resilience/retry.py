"""Retry policy: exponential backoff with seeded jitter.

A :class:`RetryPolicy` is pure configuration — the crawler owns the RNG
(one per crawl, seeded from the policy) so that identical crawls
produce byte-identical retry schedules, stats, and reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to retry a transient fetch failure, and how long
    to back off between attempts.

    Attributes:
        max_attempts: total tries per URL, including the first (>= 1).
        base_delay: backoff before the first retry, in seconds.
        multiplier: exponential growth factor per further retry.
        max_delay: backoff ceiling in seconds.
        jitter: symmetric jitter fraction in ``[0, 1]``; each delay is
            scaled by ``1 + U(-jitter, +jitter)``.
        seed: seed for the jitter RNG (drawn fresh per crawl).
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    def rng(self) -> np.random.Generator:
        """A fresh jitter RNG; callers draw one per crawl."""
        return np.random.default_rng(self.seed)

    def backoff(self, retry_index: int, rng: np.random.Generator) -> float:
        """Delay in seconds before retry number ``retry_index`` (1-based).

        Args:
            retry_index: 1 for the first retry, 2 for the second, ...
            rng: the crawl's jitter RNG (consumed even when jitter is 0
                so schedules stay aligned across configurations).

        Returns:
            ``min(max_delay, base_delay * multiplier**(retry_index-1))``
            scaled by the jitter draw.
        """
        if retry_index < 1:
            raise ValidationError(f"retry_index must be >= 1, got {retry_index}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1))
        scale = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw * scale
