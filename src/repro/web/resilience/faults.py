"""Deterministic fault injection over any :class:`~repro.web.host.WebHost`.

A :class:`FaultPlan` maps normalized URLs to :class:`FaultSpec`\\ s; a
:class:`FaultInjectingWebHost` wraps a real host and *executes* the
plan, keeping a per-URL attempt counter so stateful faults (transient
failures that recover after k attempts, flapping domains) behave
identically on every run.  Plans are either hand-built or drawn from a
seed with :meth:`FaultPlan.seeded`, which makes every failure mode in
tests and benchmarks reproducible down to the byte.

Fault kinds:

============  ==========================================================
transient     raise :class:`TransientFetchError` on the first
              ``recover_after`` attempts, then behave normally
permanent     always raise :class:`PermanentFetchError`
slow          advance the injected clock by ``delay`` seconds, then
              serve the page (consumes crawl deadlines, never blocks)
truncate      serve the page with only the first ``keep_fraction`` of
              its text and links (a cut-off response body)
garble        serve the page with its text deterministically mangled
              (mojibake substitution) — parseable but low-signal
flapping      alternate availability: ``period`` failing attempts, then
              ``period`` working ones, repeating
============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np

from repro.exceptions import (
    InvalidURLError,
    PermanentFetchError,
    TransientFetchError,
    ValidationError,
)
from repro.web.host import WebHost
from repro.web.page import WebPage
from repro.web.resilience.clock import Clock
from repro.web.url import normalize_url

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjectingWebHost"]


class FaultKind(str, Enum):
    """The failure modes a plan can inject."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    SLOW = "slow"
    TRUNCATE = "truncate"
    GARBLE = "garble"
    FLAPPING = "flapping"


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One URL's scripted misbehavior.

    Attributes:
        kind: the failure mode.
        recover_after: for ``transient``: failing attempts before
            recovery.
        delay: for ``slow``: seconds the response takes.
        keep_fraction: for ``truncate``: fraction of text/links kept.
        period: for ``flapping``: length of each down/up phase in
            attempts.
    """

    kind: FaultKind
    recover_after: int = 1
    delay: float = 5.0
    keep_fraction: float = 0.25
    period: int = 2

    def __post_init__(self) -> None:
        if self.recover_after < 1:
            raise ValidationError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )
        if self.delay < 0:
            raise ValidationError(f"delay must be >= 0, got {self.delay}")
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise ValidationError(
                f"keep_fraction must be in [0, 1], got {self.keep_fraction}"
            )
        if self.period < 1:
            raise ValidationError(f"period must be >= 1, got {self.period}")


class FaultPlan:
    """A deterministic URL → fault script.

    Args:
        faults: mapping of URL (normalized on insertion) to spec.
        seed: recorded provenance when built by :meth:`seeded`.
    """

    def __init__(
        self, faults: Mapping[str, FaultSpec] | None = None, seed: int | None = None
    ) -> None:
        self._faults: dict[str, FaultSpec] = {}
        self.seed = seed
        for url, spec in (faults or {}).items():
            self.add(url, spec)

    def __len__(self) -> int:
        return len(self._faults)

    def __contains__(self, url: str) -> bool:
        return self._normalize(url) in self._faults

    @staticmethod
    def _normalize(url: str) -> str:
        try:
            return normalize_url(url)
        except InvalidURLError:
            return url

    def add(self, url: str, spec: FaultSpec) -> None:
        """Script ``spec`` for ``url`` (later additions win)."""
        self._faults[self._normalize(url)] = spec

    def spec_for(self, url: str) -> FaultSpec | None:
        """The scripted fault for ``url``, or ``None`` (healthy)."""
        return self._faults.get(self._normalize(url))

    def items(self) -> tuple[tuple[str, FaultSpec], ...]:
        """All ``(normalized_url, spec)`` pairs, insertion-ordered."""
        return tuple(self._faults.items())

    @classmethod
    def seeded(
        cls,
        urls: Mapping[str, object] | tuple[str, ...] | list[str],
        seed: int = 0,
        transient_rate: float = 0.3,
        permanent_rate: float = 0.0,
        slow_rate: float = 0.0,
        truncate_rate: float = 0.0,
        flap_rate: float = 0.0,
        max_recover_after: int = 2,
        slow_delay: float = 5.0,
        keep_fraction: float = 0.25,
    ) -> "FaultPlan":
        """Draw a plan over ``urls`` from a seed.

        URLs are considered in sorted normalized order and each rolls
        one uniform draw against the cumulative rate bands, so the plan
        depends only on the URL set and the seed — not on iteration
        order or prior RNG use.

        Args:
            urls: the URL universe (an iterable, or a host's
                ``urls()``).
            seed: RNG seed.
            transient_rate: fraction of URLs failing transiently.
            permanent_rate: fraction permanently dead.
            slow_rate: fraction served slowly.
            truncate_rate: fraction with cut-off bodies.
            flap_rate: fraction flapping.
            max_recover_after: transient failures recover after
                ``1..max_recover_after`` attempts (drawn per URL).
            slow_delay: seconds each slow response takes.
            keep_fraction: body fraction kept on truncation.

        Returns:
            The drawn :class:`FaultPlan`.
        """
        total = transient_rate + permanent_rate + slow_rate + truncate_rate + flap_rate
        if total > 1.0 + 1e-9:
            raise ValidationError(f"fault rates sum to {total:.3f} > 1")
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        normalized = sorted({cls._normalize(u) for u in urls})
        for url in normalized:
            roll = float(rng.random())
            recover = int(rng.integers(1, max_recover_after + 1))
            if roll < transient_rate:
                plan.add(url, FaultSpec(FaultKind.TRANSIENT, recover_after=recover))
            elif roll < transient_rate + permanent_rate:
                plan.add(url, FaultSpec(FaultKind.PERMANENT))
            elif roll < transient_rate + permanent_rate + slow_rate:
                plan.add(url, FaultSpec(FaultKind.SLOW, delay=slow_delay))
            elif roll < transient_rate + permanent_rate + slow_rate + truncate_rate:
                plan.add(
                    url, FaultSpec(FaultKind.TRUNCATE, keep_fraction=keep_fraction)
                )
            elif roll < total:
                plan.add(url, FaultSpec(FaultKind.FLAPPING))
        return plan


def _garble(text: str) -> str:
    """Deterministically mangle ``text`` (every third char → mojibake)."""
    return "".join(
        "�" if i % 3 == 2 else ch for i, ch in enumerate(text)
    )


class FaultInjectingWebHost:
    """Wrap a host and execute a :class:`FaultPlan` against its callers.

    Also counts fetch attempts per normalized URL (:attr:`attempts`),
    which lets tests assert that checkpoint resume does not re-fetch
    completed pages.

    Args:
        inner: the healthy host to degrade.
        plan: the fault script.
        clock: when given, slow responses advance this clock by their
            ``delay`` (sharing the crawler's clock makes slow faults
            consume the crawl deadline).
    """

    def __init__(
        self, inner: WebHost, plan: FaultPlan, clock: Clock | None = None
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._clock = clock
        self._attempts: dict[str, int] = {}

    @property
    def attempts(self) -> Mapping[str, int]:
        """Fetch attempts seen so far, keyed by normalized URL."""
        return dict(self._attempts)

    def total_attempts(self) -> int:
        """Fetch attempts across all URLs."""
        return sum(self._attempts.values())

    def fetch(self, url: str) -> WebPage | None:
        """Serve ``url`` through the fault plan.

        Raises:
            TransientFetchError: scripted transient/flapping downtime.
            PermanentFetchError: scripted permanent failure.
        """
        key = FaultPlan._normalize(url)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        spec = self._plan.spec_for(url)
        if spec is None:
            return self._inner.fetch(url)
        if spec.kind is FaultKind.TRANSIENT:
            if attempt <= spec.recover_after:
                raise TransientFetchError(url, f"injected transient #{attempt}")
            return self._inner.fetch(url)
        if spec.kind is FaultKind.PERMANENT:
            raise PermanentFetchError(url, "injected permanent failure")
        if spec.kind is FaultKind.SLOW:
            if self._clock is not None and hasattr(self._clock, "advance"):
                self._clock.advance(spec.delay)
            return self._inner.fetch(url)
        if spec.kind is FaultKind.FLAPPING:
            phase = (attempt - 1) // spec.period
            if phase % 2 == 0:  # down first: resilient callers must retry
                raise TransientFetchError(url, f"flapping (attempt {attempt})")
            return self._inner.fetch(url)
        page = self._inner.fetch(url)
        if page is None:
            return None
        if spec.kind is FaultKind.TRUNCATE:
            keep_text = int(len(page.text) * spec.keep_fraction)
            keep_links = int(len(page.links) * spec.keep_fraction)
            return WebPage(
                url=page.url,
                text=page.text[:keep_text],
                links=page.links[:keep_links],
            )
        return WebPage(url=page.url, text=_garble(page.text), links=page.links)
