"""Web page model used by the crawler and the synthetic web."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvalidURLError
from repro.web.url import endpoint, parse_url, resolve_url

__all__ = ["WebPage"]


@dataclass(frozen=True, slots=True)
class WebPage:
    """One fetched (or synthesized) HTML page, reduced to what the
    verification pipeline consumes.

    Attributes:
        url: absolute URL of the page.
        text: visible text content of the page (HTML already stripped).
        links: absolute URLs of all hyperlinks found on the page, in
            document order.  May point within the same domain or to
            external domains.
    """

    url: str
    text: str
    links: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        parse_url(self.url)  # validate eagerly; raises InvalidURLError

    @property
    def domain(self) -> str:
        """Second-level domain this page belongs to."""
        return endpoint(self.url)

    def resolved_links(self) -> tuple[str, ...]:
        """The page's links as absolute URLs.

        Relative hrefs (``/cart``, ``../about``, ``//cdn.net/x``) are
        resolved against the page URL; unresolvable entries (mailto:,
        javascript:, garbage) are dropped.
        """
        resolved: list[str] = []
        for href in self.links:
            try:
                resolved.append(resolve_url(self.url, href))
            except InvalidURLError:
                continue
        return tuple(resolved)

    def internal_links(self) -> tuple[str, ...]:
        """Links that stay on this page's registrable domain."""
        own = self.domain
        return tuple(
            u for u in self.resolved_links() if _safe_endpoint(u) == own
        )

    def external_links(self) -> tuple[str, ...]:
        """Links that leave this page's registrable domain.

        These are the *outbound links* of Algorithm 1 in the paper.
        """
        own = self.domain
        return tuple(
            u
            for u in self.resolved_links()
            if (e := _safe_endpoint(u)) is not None and e != own
        )


def _safe_endpoint(url: str) -> str | None:
    """``endpoint`` that swallows malformed URLs (returns None)."""
    try:
        return endpoint(url)
    except InvalidURLError:
        return None
