"""Breadth-first website crawler (crawler4j substitute), resilient.

The paper crawled each pharmacy domain "without depth limit, but for a
maximum of 200 pages" (Section 6.1).  :class:`Crawler` reproduces those
semantics over a :class:`~repro.web.host.WebHost`:

* the frontier is a FIFO queue seeded with the site root (BFS, hence
  effectively unbounded depth until the page cap);
* only links that *stay on the seed's registrable domain after URL
  normalization* are enqueued — a link whose normalized form hops to a
  different registrable domain is rejected, so a hostile page cannot
  redirect the crawl off-site (SSRF);
* per-page link fan-out is capped (adversarial pages can carry
  thousands of links; the cap bounds frontier growth);
* external links are recorded on the page objects and later harvested
  by :meth:`~repro.web.site.Website.outbound_endpoints`;
* at most ``max_pages`` pages are fetched per site.

On top of the paper's protocol sits the resilience layer
(:mod:`repro.web.resilience`), all opt-in:

* hosts may **raise** :class:`~repro.exceptions.TransientFetchError` /
  :class:`~repro.exceptions.PermanentFetchError` instead of returning
  ``None``; a :class:`~repro.web.resilience.RetryPolicy` retries the
  transient ones with exponential backoff and seeded jitter, sleeping
  through an injectable :class:`~repro.web.resilience.clock.Sleeper`;
* a per-domain :class:`~repro.web.resilience.CircuitBreaker` fails fast
  once a domain looks dead;
* a per-site ``deadline`` (clock seconds) and ``fetch_budget`` (total
  fetch attempts) bound each :meth:`~Crawler.crawl_site` call; hitting
  either stops the crawl gracefully with partial results;
* with a ``checkpoint_path``, loop state is persisted atomically and an
  interrupted crawl resumes without re-fetching completed pages.

Every failure is accounted for in the extended :class:`CrawlStats`
taxonomy rather than silently thinning the corpus.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.devtools.sanitizers import sanitizes
from repro.exceptions import (
    CheckpointError,
    CrawlError,
    InvalidURLError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.web.host import WebHost
from repro.web.page import WebPage
from repro.web.resilience.breaker import CircuitBreaker
from repro.web.resilience.checkpoint import (
    CrawlCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.web.resilience.clock import Clock, Sleeper, VirtualClock
from repro.web.resilience.retry import RetryPolicy
from repro.web.site import Website
from repro.web.url import endpoint, normalize_url, parse_url

logger = logging.getLogger(__name__)

__all__ = ["Crawler", "CrawlStats"]

#: The paper's per-site page cap.
DEFAULT_MAX_PAGES = 200

#: Links considered per fetched page; the rest are dropped.  Bounds
#: frontier growth on adversarial pages with huge link farms.
DEFAULT_MAX_LINKS_PER_PAGE = 100

#: Checkpoint write cadence, in fetched pages.
DEFAULT_CHECKPOINT_EVERY = 10

#: Sentinel: the fetch could not even be attempted (budget exhausted).
_INTERRUPTED = object()


@dataclass(frozen=True, slots=True)
class CrawlStats:
    """Bookkeeping for one site crawl, including the error taxonomy.

    Attributes:
        domain: registrable domain crawled.
        pages_fetched: pages successfully fetched this call.
        pages_skipped: frontier entries dropped by the page cap.
        fetch_failures: URLs the host returned ``None`` for (404-style
            not-found; terminal, never retried).
        links_rejected: links dropped by the same-site guard or the
            per-page fan-out cap.
        retries: retry attempts performed after transient failures.
        transient_recovered: URLs that failed transiently but were
            fetched on a later attempt.
        permanent_failures: URLs given up on — permanent fetch errors
            plus transient ones whose retry budget ran out.
        circuit_rejections: fetches refused because the domain's
            circuit breaker was open.
        deadline_hit: the per-site crawl deadline expired.
        budget_exhausted: the per-site fetch budget ran out.
        resumed: this crawl restored state from a checkpoint.
        failed_urls: URLs that were abandoned (permanent failures and
            circuit rejections), in encounter order.
    """

    domain: str
    pages_fetched: int
    pages_skipped: int
    fetch_failures: int
    links_rejected: int = 0
    retries: int = 0
    transient_recovered: int = 0
    permanent_failures: int = 0
    circuit_rejections: int = 0
    deadline_hit: bool = False
    budget_exhausted: bool = False
    resumed: bool = False
    failed_urls: tuple[str, ...] = ()

    @property
    def is_partial(self) -> bool:
        """Whether the site's content was only partially acquired.

        Not-found links (``fetch_failures``) are everyday web rot and
        do not count; give-ups, open circuits, and exhausted budgets or
        deadlines do.
        """
        return bool(
            self.permanent_failures
            or self.circuit_rejections
            or self.deadline_hit
            or self.budget_exhausted
        )

    def error_taxonomy(self) -> dict[str, int]:
        """The failure counters as one mapping (for reports/logs)."""
        return {
            "not_found": self.fetch_failures,
            "permanent": self.permanent_failures,
            "retries": self.retries,
            "transient_recovered": self.transient_recovered,
            "circuit_rejections": self.circuit_rejections,
            "deadline_hit": int(self.deadline_hit),
            "budget_exhausted": int(self.budget_exhausted),
        }


@dataclass(slots=True)
class _CrawlState:
    """Mutable loop state for one :meth:`Crawler.crawl_site` call."""

    domain: str
    pages: list[WebPage] = field(default_factory=list)
    visited: set[str] = field(default_factory=set)
    frontier: deque[str] = field(default_factory=deque)
    failed_urls: list[str] = field(default_factory=list)
    fetch_failures: int = 0
    pages_skipped: int = 0
    links_rejected: int = 0
    retries: int = 0
    transient_recovered: int = 0
    permanent_failures: int = 0
    circuit_rejections: int = 0
    fetches_used: int = 0
    deadline_hit: bool = False
    budget_exhausted: bool = False
    resumed: bool = False

    _COUNTER_KEYS = (
        "fetch_failures",
        "pages_skipped",
        "links_rejected",
        "retries",
        "transient_recovered",
        "permanent_failures",
        "circuit_rejections",
    )

    def counters(self) -> dict[str, int]:
        return {key: getattr(self, key) for key in self._COUNTER_KEYS}

    def restore_counters(self, counters: dict[str, int]) -> None:
        for key in self._COUNTER_KEYS:
            setattr(self, key, int(counters.get(key, 0)))


class Crawler:
    """BFS crawler with a per-site page cap and optional resilience.

    Args:
        host: where to fetch pages from.  The host may signal failures
            by returning ``None`` (terminal not-found) or by raising
            :class:`~repro.exceptions.TransientFetchError` /
            :class:`~repro.exceptions.PermanentFetchError`.
        max_pages: per-site page cap (paper: 200).
        max_links_per_page: per-page link fan-out cap.
        retry_policy: when given, transient failures are retried with
            backoff; without it any fetch error is terminal for its URL
            (the crawl itself still survives).
        breaker: per-domain circuit breaker shared across crawls.
        clock: time source for deadlines and breaker cooldowns
            (default: a fresh deterministic
            :class:`~repro.web.resilience.VirtualClock`).
        sleeper: how backoff waits are performed (default: the clock,
            so virtual time advances instead of blocking).
        deadline: max clock seconds per :meth:`crawl_site` call.
        fetch_budget: max fetch attempts (including retries) per
            :meth:`crawl_site` call.
        checkpoint_path: when given, crawl state is persisted here and
            interrupted crawls resume from it.
        checkpoint_every: pages between periodic checkpoint writes.
    """

    def __init__(
        self,
        host: WebHost,
        max_pages: int = DEFAULT_MAX_PAGES,
        max_links_per_page: int = DEFAULT_MAX_LINKS_PER_PAGE,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Clock | None = None,
        sleeper: Sleeper | None = None,
        deadline: float | None = None,
        fetch_budget: int | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if max_pages < 1:
            raise CrawlError(f"max_pages must be >= 1, got {max_pages}")
        if max_links_per_page < 1:
            raise CrawlError(
                f"max_links_per_page must be >= 1, got {max_links_per_page}"
            )
        if deadline is not None and deadline <= 0:
            raise CrawlError(f"deadline must be > 0, got {deadline}")
        if fetch_budget is not None and fetch_budget < 1:
            raise CrawlError(f"fetch_budget must be >= 1, got {fetch_budget}")
        if checkpoint_every < 1:
            raise CrawlError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._host = host
        self._max_pages = max_pages
        self._max_links_per_page = max_links_per_page
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._clock: Clock = clock if clock is not None else VirtualClock()
        if sleeper is not None:
            self._sleeper: Sleeper = sleeper
        elif isinstance(self._clock, Sleeper):
            self._sleeper = self._clock
        else:
            self._sleeper = VirtualClock()
        self._deadline = deadline
        self._fetch_budget = fetch_budget
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._checkpoint_every = checkpoint_every
        self._last_stats: CrawlStats | None = None

    @property
    def max_pages(self) -> int:
        return self._max_pages

    @property
    def max_links_per_page(self) -> int:
        """Per-page link fan-out cap."""
        return self._max_links_per_page

    @property
    def last_stats(self) -> CrawlStats | None:
        """Statistics of the most recent :meth:`crawl_site` call."""
        return self._last_stats

    def crawl_site(self, seed_url: str) -> Website:
        """Crawl one site starting from ``seed_url``.

        Args:
            seed_url: URL of the site root (or any page of the site).

        Returns:
            A :class:`Website` with the pages reachable from the seed,
            in BFS order, capped at ``max_pages``.  When a deadline or
            fetch budget interrupts the crawl, the site is partial and
            :attr:`last_stats` says so (``deadline_hit`` /
            ``budget_exhausted``); with a ``checkpoint_path`` the next
            call picks up where this one stopped.

        Raises:
            CrawlError: when the seed URL itself cannot be fetched
                (after retries, when a policy is configured).
            CheckpointError: when an existing checkpoint does not match
                ``seed_url``.
        """
        parse_url(seed_url)
        domain = endpoint(seed_url)
        state = _CrawlState(domain=domain)
        rng = self._retry_policy.rng() if self._retry_policy is not None else None
        started = self._clock.monotonic()

        checkpoint = self._load_checkpoint(seed_url, domain)
        if checkpoint is not None:
            state.pages = list(checkpoint.pages)
            state.visited = set(checkpoint.visited)
            # Frontier URLs come from a file on disk: re-validate every
            # one through the same-site guard so a tampered checkpoint
            # cannot point the crawl off-domain.
            state.frontier = deque(
                safe
                for url in checkpoint.frontier
                if (safe := self._same_site(url, domain)) is not None
            )
            state.failed_urls = list(checkpoint.failed_urls)
            state.restore_counters(checkpoint.counters)
            state.resumed = True
        else:
            state.frontier = deque([seed_url])
            state.visited = {normalize_url(seed_url)}

        since_checkpoint = 0
        while state.frontier:
            if len(state.pages) >= self._max_pages:
                state.pages_skipped += len(state.frontier)
                state.frontier.clear()
                break
            # Time is injected: deterministic VirtualClock by default,
            # SystemClock only when the caller opts into real time.
            if (
                self._deadline is not None
                and self._clock.monotonic() - started >= self._deadline  # repro-flow: disable=D002
            ):
                state.deadline_hit = True
                break
            url = state.frontier.popleft()
            page = self._fetch_resilient(url, state, rng)
            if page is _INTERRUPTED:
                state.frontier.appendleft(url)
                break
            if page is None:
                if not state.pages and not state.resumed:
                    raise CrawlError(f"seed URL not fetchable: {seed_url!r}")
                continue
            state.pages.append(page)
            self._enqueue_links(page, state)
            since_checkpoint += 1
            if (
                self._checkpoint_path is not None
                and since_checkpoint >= self._checkpoint_every
            ):
                self._save_checkpoint(seed_url, state)
                since_checkpoint = 0

        interrupted = state.deadline_hit or state.budget_exhausted
        self._finalize_checkpoint(seed_url, state, interrupted)

        logger.debug(
            "crawled %s: %d pages (%s), taxonomy %s",
            domain,
            len(state.pages),
            "partial" if interrupted else "complete",
            self._stats_from(state).error_taxonomy(),
        )
        self._last_stats = self._stats_from(state)
        return Website(domain=domain, pages=tuple(state.pages))

    # -- resilient fetching -------------------------------------------------

    def _fetch_resilient(
        self, url: str, state: _CrawlState, rng: np.random.Generator | None
    ):
        """Fetch ``url`` honoring breaker, budget, and retry policy.

        Returns the page, ``None`` when the URL is given up on, or
        :data:`_INTERRUPTED` when the fetch budget ran out before the
        fetch could happen (the URL was *not* attempted).
        """
        max_attempts = (
            self._retry_policy.max_attempts if self._retry_policy is not None else 1
        )
        attempt = 0
        while True:
            if self._breaker is not None and not self._breaker.allow(state.domain):
                state.circuit_rejections += 1
                state.failed_urls.append(url)
                return None
            if (
                self._fetch_budget is not None
                and state.fetches_used >= self._fetch_budget
            ):
                state.budget_exhausted = True
                return _INTERRUPTED
            state.fetches_used += 1
            attempt += 1
            try:
                page = self._host.fetch(url)
            except PermanentFetchError as exc:
                logger.debug("permanent fetch failure for %s: %s", url, exc.reason)
                self._record_failure(state)
                state.permanent_failures += 1
                state.failed_urls.append(url)
                return None
            except TransientFetchError as exc:
                self._record_failure(state)
                if attempt < max_attempts and rng is not None:
                    state.retries += 1
                    self._sleeper.sleep(self._retry_policy.backoff(attempt, rng))
                    continue
                logger.debug(
                    "gave up on %s after %d attempt(s): %s", url, attempt, exc.reason
                )
                state.permanent_failures += 1
                state.failed_urls.append(url)
                return None
            if page is None:
                # Not-found is terminal and does not implicate the host.
                state.fetch_failures += 1
                return None
            if attempt > 1:
                state.transient_recovered += 1
            if self._breaker is not None:
                self._breaker.record_success(state.domain)
            return page

    def _record_failure(self, state: _CrawlState) -> None:
        if self._breaker is not None:
            self._breaker.record_failure(state.domain)

    def _enqueue_links(self, page: WebPage, state: _CrawlState) -> None:
        considered = 0
        for link in page.internal_links():
            if considered >= self._max_links_per_page:
                state.links_rejected += 1
                continue
            considered += 1
            safe_url = self._same_site(link, state.domain)
            if safe_url is None:
                state.links_rejected += 1
                continue
            key = normalize_url(safe_url)
            if key not in state.visited:
                state.visited.add(key)
                state.frontier.append(safe_url)

    # -- checkpointing ------------------------------------------------------

    def _load_checkpoint(self, seed_url: str, domain: str) -> CrawlCheckpoint | None:
        if self._checkpoint_path is None or not self._checkpoint_path.exists():
            return None
        checkpoint = load_checkpoint(self._checkpoint_path)
        if checkpoint.domain != domain or (
            normalize_url(checkpoint.seed_url) != normalize_url(seed_url)
        ):
            raise CheckpointError(
                f"checkpoint at {self._checkpoint_path} is for "
                f"{checkpoint.seed_url!r}, not {seed_url!r}"
            )
        return checkpoint

    def _save_checkpoint(self, seed_url: str, state: _CrawlState) -> None:
        save_checkpoint(
            CrawlCheckpoint(
                seed_url=seed_url,
                domain=state.domain,
                pages=tuple(state.pages),
                visited=frozenset(state.visited),
                frontier=tuple(state.frontier),
                counters=state.counters(),
                failed_urls=tuple(state.failed_urls),
            ),
            self._checkpoint_path,
        )

    def _finalize_checkpoint(
        self, seed_url: str, state: _CrawlState, interrupted: bool
    ) -> None:
        if self._checkpoint_path is None:
            return
        if interrupted:
            self._save_checkpoint(seed_url, state)
        else:
            self._checkpoint_path.unlink(missing_ok=True)

    def _stats_from(self, state: _CrawlState) -> CrawlStats:
        return CrawlStats(
            domain=state.domain,
            pages_fetched=len(state.pages),
            pages_skipped=state.pages_skipped,
            fetch_failures=state.fetch_failures,
            links_rejected=state.links_rejected,
            retries=state.retries,
            transient_recovered=state.transient_recovered,
            permanent_failures=state.permanent_failures,
            circuit_rejections=state.circuit_rejections,
            deadline_hit=state.deadline_hit,
            budget_exhausted=state.budget_exhausted,
            resumed=state.resumed,
            failed_urls=tuple(state.failed_urls),
        )

    @staticmethod
    @sanitizes("ssrf", "report")
    def _same_site(link: str, domain: str) -> str | None:
        """Re-derive the link's registrable domain *after* normalization
        and return the canonical URL only when it still matches
        ``domain``.  Returning the re-serialized parse (rather than the
        raw link text) means the crawl frontier only ever holds URLs
        whose target domain has been verified.  The return value is the
        :func:`~repro.web.url.parse_url` re-serialization, so it also
        inherits that parser's report-sink safety (no markup or format
        payloads survive the round-trip)."""
        try:
            parsed = parse_url(link)
        except InvalidURLError:
            return None
        if parsed.registered_domain != domain:
            return None
        return str(parsed)
