"""Breadth-first website crawler (crawler4j substitute).

The paper crawled each pharmacy domain "without depth limit, but for a
maximum of 200 pages" (Section 6.1).  :class:`Crawler` reproduces those
semantics over a :class:`~repro.web.host.WebHost`:

* the frontier is a FIFO queue seeded with the site root (BFS, hence
  effectively unbounded depth until the page cap);
* only links on the seed's registrable domain are enqueued;
* external links are recorded on the page objects and later harvested
  by :meth:`~repro.web.site.Website.outbound_endpoints`;
* at most ``max_pages`` pages are fetched per site.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from repro.exceptions import CrawlError
from repro.web.host import WebHost
from repro.web.page import WebPage
from repro.web.site import Website
from repro.web.url import endpoint, parse_url

logger = logging.getLogger(__name__)

__all__ = ["Crawler", "CrawlStats"]

#: The paper's per-site page cap.
DEFAULT_MAX_PAGES = 200


@dataclass(frozen=True, slots=True)
class CrawlStats:
    """Bookkeeping for one site crawl."""

    domain: str
    pages_fetched: int
    pages_skipped: int  # frontier entries dropped by the page cap
    fetch_failures: int  # URLs the host returned None for


class Crawler:
    """BFS crawler with a per-site page cap.

    Args:
        host: where to fetch pages from.
        max_pages: per-site page cap (paper: 200).
    """

    def __init__(self, host: WebHost, max_pages: int = DEFAULT_MAX_PAGES) -> None:
        if max_pages < 1:
            raise CrawlError(f"max_pages must be >= 1, got {max_pages}")
        self._host = host
        self._max_pages = max_pages
        self._last_stats: CrawlStats | None = None

    @property
    def max_pages(self) -> int:
        return self._max_pages

    @property
    def last_stats(self) -> CrawlStats | None:
        """Statistics of the most recent :meth:`crawl_site` call."""
        return self._last_stats

    def crawl_site(self, seed_url: str) -> Website:
        """Crawl one site starting from ``seed_url``.

        Args:
            seed_url: URL of the site root (or any page of the site).

        Returns:
            A :class:`Website` with the pages reachable from the seed,
            in BFS order, capped at ``max_pages``.

        Raises:
            CrawlError: when the seed URL itself cannot be fetched.
        """
        parse_url(seed_url)
        domain = endpoint(seed_url)
        seed_page = self._host.fetch(seed_url)
        if seed_page is None:
            raise CrawlError(f"seed URL not fetchable: {seed_url!r}")

        visited: set[str] = set()
        pages: list[WebPage] = []
        failures = 0
        skipped = 0
        frontier: deque[str] = deque([seed_url])
        visited.add(self._normalize(seed_url))

        while frontier:
            if len(pages) >= self._max_pages:
                skipped += len(frontier)
                break
            url = frontier.popleft()
            page = self._host.fetch(url)
            if page is None:
                failures += 1
                continue
            pages.append(page)
            for link in page.internal_links():
                key = self._normalize(link)
                if key not in visited:
                    visited.add(key)
                    frontier.append(link)

        logger.debug(
            "crawled %s: %d pages, %d skipped by cap, %d fetch failures",
            domain,
            len(pages),
            skipped,
            failures,
        )
        self._last_stats = CrawlStats(
            domain=domain,
            pages_fetched=len(pages),
            pages_skipped=skipped,
            fetch_failures=failures,
        )
        return Website(domain=domain, pages=tuple(pages))

    @staticmethod
    def _normalize(url: str) -> str:
        parsed = parse_url(url)
        path = parsed.path.rstrip("/") or "/"
        return f"{parsed.host}{path}"
