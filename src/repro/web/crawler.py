"""Breadth-first website crawler (crawler4j substitute).

The paper crawled each pharmacy domain "without depth limit, but for a
maximum of 200 pages" (Section 6.1).  :class:`Crawler` reproduces those
semantics over a :class:`~repro.web.host.WebHost`:

* the frontier is a FIFO queue seeded with the site root (BFS, hence
  effectively unbounded depth until the page cap);
* only links that *stay on the seed's registrable domain after URL
  normalization* are enqueued — a link whose normalized form hops to a
  different registrable domain is rejected, so a hostile page cannot
  redirect the crawl off-site (SSRF);
* per-page link fan-out is capped (adversarial pages can carry
  thousands of links; the cap bounds frontier growth);
* external links are recorded on the page objects and later harvested
  by :meth:`~repro.web.site.Website.outbound_endpoints`;
* at most ``max_pages`` pages are fetched per site.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from repro.devtools.sanitizers import sanitizes
from repro.exceptions import CrawlError, InvalidURLError
from repro.web.host import WebHost
from repro.web.page import WebPage
from repro.web.site import Website
from repro.web.url import endpoint, parse_url

logger = logging.getLogger(__name__)

__all__ = ["Crawler", "CrawlStats"]

#: The paper's per-site page cap.
DEFAULT_MAX_PAGES = 200

#: Links considered per fetched page; the rest are dropped.  Bounds
#: frontier growth on adversarial pages with huge link farms.
DEFAULT_MAX_LINKS_PER_PAGE = 100


@dataclass(frozen=True, slots=True)
class CrawlStats:
    """Bookkeeping for one site crawl."""

    domain: str
    pages_fetched: int
    pages_skipped: int  # frontier entries dropped by the page cap
    fetch_failures: int  # URLs the host returned None for
    links_rejected: int = 0  # links dropped by the same-site guard or fan-out cap


class Crawler:
    """BFS crawler with a per-site page cap.

    Args:
        host: where to fetch pages from.
        max_pages: per-site page cap (paper: 200).
        max_links_per_page: per-page link fan-out cap.
    """

    def __init__(
        self,
        host: WebHost,
        max_pages: int = DEFAULT_MAX_PAGES,
        max_links_per_page: int = DEFAULT_MAX_LINKS_PER_PAGE,
    ) -> None:
        if max_pages < 1:
            raise CrawlError(f"max_pages must be >= 1, got {max_pages}")
        if max_links_per_page < 1:
            raise CrawlError(
                f"max_links_per_page must be >= 1, got {max_links_per_page}"
            )
        self._host = host
        self._max_pages = max_pages
        self._max_links_per_page = max_links_per_page
        self._last_stats: CrawlStats | None = None

    @property
    def max_pages(self) -> int:
        return self._max_pages

    @property
    def max_links_per_page(self) -> int:
        """Per-page link fan-out cap."""
        return self._max_links_per_page

    @property
    def last_stats(self) -> CrawlStats | None:
        """Statistics of the most recent :meth:`crawl_site` call."""
        return self._last_stats

    def crawl_site(self, seed_url: str) -> Website:
        """Crawl one site starting from ``seed_url``.

        Args:
            seed_url: URL of the site root (or any page of the site).

        Returns:
            A :class:`Website` with the pages reachable from the seed,
            in BFS order, capped at ``max_pages``.

        Raises:
            CrawlError: when the seed URL itself cannot be fetched.
        """
        parse_url(seed_url)
        domain = endpoint(seed_url)
        seed_page = self._host.fetch(seed_url)
        if seed_page is None:
            raise CrawlError(f"seed URL not fetchable: {seed_url!r}")

        visited: set[str] = set()
        pages: list[WebPage] = []
        failures = 0
        skipped = 0
        rejected = 0
        frontier: deque[str] = deque([seed_url])
        visited.add(self._normalize(seed_url))

        while frontier:
            if len(pages) >= self._max_pages:
                skipped += len(frontier)
                break
            url = frontier.popleft()
            page = self._host.fetch(url)
            if page is None:
                failures += 1
                continue
            pages.append(page)
            considered = 0
            for link in page.internal_links():
                if considered >= self._max_links_per_page:
                    rejected += 1
                    continue
                considered += 1
                safe_url = self._same_site(link, domain)
                if safe_url is None:
                    rejected += 1
                    continue
                key = self._normalize(safe_url)
                if key not in visited:
                    visited.add(key)
                    frontier.append(safe_url)

        logger.debug(
            "crawled %s: %d pages, %d skipped by cap, %d fetch failures, "
            "%d links rejected",
            domain,
            len(pages),
            skipped,
            failures,
            rejected,
        )
        self._last_stats = CrawlStats(
            domain=domain,
            pages_fetched=len(pages),
            pages_skipped=skipped,
            fetch_failures=failures,
            links_rejected=rejected,
        )
        return Website(domain=domain, pages=tuple(pages))

    @staticmethod
    @sanitizes("ssrf")
    def _same_site(link: str, domain: str) -> str | None:
        """Re-derive the link's registrable domain *after* normalization
        and return the canonical URL only when it still matches
        ``domain``.  Returning the re-serialized parse (rather than the
        raw link text) means the crawl frontier only ever holds URLs
        whose target domain has been verified."""
        try:
            parsed = parse_url(link)
        except InvalidURLError:
            return None
        if parsed.registered_domain != domain:
            return None
        return str(parsed)

    @staticmethod
    def _normalize(url: str) -> str:
        parsed = parse_url(url)
        path = parsed.path.rstrip("/") or "/"
        return f"{parsed.host}{path}"
