"""Web substrate: URLs, pages, sites, hosts, the BFS crawler, and the
resilience layer (fault injection, retries, breakers, checkpoints)."""

from repro.web.crawler import Crawler, CrawlStats
from repro.web.host import InMemoryWebHost, WebHost
from repro.web.page import WebPage
from repro.web.resilience import (
    CircuitBreaker,
    CrawlCheckpoint,
    FaultInjectingWebHost,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SystemClock,
    VirtualClock,
)
from repro.web.site import Website
from repro.web.url import (
    ParsedURL,
    endpoint,
    normalize_url,
    parse_url,
    same_domain,
)

__all__ = [
    "Crawler",
    "CrawlStats",
    "InMemoryWebHost",
    "WebHost",
    "WebPage",
    "Website",
    "ParsedURL",
    "endpoint",
    "normalize_url",
    "parse_url",
    "same_domain",
    "CircuitBreaker",
    "CrawlCheckpoint",
    "FaultInjectingWebHost",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SystemClock",
    "VirtualClock",
]
