"""Web substrate: URLs, pages, sites, hosts, and the BFS crawler."""

from repro.web.crawler import Crawler, CrawlStats
from repro.web.host import InMemoryWebHost, WebHost
from repro.web.page import WebPage
from repro.web.site import Website
from repro.web.url import ParsedURL, endpoint, parse_url, same_domain

__all__ = [
    "Crawler",
    "CrawlStats",
    "InMemoryWebHost",
    "WebHost",
    "WebPage",
    "Website",
    "ParsedURL",
    "endpoint",
    "parse_url",
    "same_domain",
]
