"""URL parsing and second-level-domain extraction.

The paper's network analysis (Section 4.2, Algorithm 1) prunes the link
feature space by mapping every outbound URL to its *endpoint*: the
second-level domain of the link target.  For example::

    endpoint("http://www.fda.gov/forconsumers/updates/ucm149202.htm")
    -> "fda.gov"

This module implements that mapping without any network access.  It
understands a small embedded list of multi-part public suffixes
(``co.uk``-style) so that ``shop.example.co.uk`` maps to
``example.co.uk`` rather than ``co.uk``.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass

from repro.devtools.sanitizers import sanitizes
from repro.exceptions import InvalidURLError

__all__ = [
    "ParsedURL",
    "parse_url",
    "endpoint",
    "same_domain",
    "resolve_url",
    "normalize_url",
]

#: Multi-label public suffixes that need three labels for a registrable
#: domain.  This is intentionally a small curated subset; the synthetic
#: web only emits domains covered here or plain two-label domains.
_MULTI_PART_SUFFIXES = frozenset(
    {
        "co.uk",
        "org.uk",
        "ac.uk",
        "gov.uk",
        "com.au",
        "net.au",
        "org.au",
        "co.jp",
        "co.in",
        "co.nz",
        "com.br",
        "com.cn",
        "com.mx",
    }
)

_ALLOWED_SCHEMES = ("http", "https")


@dataclass(frozen=True, slots=True)
class ParsedURL:
    """A parsed absolute URL.

    Attributes:
        scheme: ``"http"`` or ``"https"``.
        host: full host name, lowercased (e.g. ``"www.fda.gov"``).
        path: path component including the leading slash (``"/"`` if
            the URL had no explicit path).
    """

    scheme: str
    host: str
    path: str

    @property
    def registered_domain(self) -> str:
        """The second-level (registrable) domain of :attr:`host`."""
        return _registered_domain(self.host)

    def __str__(self) -> str:
        return f"{self.scheme}://{self.host}{self.path}"


@sanitizes("path", "regex", "report")
@functools.lru_cache(maxsize=65536)
def parse_url(url: str) -> ParsedURL:
    """Parse an absolute ``http(s)`` URL.

    Results are memoized (bounded LRU): parsing is pure, the returned
    :class:`ParsedURL` is frozen, and link-graph construction calls this
    on the same handful of URL strings hundreds of thousands of times.
    Failed parses raise and are never cached.

    Declared a sanitizer for the ``path``/``regex``/``report`` sink
    categories: parsing rejects everything but a lowercased
    ``scheme://host/path`` shape, so the result cannot smuggle path
    separators tricks, regex metacharacter payloads, or markup into
    those sinks.  It deliberately does **not** clear ``ssrf`` — a
    well-formed URL is still an arbitrary fetch target; only the
    crawler's registrable-domain guard clears that.

    Args:
        url: the URL text.

    Returns:
        A :class:`ParsedURL`.

    Raises:
        InvalidURLError: if the URL is relative, has an unsupported
            scheme, or has an empty/invalid host.
    """
    if not isinstance(url, str) or not url.strip():
        raise InvalidURLError(f"empty or non-string URL: {url!r}")
    text = url.strip()
    if "://" not in text:
        raise InvalidURLError(f"relative or scheme-less URL: {url!r}")
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in _ALLOWED_SCHEMES:
        raise InvalidURLError(f"unsupported scheme {scheme!r} in {url!r}")
    # Strip fragment and query before splitting host/path.
    rest = rest.split("#", 1)[0].split("?", 1)[0]
    host, slash, path = rest.partition("/")
    host = host.lower().rstrip(".")
    if ":" in host:  # drop an explicit port
        host = host.split(":", 1)[0]
    if not host or any(not label for label in host.split(".")):
        raise InvalidURLError(f"invalid host in URL: {url!r}")
    if "." not in host:
        raise InvalidURLError(f"host has no dot (not a public domain): {url!r}")
    return ParsedURL(scheme=scheme, host=host, path=(slash + path) if slash else "/")


def _registered_domain(host: str) -> str:
    """Return the registrable (second-level) domain of ``host``."""
    labels = host.lower().split(".")
    if len(labels) < 2:
        raise InvalidURLError(f"host {host!r} has no registrable domain")
    two = ".".join(labels[-2:])
    if two in _MULTI_PART_SUFFIXES:
        if len(labels) < 3:
            raise InvalidURLError(f"host {host!r} is a bare public suffix")
        return ".".join(labels[-3:])
    return two


def endpoint(url: str) -> str:
    """Map a URL to its second-level domain (the paper's ``endpoint()``).

    This is the pruning step of Algorithm 1: all pages of one domain are
    assumed to share one trustiness value, so links are collapsed to the
    target's registrable domain.

    >>> endpoint("http://www.fda.gov/forconsumers/updates.htm")
    'fda.gov'
    """
    return parse_url(url).registered_domain


def normalize_url(url: str) -> str:
    """Canonical ``host/path`` key for visited-set and cache lookups.

    Scheme, port, query, and fragment are dropped by :func:`parse_url`;
    a trailing slash is insignificant.  Two URLs that normalize equal
    address the same resource for crawling purposes.

    >>> normalize_url("HTTPS://www.Shop.com/a/?q=1")
    'www.shop.com/a'

    Raises:
        InvalidURLError: when the URL does not parse.
    """
    parsed = parse_url(url)
    path = parsed.path.rstrip("/") or "/"
    return f"{parsed.host}{path}"


def same_domain(url_a: str, url_b: str) -> bool:
    """True when both URLs resolve to the same registrable domain."""
    return endpoint(url_a) == endpoint(url_b)


def resolve_url(base: str, href: str) -> str:
    """Resolve a (possibly relative) hyperlink against its page URL.

    Handles the forms real pages contain: absolute URLs (returned
    normalized), protocol-relative (``//host/path``), root-relative
    (``/path``), and path-relative (``sub/page``, ``../up``).  Query
    strings and fragments are dropped, matching :func:`parse_url`.

    >>> resolve_url("https://www.shop.com/a/b", "../c")
    'https://www.shop.com/c'
    >>> resolve_url("https://www.shop.com/a/", "//cdn.net/x")
    'https://cdn.net/x'

    Raises:
        InvalidURLError: when the base is invalid or the resolved
            result is not a usable http(s) URL.
    """
    parsed_base = parse_url(base)
    text = href.strip()
    if not text:
        raise InvalidURLError("empty href")
    if "://" in text:
        return str(parse_url(text))
    if text.startswith("//"):
        return str(parse_url(f"{parsed_base.scheme}:{text}"))
    if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", text):
        # Non-hierarchical scheme (mailto:, javascript:, tel:, ...).
        raise InvalidURLError(f"unresolvable href scheme: {href!r}")
    text = text.split("#", 1)[0].split("?", 1)[0]
    if not text:
        # Fragment-/query-only link: resolves to the page itself.
        return str(parsed_base)
    if text.startswith("/"):
        path = text
    else:
        # Path-relative: resolve against the base path's directory.
        directory = parsed_base.path.rsplit("/", 1)[0]
        path = f"{directory}/{text}"
    # Normalize "." and ".." segments.
    segments: list[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return str(
        ParsedURL(scheme=parsed_base.scheme, host=parsed_base.host, path=normalized)
    )
