"""Command-line interface for the verification system.

Subcommands:

* ``generate``  — build a synthetic labelled corpus and export it.
* ``train``     — fit a :class:`~repro.core.verifier.PharmacyVerifier`
  on an exported corpus and save the model.
* ``verify``    — classify every pharmacy in a corpus with a saved
  model; print a triage table.
* ``rank``      — rank a corpus by legitimacy; print the list with
  pairwise orderedness when labels are present.
* ``serve``     — run the verification API server over a saved model
  and corpus (tiered auth, rate limiting, admission control; see
  :mod:`repro.serve`).
* ``stream``    — replay planned snapshot deltas through the
  incremental pipeline (:mod:`repro.stream`), one tick at a time.
* ``experiments`` — delegate to the table/figure regeneration runner.

Example session::

    python -m repro.cli generate --legit 24 --illegit 176 -o corpus.jsonl
    python -m repro.cli train corpus.jsonl -o verifier.pkl
    python -m repro.cli verify verifier.pkl corpus.jsonl --top 10
    python -m repro.cli rank verifier.pkl corpus.jsonl
    python -m repro.cli serve verifier.pkl corpus.jsonl --port 8470
    python -m repro.cli generate -o shards/ --shards 4 --deltas 12
    python -m repro.cli stream shards/ --retrain-every 8
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.verifier import PharmacyVerifier
from repro.data.loaders import make_dataset
from repro.data.synthesis import GeneratorConfig
from repro.io import export_corpus, import_corpus, load_model, save_model
from repro.web.site import Website

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Internet pharmacy verification (EDBT 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate + crawl a synthetic corpus")
    gen.add_argument("--legit", type=int, default=24)
    gen.add_argument("--illegit", type=int, default=176)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "-o",
        "--output",
        required=True,
        help="corpus .jsonl path (a directory with --shards)",
    )
    gen.add_argument(
        "--shards",
        type=int,
        default=0,
        help="write the corpus as this many shard files instead of one "
        ".jsonl (output becomes a directory; 0 = single file)",
    )
    gen.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sharded generation (0 = CPU count)",
    )
    gen.add_argument(
        "--deltas",
        type=int,
        default=0,
        help="also plan this many snapshot deltas (weekly ticks) and "
        "write them as deltas.json next to the shards (requires --shards)",
    )

    train = sub.add_parser("train", help="train a verifier on a corpus")
    train.add_argument("corpus", help="corpus .jsonl path")
    train.add_argument("-o", "--output", required=True, help="model .pkl path")
    train.add_argument("--max-terms", type=int, default=1000)

    verify = sub.add_parser("verify", help="classify a corpus with a model")
    verify.add_argument("model", help="model .pkl path")
    verify.add_argument("corpus", help="corpus .jsonl path or sharded dir")
    verify.add_argument("--top", type=int, default=20, help="rows to print")

    rank = sub.add_parser("rank", help="rank a corpus by legitimacy")
    rank.add_argument("model", help="model .pkl path")
    rank.add_argument("corpus", help="corpus .jsonl path or sharded dir")
    rank.add_argument("--top", type=int, default=20, help="rows to print")

    serve = sub.add_parser("serve", help="run the verification API server")
    serve.add_argument("model", help="model .pkl path")
    serve.add_argument(
        "corpus", help="corpus .jsonl path or sharded dir (pre-crawled sites)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=8470, help="port (0 = free)")
    serve.add_argument(
        "--tier-config", default=None, help="JSON tier/key table (see docs/api.md)"
    )
    serve.add_argument(
        "--cache-dir", default=None, help="verdict cache directory (warm serving)"
    )
    serve.add_argument(
        "--jobs", type=int, default=8, help="max concurrent verifications"
    )
    serve.add_argument(
        "--max-queue", type=int, default=16, help="max requests queued for a slot"
    )
    serve.add_argument(
        "--metrics-output", default=None, help="drain-time metrics snapshot path"
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="bind, report the address, drain, and exit (smoke test)",
    )

    stream = sub.add_parser(
        "stream", help="replay snapshot deltas through the incremental pipeline"
    )
    stream.add_argument(
        "corpus", help="sharded corpus directory holding a deltas.json"
    )
    stream.add_argument(
        "--ticks", type=int, default=0, help="deltas to replay (0 = all planned)"
    )
    stream.add_argument(
        "--retrain-every",
        type=int,
        default=0,
        help="force a full retrain at least every N ticks (0 = drift-driven only)",
    )
    stream.add_argument(
        "--checkpoint-dir",
        default=None,
        help="crawl checkpoint directory (resumable re-crawls)",
    )

    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument("ids", nargs="*", default=[])
    exp.add_argument("--scale", default="small")
    return parser


def _is_sharded(path: str) -> bool:
    """True when ``path`` is a sharded-corpus directory (has a manifest)."""
    from repro.data.sharding import MANIFEST_FILENAME

    return (Path(path) / MANIFEST_FILENAME).is_file()


def _load_sites(path: str) -> tuple[Sequence[Website], list[int] | None]:
    """Sites + labels from a ``.jsonl`` corpus or a sharded directory.

    Sharded corpora come back as a lazy view (one shard in memory at a
    time); single-file corpora load as before.
    """
    if _is_sharded(path):
        from repro.data.sharding import ShardedCorpus

        corpus = ShardedCorpus(path)
        labels = [
            record.label
            for _, _, records in corpus.iter_shards()
            for record in records
        ]
        return corpus.sites_view(), labels
    corpus = import_corpus(path)
    return list(corpus.sites), [int(y) for y in corpus.labels]


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        n_legitimate=args.legit, n_illegitimate=args.illegit, seed=args.seed
    )
    if args.deltas > 0 and args.shards <= 0:
        print("--deltas requires --shards (deltas ride on a sharded corpus)")
        return 2
    if args.shards > 0:
        from repro.data.deltas import DELTAS_FILENAME, StreamConfig, plan_deltas, write_deltas
        from repro.data.sharding import write_shards

        manifest = write_shards(
            config, args.output, args.shards, jobs=args.jobs
        )
        print(
            f"wrote {manifest.n_sites} pharmacies "
            f"({manifest.n_legitimate} legit / "
            f"{manifest.n_illegitimate} illegit) "
            f"as {manifest.n_shards} shards to {args.output}"
        )
        if args.deltas > 0:
            stream_config = StreamConfig(n_ticks=args.deltas)
            deltas = plan_deltas(config, stream_config)
            deltas_path = Path(args.output) / DELTAS_FILENAME
            write_deltas(deltas_path, deltas, stream_config)
            n_changes = sum(delta.n_changes for delta in deltas)
            print(
                f"planned {len(deltas)} snapshot deltas "
                f"({n_changes} site changes) to {deltas_path}"
            )
        return 0
    corpus = make_dataset(config)
    export_corpus(corpus, args.output)
    summary = corpus.summary()
    print(
        f"wrote {summary.n_examples} pharmacies "
        f"({summary.n_legitimate} legit / {summary.n_illegitimate} illegit) "
        f"to {args.output}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = import_corpus(args.corpus)
    verifier = PharmacyVerifier(max_terms=args.max_terms).fit(corpus)
    save_model(verifier, args.output)
    print(f"trained on {len(corpus)} pharmacies; model saved to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    verifier = load_model(args.model)
    sites, _ = _load_sites(args.corpus)
    reports = verifier.verify_sites(sites)
    print(f"{'domain':40}  {'verdict':12}  {'P(legit)':>8}")
    print("-" * 66)
    for report in reports[: args.top]:
        verdict = "LEGITIMATE" if report.is_legitimate else "illegitimate"
        print(
            f"{report.domain:40}  {verdict:12}  "
            f"{report.legitimacy_probability:8.3f}"
        )
    n_legit = sum(1 for r in reports if r.is_legitimate)
    print(
        f"\n{len(reports)} pharmacies verified: "
        f"{n_legit} legitimate / {len(reports) - n_legit} illegitimate"
    )
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    verifier = load_model(args.model)
    sites, labels = _load_sites(args.corpus)
    ranking = verifier.rank_sites(sites, labels)
    print(f"{'rank score':>10}  {'oracle':8}  domain")
    print("-" * 66)
    for entry in ranking.entries[: args.top]:
        oracle = {1: "legit", 0: "illegit", None: "?"}[entry.oracle_label]
        print(f"{entry.rank_score:10.3f}  {oracle:8}  {entry.domain}")
    print(f"\npairwise orderedness: {ranking.pairord:.4f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import Authenticator, build_server

    verifier = load_model(args.model)
    if _is_sharded(args.corpus):
        # Lazy index: serve resolves each domain from its one shard.
        from repro.data.sharding import ShardedCorpus

        sites: object = ShardedCorpus(args.corpus)
        n_sites = len(sites)
    else:
        corpus = import_corpus(args.corpus)
        sites = list(corpus.sites)
        n_sites = len(corpus)
    authenticator = (
        Authenticator.from_file(args.tier_config) if args.tier_config else None
    )
    server = build_server(
        verifier,
        sites=sites,
        bind_host=args.host,
        port=args.port,
        authenticator=authenticator,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        max_queue=args.max_queue,
    )
    print(
        f"serving {n_sites} pharmacies on "
        f"http://{args.host}:{server.port} "
        f"(jobs={args.jobs}, queue={args.max_queue})"
    )
    if args.check:
        server.start_background()
        drained = server.drain()
        if args.metrics_output:
            server.metrics.flush(args.metrics_output)
        print("check ok: bound, served, drained cleanly")
        return 0 if drained else 1
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...")
        server.draining = True
    drained = server.drain()
    if args.metrics_output:
        server.metrics.flush(args.metrics_output)
    print("drained" if drained else "drain timed out")
    return 0 if drained else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.data.deltas import DELTAS_FILENAME, StreamCorpus, load_deltas
    from repro.data.sharding import ShardedCorpus
    from repro.stream import DriftDetector, StreamingVerifier

    if not _is_sharded(args.corpus):
        print(f"{args.corpus} is not a sharded corpus directory")
        return 2
    deltas, _stream_config = load_deltas(Path(args.corpus) / DELTAS_FILENAME)
    if args.ticks > 0:
        deltas = deltas[: args.ticks]
    corpus = StreamCorpus.from_sharded(ShardedCorpus(args.corpus))
    detector = DriftDetector(
        max_ticks_between_retrains=args.retrain_every or None
    )
    verifier = StreamingVerifier(
        corpus, detector=detector, checkpoint_dir=args.checkpoint_dir
    )
    verifier.bootstrap()
    print(f"bootstrapped {len(corpus)} sites at epoch {corpus.epoch}")
    retrains = 0
    for delta in deltas:
        report = verifier.apply_tick(delta)
        retrains += int(report.retrained)
        print(
            f"tick {report.epoch:3d}: {report.n_sites} sites  "
            f"+{report.n_changed} changed  -{report.n_removed} removed  "
            f"{report.n_flips} flips  {report.rank_sweeps} sweeps  "
            f"{report.seconds:.2f}s"
            + ("  [retrained]" if report.retrained else "")
        )
    n_legit = sum(1 for v in verifier.verdicts.values() if v == 1)
    print(
        f"replayed {len(deltas)} ticks ({retrains} retrains): "
        f"{n_legit} legitimate / {len(corpus) - n_legit} illegitimate"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    argv = list(args.ids) + ["--scale", args.scale]
    return runner_main(argv)


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "verify": _cmd_verify,
    "rank": _cmd_rank,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
    "experiments": _cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
