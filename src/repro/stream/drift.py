"""Drift detection: decide when incremental updates stop being enough.

Warm-started models track the data they were last fully fitted on.  As
the stream drifts — vocabulary rotations pile up, the affiliate graph
rewires — the warm model's error versus a cold refit grows.  The
detector watches two cheap proxies every tick and triggers a full
retrain when either crosses its bound:

* **Feature-distribution shift** — relative L2 distance between the
  current per-column TF-IDF means and the means at the last full
  retrain.  Vocabulary drift moves mass between columns long before
  accuracy visibly degrades.
* **Verdict-flip rate** — the fraction of *unchanged* sites whose
  verdict flipped this tick.  Unchanged sites have unchanged features
  under a frozen vocabulary, so their flips are pure model movement:
  a high rate means warm updates are reshaping the hyperplane, i.e.
  the incremental state has wandered from what a cold fit would say.

Both thresholds are plain knobs; ``max_ticks_between_retrains`` adds a
hard staleness ceiling so a slow cumulative drift that never spikes
either proxy still gets flushed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["DriftDetector", "DriftReport"]


@dataclass(frozen=True, slots=True)
class DriftReport:
    """One tick's drift measurements and the retrain decision.

    Attributes:
        epoch: the observed tick.
        feature_shift: relative L2 distance of feature means from the
            last-retrain baseline.
        flip_rate: verdict flips among unchanged sites / unchanged
            sites (0.0 when nothing persisted).
        ticks_since_retrain: ticks observed since the last baseline.
        should_retrain: whether any bound was exceeded.
        reasons: which bounds fired (``"feature_shift"``,
            ``"flip_rate"``, ``"max_interval"``).
    """

    epoch: int
    feature_shift: float
    flip_rate: float
    ticks_since_retrain: int
    should_retrain: bool
    reasons: tuple[str, ...] = ()


class DriftDetector:
    """Threshold detector over feature shift and verdict-flip rate.

    Args:
        max_feature_shift: relative feature-mean drift bound.
        max_flip_rate: unchanged-site verdict-flip-rate bound.
        max_ticks_between_retrains: hard retrain interval; ``None``
            disables the ceiling.
    """

    def __init__(
        self,
        max_feature_shift: float = 0.25,
        max_flip_rate: float = 0.05,
        max_ticks_between_retrains: int | None = None,
    ) -> None:
        if max_feature_shift <= 0.0:
            raise ValidationError(
                f"max_feature_shift must be > 0, got {max_feature_shift}"
            )
        if max_flip_rate <= 0.0:
            raise ValidationError(
                f"max_flip_rate must be > 0, got {max_flip_rate}"
            )
        if max_ticks_between_retrains is not None and (
            max_ticks_between_retrains < 1
        ):
            raise ValidationError(
                "max_ticks_between_retrains must be >= 1 or None, got "
                f"{max_ticks_between_retrains}"
            )
        self._max_shift = max_feature_shift
        self._max_flip = max_flip_rate
        self._max_interval = max_ticks_between_retrains
        self._baseline: np.ndarray | None = None
        self._baseline_norm = 0.0
        self._ticks_since = 0

    def set_baseline(self, feature_means: np.ndarray) -> None:
        """Record the feature means of a fresh full fit."""
        baseline = np.asarray(feature_means, dtype=np.float64).ravel()
        self._baseline = baseline
        self._baseline_norm = float(np.linalg.norm(baseline))
        self._ticks_since = 0

    def observe(
        self,
        epoch: int,
        feature_means: np.ndarray,
        n_flips: int,
        n_unchanged: int,
    ) -> DriftReport:
        """Measure one tick and decide whether to retrain.

        Raises:
            ValidationError: no baseline recorded yet, or a feature-
                dimension mismatch (the vocabulary changed without a
                new baseline).
        """
        if self._baseline is None:
            raise ValidationError("observe() before any set_baseline()")
        means = np.asarray(feature_means, dtype=np.float64).ravel()
        if means.shape != self._baseline.shape:
            raise ValidationError(
                f"feature dimension changed: baseline {self._baseline.shape}"
                f" vs observed {means.shape} — retrain must reset the baseline"
            )
        self._ticks_since += 1
        shift = float(np.linalg.norm(means - self._baseline))
        if self._baseline_norm > 0.0:
            shift /= self._baseline_norm
        flip_rate = n_flips / n_unchanged if n_unchanged > 0 else 0.0
        reasons = []
        if shift > self._max_shift:
            reasons.append("feature_shift")
        if flip_rate > self._max_flip:
            reasons.append("flip_rate")
        if (
            self._max_interval is not None
            and self._ticks_since >= self._max_interval
        ):
            reasons.append("max_interval")
        return DriftReport(
            epoch=epoch,
            feature_shift=shift,
            flip_rate=flip_rate,
            ticks_since_retrain=self._ticks_since,
            should_retrain=bool(reasons),
            reasons=tuple(reasons),
        )
