"""Push-based delta TrustRank/PageRank over row-blocked CSR state.

Full power iteration costs O(edges x iterations) per snapshot no
matter how small the change.  This module maintains the personalized
PageRank fixed point

    x = (1 - d) * t  +  d * (P @ x  +  t * sum(x[dangling]))

*incrementally*: the state keeps, besides ``x``, the **residual**
``res = rhs(x) - x``.  Editing a source's out-row (or the teleport
vector) with ``x`` held fixed changes the residual by an exactly
computable sparse delta — ``d * x[src] * (new_row - old_row)`` for a
row edit — so a tick touching a handful of sites perturbs ``res`` in
O(changed edges).  :meth:`DeltaRankState.push` then restores the fixed
point by residual propagation::

    x   +=  res
    res  =  d * (P @ res + t * sum(res[dangling]))

whose L1 norm contracts by ``d`` per sweep, giving
``|x - x*|_1 <= |res|_1 / (1 - d)`` — solve to ``1e-12`` and the
result agrees with a fresh :func:`repro.network.pagerank.
personalized_pagerank` run to 1e-9 (pinned by ``tests/stream``).

The propagation matrix lives in row blocks mirroring
:mod:`repro.network.blockrank`: sources are partitioned by
:func:`~repro.network.blockrank._block_offsets`, each block holding a
CSR of its sources' normalized out-rows (``block[src_local, dst]``).
Row edits only mark the owning block dirty; blocks rebuild lazily at
the next push, and sweeps touching few sources slice just the active
rows of the affected blocks.

Node lifecycle matches :func:`repro.network.construction.
build_pharmacy_graph` semantics: a node exists while it is a live
pharmacy *or* some live site still links to it (a taken-down affiliate
hub stays a dangling endpoint node until the last member rewires away);
a node nobody references is tombstoned — its teleport mass and row are
gone, so pushing drains its score to zero and it drops out of
:meth:`DeltaRankState.scores`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, ValidationError
from repro.network.blockrank import _block_offsets

__all__ = ["DeltaRankState"]

#: Rebuild threshold: when more than this fraction of a block's sources
#: carry residual, a full block matvec beats slicing the active rows.
_ACTIVE_ROW_FRACTION = 0.25

_INITIAL_CAPACITY = 256


class DeltaRankState:
    """Incrementally maintained personalized PageRank scores.

    Args:
        damping: probability of following a link (α).
        n_blocks: source-row blocks for the propagation matrix.
        tolerance: default residual L1 target of :meth:`push`.
        max_sweeps: hard cap on push sweeps (the residual contracts by
            ``damping`` per sweep, so ``log(tol)/log(damping)`` sweeps
            suffice from any state; the cap only guards against NaNs).
    """

    def __init__(
        self,
        damping: float = 0.85,
        n_blocks: int = 8,
        tolerance: float = 1e-12,
        max_sweeps: int = 2000,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValidationError(f"damping must be in (0, 1), got {damping}")
        if n_blocks < 1:
            raise ValidationError(f"n_blocks must be >= 1, got {n_blocks}")
        if tolerance <= 0.0:
            raise ValidationError(f"tolerance must be > 0, got {tolerance}")
        self._damping = damping
        self._n_blocks = n_blocks
        self._tolerance = tolerance
        self._max_sweeps = max_sweeps
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        cap = _INITIAL_CAPACITY
        self._x = np.zeros(cap)
        self._res = np.zeros(cap)
        self._t = np.zeros(cap)
        self._dangling = np.zeros(cap, dtype=bool)
        self._ref = np.zeros(cap, dtype=np.int64)
        self._live_pharm = np.zeros(cap, dtype=bool)
        # rows[src_id] = (dst ids, normalized probabilities)
        self._rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._offsets = _block_offsets(cap, n_blocks)
        self._blocks: list[sp.csr_matrix | None] = [None] * (
            len(self._offsets) - 1
        )
        self._dirty: set[int] = set(range(len(self._blocks)))

    # -- node bookkeeping ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Allocated node slots (live + tombstoned)."""
        return len(self._names)

    def __contains__(self, node: str) -> bool:
        i = self._index.get(node)
        return i is not None and bool(self._alive(i))

    def _alive(self, i: int) -> bool:
        return bool(self._live_pharm[i]) or self._ref[i] > 0

    def _ensure_capacity(self, n: int) -> None:
        cap = self._x.size
        if n <= cap:
            return
        while cap < n:
            cap *= 2
        for name in ("_x", "_res", "_t"):
            old = getattr(self, name)
            grown = np.zeros(cap)
            grown[: old.size] = old
            setattr(self, name, grown)
        for name, dtype in (
            ("_dangling", bool),
            ("_ref", np.int64),
            ("_live_pharm", bool),
        ):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=dtype)
            grown[: old.size] = old
            setattr(self, name, grown)
        self._offsets = _block_offsets(cap, self._n_blocks)
        self._blocks = [None] * (len(self._offsets) - 1)
        self._dirty = set(range(len(self._blocks)))

    def _node_id(self, node: str) -> int:
        i = self._index.get(node)
        if i is None:
            i = len(self._names)
            self._ensure_capacity(i + 1)
            self._index[node] = i
            self._names.append(node)
        return i

    def _block_of(self, i: int) -> int:
        # Balanced offsets over a fixed capacity: binary search is the
        # general form (blocks differ by at most one row).
        return int(np.searchsorted(self._offsets, i, side="right") - 1)

    def _set_dangling(self, i: int, value: bool) -> None:
        """Flip a node's dangling flag, keeping the residual exact.

        A dangling column of the propagation matrix is ``t`` (mass
        redistributes by teleport), so the flip moves
        ``d * x[i] * t`` in or out of the residual.
        """
        if bool(self._dangling[i]) == value:
            return
        sign = 1.0 if value else -1.0
        xi = self._x[i]
        if xi != 0.0:  # repro-lint: disable=R006
            n = len(self._names)
            self._res[:n] += self._damping * sign * xi * self._t[:n]
        self._dangling[i] = value

    def _refresh_node_state(self, i: int) -> None:
        """Re-derive dangling from (alive, has-row) after a change."""
        alive = self._alive(i)
        self._set_dangling(i, alive and i not in self._rows)

    def _adjust_refs(self, dst_ids: np.ndarray, delta: int) -> None:
        for i in dst_ids:
            i = int(i)
            self._ref[i] += delta
            self._refresh_node_state(i)

    # -- graph edits (each keeps ``res = rhs(x) - x`` exact) ---------------

    def set_row(self, src: str, weights: Mapping[str, float]) -> None:
        """Install or replace a live pharmacy's out-links.

        ``weights`` are raw link weights (normalized here); an empty
        mapping makes the source dangling.  The residual absorbs
        ``d * x[src] * (new_row - old_row)`` so the fixed-point error
        stays confined to the edit.

        Raises:
            ValidationError: negative or non-finite weights.
        """
        s = self._node_id(src)
        self._live_pharm[s] = True
        d = self._damping
        xs = self._x[s]
        old = self._rows.pop(s, None)
        if old is not None:
            old_ids, old_probs = old
            if xs != 0.0:  # repro-lint: disable=R006
                self._res[old_ids] -= d * xs * old_probs
            self._adjust_refs(old_ids, -1)
            self._dirty.add(self._block_of(s))
        if weights:
            targets = list(weights)
            values = np.fromiter(
                (weights[node] for node in targets), dtype=np.float64
            )
            if not bool(np.all(np.isfinite(values))) or bool(
                np.any(values < 0.0)
            ):
                raise ValidationError(
                    f"row weights must be finite and >= 0, got {weights}"
                )
            total = values.sum()
            if total > 0.0:
                ids = np.fromiter(
                    (self._node_id(node) for node in targets), dtype=np.int64
                )
                probs = values / total
                self._rows[s] = (ids, probs)
                if xs != 0.0:  # repro-lint: disable=R006
                    self._res[ids] += d * xs * probs
                self._adjust_refs(ids, +1)
                self._dirty.add(self._block_of(s))
        self._refresh_node_state(s)

    def remove_source(self, src: str) -> None:
        """Take down a pharmacy: drop its row and live flag.

        The node stays (dangling) while other live sites still link to
        it; once unreferenced it is tombstoned and its score drains to
        zero on the next pushes.

        Raises:
            ValidationError: unknown source.
        """
        s = self._index.get(src)
        if s is None or not self._live_pharm[s]:
            raise ValidationError(f"not a live ranked source: {src}")
        d = self._damping
        xs = self._x[s]
        old = self._rows.pop(s, None)
        if old is not None:
            old_ids, old_probs = old
            if xs != 0.0:  # repro-lint: disable=R006
                self._res[old_ids] -= d * xs * old_probs
            self._adjust_refs(old_ids, -1)
            self._dirty.add(self._block_of(s))
        self._live_pharm[s] = False
        self._refresh_node_state(s)
        if not self._alive(s):
            # Tombstone: no teleport mass, no inbound edges; the exact
            # residual for the reduced system is -x so pushes zero it.
            n = len(self._names)
            if self._t[s] != 0.0:  # repro-lint: disable=R006
                self.set_teleport(self._teleport_map_without(src))
            self._res[s] = -self._x[s]

    def _teleport_map_without(self, node: str) -> dict[str, float]:
        n = len(self._names)
        return {
            self._names[i]: float(self._t[i])
            for i in range(n)
            if self._t[i] > 0.0 and self._names[i] != node
        }

    def set_teleport(self, teleport: Mapping[str, float]) -> None:
        """Replace the teleport distribution (normalized here).

        With ``x`` fixed, both the bias term ``(1-d) t`` and the
        dangling redistribution ``d * t * sum(x[dangling])`` are linear
        in ``t``, so the residual shifts by an O(n) vector update.

        Raises:
            ValidationError: empty or non-positive teleport, or mass on
                nodes this state has never seen.
        """
        total = 0.0
        for node, mass in teleport.items():
            if mass < 0.0:
                raise ValidationError(
                    f"teleport mass must be >= 0, got {mass} for {node!r}"
                )
            total += mass
        if total <= 0.0:
            raise ValidationError("teleport distribution has no mass")
        n = len(self._names)
        new_t = np.zeros(self._x.size)
        for node, mass in teleport.items():
            if mass <= 0.0:
                continue
            i = self._index.get(node)
            if i is None:
                raise ValidationError(f"teleport on unknown node: {node}")
            new_t[i] = mass / total
        d = self._damping
        delta = new_t[:n] - self._t[:n]
        dangling_mass = float(self._x[:n][self._dangling[:n]].sum())
        self._res[:n] += (1.0 - d + d * dangling_mass) * delta
        self._t = new_t

    def set_trust_seeds(self, seeds: Iterable[str]) -> None:
        """TrustRank teleport: uniform over the trusted seed nodes."""
        seed_list = [node for node in seeds if node in self._index]
        if not seed_list:
            raise GraphError("trusted seed has no overlap with the graph")
        self.set_teleport({node: 1.0 for node in seed_list})

    def refresh_uniform_teleport(self) -> None:
        """Plain-PageRank teleport: uniform over the live nodes.

        Call after each tick's edits in uniform mode — the live-node
        count changes with births and tombstones.
        """
        n = len(self._names)
        live = {
            self._names[i]: 1.0 for i in range(n) if self._alive(i)
        }
        if not live:
            raise GraphError("no live nodes to rank")
        self.set_teleport(live)

    # -- block-CSR propagation ---------------------------------------------

    def _rebuild_block(self, b: int) -> sp.csr_matrix:
        lo, hi = self._offsets[b], self._offsets[b + 1]
        cap = self._x.size
        indptr = np.zeros(hi - lo + 1, dtype=np.int64)
        id_parts: list[np.ndarray] = []
        prob_parts: list[np.ndarray] = []
        rows = self._rows
        for s in range(lo, hi):
            row = rows.get(s)
            if row is None:
                indptr[s - lo + 1] = indptr[s - lo]
                continue
            ids, probs = row
            indptr[s - lo + 1] = indptr[s - lo] + ids.size
            id_parts.append(ids)
            prob_parts.append(probs)
        if id_parts:
            indices = np.concatenate(id_parts)
            data = np.concatenate(prob_parts)
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        block = sp.csr_matrix((data, indices, indptr), shape=(hi - lo, cap))
        self._blocks[b] = block
        self._dirty.discard(b)
        return block

    def _propagate(self, res: np.ndarray) -> np.ndarray:
        """``P @ res`` over the row blocks (active sources only)."""
        out = np.zeros(res.size)
        for b in range(len(self._blocks)):
            lo, hi = self._offsets[b], self._offsets[b + 1]
            local = res[lo:hi]
            active = np.flatnonzero(local)
            if active.size == 0:
                continue
            block = self._blocks[b]
            if block is None or b in self._dirty:
                block = self._rebuild_block(b)
            if active.size <= _ACTIVE_ROW_FRACTION * (hi - lo):
                out += block[active].T @ local[active]
            else:
                out += block.T @ local
        return out

    # -- solving ------------------------------------------------------------

    def push(self, tolerance: float | None = None) -> int:
        """Propagate residuals until the fixed point is restored.

        Returns the number of sweeps performed.  Each sweep moves the
        whole residual into ``x`` and replaces it with ``d * M @ res``,
        contracting its L1 norm by the damping factor, so the final
        score error is below ``tolerance / (1 - damping)``.

        Raises:
            GraphError: residual failed to contract within the sweep
                cap (only possible with non-finite state).
        """
        tol = self._tolerance if tolerance is None else tolerance
        if tol <= 0.0:
            raise ValidationError(f"tolerance must be > 0, got {tol}")
        n = len(self._names)
        if n == 0:
            return 0
        d = self._damping
        x = self._x
        res = self._res
        t = self._t
        dangling = self._dangling
        sweeps = 0
        while float(np.abs(res[:n]).sum()) >= tol:
            if sweeps >= self._max_sweeps:
                raise GraphError(
                    f"residual push failed to converge in {sweeps} sweeps"
                )
            sweeps += 1
            x[:n] += res[:n]
            spread = self._propagate(res)
            dangling_mass = float(res[:n][dangling[:n]].sum())
            if dangling_mass != 0.0:  # repro-lint: disable=R006
                spread[:n] += dangling_mass * t[:n]
            new_res = d * spread
            res[:] = 0.0
            res[:n] = new_res[:n]
        return sweeps

    # -- score views --------------------------------------------------------

    def score_of(self, node: str) -> float:
        """Current score of ``node`` (0.0 for unknown or tombstoned)."""
        i = self._index.get(node)
        if i is None or not self._alive(i):
            return 0.0
        return float(self._x[i])

    def scores(self) -> dict[str, float]:
        """node -> score for every live node."""
        return {
            self._names[i]: float(self._x[i])
            for i in range(len(self._names))
            if self._alive(i)
        }

    def residual_norm(self) -> float:
        """Current L1 residual (distance bound: ``/(1 - damping)``)."""
        n = len(self._names)
        return float(np.abs(self._res[:n]).sum())
