"""Delta-aware crawling: re-crawl only the domains a delta touched.

The batch pipeline crawls every site of every snapshot.  The stream
keeps one crawled :class:`~repro.web.site.Website` per live domain and,
per tick, re-crawls exactly the delta's ``changed`` set (births +
drifts + rewires) while dropping the removed ones — per-tick crawl cost
is O(changed sites), not O(corpus).

Checkpoint reuse (PR 3): each domain's crawl runs with a per-domain
``checkpoint_path`` under ``checkpoint_dir``, so a tick interrupted
mid-crawl resumes from the page it stopped at instead of refetching the
domain.  Completed crawls clear their checkpoint themselves
(:meth:`repro.web.crawler.Crawler.crawl_site`); a *changed* domain's
leftover checkpoint is explicitly discarded first, because state
recorded against the previous revision's pages must not seed the new
revision's crawl.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.data.deltas import AppliedDelta, StreamCorpus
from repro.exceptions import MissingKeyError
from repro.web.crawler import Crawler
from repro.web.site import Website

__all__ = ["DeltaCrawlStore"]


class DeltaCrawlStore:
    """Crawled sites of a :class:`StreamCorpus`, maintained per delta.

    Args:
        corpus: the evolving corpus; doubles as the
            :class:`~repro.web.host.WebHost` the crawler fetches from,
            so every crawl sees the state of the last applied epoch.
        checkpoint_dir: directory for per-domain crawl checkpoints;
            ``None`` disables checkpointing.
        max_pages: per-site page cap (default mirrors the crawler's).
    """

    def __init__(
        self,
        corpus: StreamCorpus,
        checkpoint_dir: str | Path | None = None,
        max_pages: int | None = None,
    ) -> None:
        self._corpus = corpus
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self._checkpoint_dir is not None:
            self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._max_pages = max_pages
        self._sites: dict[str, Website] = {}
        self._pages_fetched = 0

    @property
    def n_sites(self) -> int:
        """Number of crawled sites currently held."""
        return len(self._sites)

    @property
    def pages_fetched(self) -> int:
        """Total pages fetched across all crawls (cost accounting)."""
        return self._pages_fetched

    def _checkpoint_path(self, domain: str) -> Path | None:
        if self._checkpoint_dir is None:
            return None
        return self._checkpoint_dir / f"{domain}.checkpoint.json"

    def _crawl(self, domain: str) -> Website:
        kwargs = {}
        if self._max_pages is not None:
            kwargs["max_pages"] = self._max_pages
        crawler = Crawler(
            self._corpus,
            checkpoint_path=self._checkpoint_path(domain),
            **kwargs,
        )
        site = crawler.crawl_site(self._corpus.seed_url(domain))
        self._pages_fetched += crawler.last_stats.pages_fetched
        return site

    def bootstrap(self) -> tuple[str, ...]:
        """Crawl every live domain of the current corpus state."""
        crawled = []
        for domain in self._corpus.domains():
            self._sites[domain] = self._crawl(domain)
            crawled.append(domain)
        return tuple(crawled)

    def apply(self, applied: AppliedDelta) -> tuple[str, ...]:
        """Advance the store past one applied delta.

        Removed domains are dropped (and their stale checkpoints
        discarded); changed domains are re-crawled against the new
        corpus state.  Returns the re-crawled domains.
        """
        for domain in applied.removed:
            self._sites.pop(domain, None)
            self._discard_checkpoint(domain)
        for domain in applied.drifted + applied.rewired:
            # The previous revision's in-flight state must not seed the
            # new revision's crawl.
            self._discard_checkpoint(domain)
        for domain in applied.changed:
            self._sites[domain] = self._crawl(domain)
        return applied.changed

    def _discard_checkpoint(self, domain: str) -> None:
        path = self._checkpoint_path(domain)
        if path is not None:
            path.unlink(missing_ok=True)

    def site(self, domain: str) -> Website:
        """The crawled site of ``domain``.

        Raises:
            MissingKeyError: domain was never crawled (or was removed).
        """
        site = self._sites.get(domain)
        if site is None:
            raise MissingKeyError(domain)
        return site

    def sites(self, order: Iterable[str] | None = None) -> list[Website]:
        """Crawled sites, in ``order`` (default: corpus domain order)."""
        domains: Sequence[str] = (
            tuple(order) if order is not None else self._corpus.domains()
        )
        return [self.site(domain) for domain in domains]
