"""Incremental feature state: TF-IDF document frequencies and NGG class graphs.

Both maintainers follow the same contract: per-site ``add`` /
``remove`` / ``replace`` operations cost O(site), and the finalized
artifact matches a from-scratch fit of the *current* membership —
bit-equal for document frequencies (integer counts), within float
reassociation error (``1e-9``) for the running-mean class graphs.
``tests/stream/test_incremental_features.py`` pins both equivalences
against random delta sequences.

* :class:`IncrementalDocumentFrequencies` keeps the per-term document
  counts plus each member's token *set*, so removing a site subtracts
  exactly what it once added.  ``fit_vectorizer`` hands the counts to
  :meth:`repro.text.term_vector.TfidfVectorizer.fit_document_frequencies`
  — the same finalization the batch ``fit`` delegates to — so the
  vocabulary and IDF vector are bit-identical to a cold refit.

* :class:`IncrementalClassGraphs` keeps, per class, sorted packed edge
  keys with running weight *sums* and per-edge contributor counts; the
  class graph is the **exact mean** over members (absent edges count
  as zero): ``weight(e) = sum_members w(e) / n_members``.  The batch
  :meth:`NGramGraph.merged <repro.text.ngram_graph.NGramGraph.merged>`
  JInsect rule only *approximates* this mean and depends on merge
  order, so it admits no exact add/subtract form — the stream pins the
  mean itself, with :func:`mean_class_graphs` as the independent
  from-scratch computation of the same statistic.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import MissingKeyError, ValidationError
from repro.text.ngram_graph import ClassGraphModel, NGramGraph
from repro.text.term_vector import TfidfVectorizer

__all__ = [
    "IncrementalDocumentFrequencies",
    "IncrementalClassGraphs",
    "mean_class_graphs",
]


def mean_class_graphs(
    graphs: "Iterable[NGramGraph]",
    labels: Iterable[int],
    *,
    n: int = 4,
    window: int = 4,
) -> dict[int, NGramGraph]:
    """Exact per-class mean graphs, computed from scratch.

    The independent oracle for :class:`IncrementalClassGraphs`: all
    member edges of a class are concatenated and reduced with one
    ``unique``/``bincount`` pass (a different summation order than the
    incremental add/subtract path — agreement within float
    reassociation error is exactly what the property tests pin).
    """
    reference = NGramGraph(n=n, window=window)
    interner = reference._interner
    per_class: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    for graph, label in zip(graphs, labels):
        per_class.setdefault(int(label), []).append(graph._aligned(interner))
    result: dict[int, NGramGraph] = {}
    for label, members in sorted(per_class.items()):
        keys = np.concatenate([entry[0] for entry in members])
        weights = np.concatenate([entry[1] for entry in members])
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=weights, minlength=uniq.size)
        result[label] = NGramGraph.from_edge_arrays(
            uniq,
            sums / len(members),
            n=n,
            window=window,
            interner=interner,
        )
    return result


class IncrementalDocumentFrequencies:
    """Exact document-frequency counts under site add/remove/replace."""

    __slots__ = ("_df", "_members")

    def __init__(self) -> None:
        self._df: Counter[str] = Counter()
        self._members: dict[str, frozenset[str]] = {}

    @property
    def n_docs(self) -> int:
        """Number of member documents."""
        return len(self._members)

    def __contains__(self, domain: str) -> bool:
        return domain in self._members

    def add(self, domain: str, tokens: Iterable[str]) -> None:
        """Count ``domain``'s distinct tokens into the frequencies.

        Raises:
            ValidationError: ``domain`` is already a member.
        """
        if domain in self._members:
            raise ValidationError(f"domain already counted: {domain}")
        terms = frozenset(tokens)
        self._members[domain] = terms
        self._df.update(terms)

    def remove(self, domain: str) -> None:
        """Subtract ``domain``'s contribution.

        Raises:
            MissingKeyError: ``domain`` is not a member.
        """
        terms = self._members.pop(domain, None)
        if terms is None:
            raise MissingKeyError(domain)
        df = self._df
        for term in terms:
            remaining = df[term] - 1
            if remaining:
                df[term] = remaining
            else:
                # Drop zero entries so the Counter stays bit-equal to a
                # fresh count of the current membership.
                del df[term]

    def replace(self, domain: str, tokens: Iterable[str]) -> None:
        """Swap ``domain``'s tokens for its current revision's."""
        self.remove(domain)
        self.add(domain, tokens)

    def document_frequencies(self) -> Counter[str]:
        """A copy of the current term -> document-count table."""
        return Counter(self._df)

    def fit_vectorizer(
        self, *, min_df: int = 1, max_features: int | None = None
    ) -> TfidfVectorizer:
        """Finalize a vectorizer from the maintained counts.

        Bit-identical to ``TfidfVectorizer(...).fit(current docs)`` —
        both paths finalize through ``fit_document_frequencies``.

        Raises:
            ValidationError: no member documents.
        """
        if not self._members:
            raise ValidationError("cannot fit a vectorizer with no documents")
        vectorizer = TfidfVectorizer(min_df=min_df, max_features=max_features)
        return vectorizer.fit_document_frequencies(
            Counter(self._df), len(self._members)
        )


class _ClassState:
    """Running edge sums of one class graph."""

    __slots__ = ("keys", "sums", "counts", "n_members")

    def __init__(self) -> None:
        self.keys = np.empty(0, dtype=np.int64)
        self.sums = np.empty(0, dtype=np.float64)
        self.counts = np.empty(0, dtype=np.int64)
        self.n_members = 0

    def merge(self, keys: np.ndarray, weights: np.ndarray, sign: int) -> None:
        """Add (+1) or subtract (-1) one member graph's edges.

        Both key arrays are sorted, so the add path is a searchsorted
        merge — O(n + k log n), never re-sorting or hashing the class
        state the way ``np.union1d`` would.
        """
        if sign > 0:
            pos = np.searchsorted(self.keys, keys)
            in_range = pos < self.keys.size
            matched = np.zeros(keys.size, dtype=bool)
            matched[in_range] = self.keys[pos[in_range]] == keys[in_range]
            hit = pos[matched]
            self.sums[hit] += weights[matched]
            self.counts[hit] += 1
            fresh = ~matched
            if bool(np.any(fresh)):
                insert_at = pos[fresh]
                self.keys = np.insert(self.keys, insert_at, keys[fresh])
                self.sums = np.insert(self.sums, insert_at, weights[fresh])
                self.counts = np.insert(self.counts, insert_at, 1)
            self.n_members += 1
            return
        pos = np.searchsorted(self.keys, keys)
        if pos.size and (
            bool(np.any(pos >= self.keys.size))
            or bool(np.any(self.keys[pos] != keys))
        ):
            raise ValidationError(
                "cannot subtract edges that were never contributed"
            )
        self.sums[pos] -= weights
        self.counts[pos] -= 1
        keep = self.counts > 0
        if not bool(np.all(keep)):
            self.keys = self.keys[keep]
            self.sums = self.sums[keep]
            self.counts = self.counts[keep]
        self.n_members -= 1


class IncrementalClassGraphs:
    """Per-class mean graphs under site add/remove/replace.

    The class graph of label ``c`` is the exact mean of its member
    document graphs — edge weight ``sum(w_doc) / n_members`` over the
    edges at least one member carries (absent members contribute 0).
    Two deliberate departures from the batch
    :class:`~repro.text.ngram_graph.ClassGraphModel` fit: no
    half-training-set subsample (every member must stay individually
    subtractable on takedown), and the exact mean instead of the
    order-dependent JInsect running blend of
    :meth:`NGramGraph.merged <repro.text.ngram_graph.NGramGraph.merged>`
    — only the mean admits an exact add/subtract update.
    :func:`mean_class_graphs` recomputes the same statistic from
    scratch and is the oracle the equivalence tests compare against.

    All member graphs are aligned into one shared interner, so packed
    edge keys stay comparable across revisions.
    """

    __slots__ = ("_n", "_window", "_interner", "_classes", "_members")

    def __init__(self, n: int = 4, window: int = 4) -> None:
        reference = NGramGraph(n=n, window=window)
        self._n = n
        self._window = window
        # Adopt the shared process-wide interner (whatever the default
        # graph bound to), so graphs built elsewhere align for free.
        self._interner = reference._interner
        self._classes: dict[int, _ClassState] = {}
        # domain -> (label, aligned keys, weights) for exact subtraction
        self._members: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}

    @property
    def n_members(self) -> int:
        """Total member documents across classes."""
        return len(self._members)

    def __contains__(self, domain: str) -> bool:
        return domain in self._members

    def members_of(self, label: int) -> int:
        """Member count of one class (0 for unknown labels)."""
        state = self._classes.get(label)
        return state.n_members if state is not None else 0

    def build_document_graph(self, text: str) -> NGramGraph:
        """One document graph with this maintainer's (n, window)."""
        return NGramGraph.from_text(text, n=self._n, window=self._window)

    def add(self, domain: str, label: int, graph: NGramGraph) -> None:
        """Fold one member document graph into its class.

        Raises:
            ValidationError: ``domain`` is already a member.
        """
        if domain in self._members:
            raise ValidationError(f"domain already in class graphs: {domain}")
        keys, weights = graph._aligned(self._interner)
        self._members[domain] = (int(label), keys, weights)
        state = self._classes.get(int(label))
        if state is None:
            state = self._classes[int(label)] = _ClassState()
        state.merge(keys, weights, +1)

    def remove(self, domain: str) -> None:
        """Subtract one member's contribution from its class.

        Raises:
            MissingKeyError: ``domain`` is not a member.
        """
        entry = self._members.pop(domain, None)
        if entry is None:
            raise MissingKeyError(domain)
        label, keys, weights = entry
        state = self._classes[label]
        state.merge(keys, weights, -1)
        if state.n_members == 0:
            del self._classes[label]

    def replace(self, domain: str, label: int, graph: NGramGraph) -> None:
        """Swap a member's document graph for its current revision's."""
        self.remove(domain)
        self.add(domain, label, graph)

    def class_graph(self, label: int) -> NGramGraph:
        """The current mean graph of one class.

        Raises:
            MissingKeyError: no members with ``label``.
        """
        state = self._classes.get(label)
        if state is None:
            raise MissingKeyError(str(label))
        return NGramGraph.from_edge_arrays(
            state.keys,
            state.sums / state.n_members,
            n=self._n,
            window=self._window,
            interner=self._interner,
        )

    def class_graphs(self) -> dict[int, NGramGraph]:
        """label -> current mean graph, for every populated class."""
        # _classes is mutated in place by add/remove, so the sort
        # cannot be hoisted to __init__.
        return {label: self.class_graph(label) for label in sorted(self._classes)}  # repro-hot: disable=P006

    def model(self) -> ClassGraphModel:
        """A transform-capable model over the current class graphs.

        Raises:
            ValidationError: no members at all.
        """
        return ClassGraphModel.with_class_graphs(
            self.class_graphs(), n=self._n, window=self._window
        )

    def labels(self) -> Mapping[str, int]:
        """domain -> label for every member."""
        return {domain: entry[0] for domain, entry in self._members.items()}
