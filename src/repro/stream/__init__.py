"""Streaming & incremental verification (ROADMAP item 1).

The batch pipeline recomputes everything from scratch per snapshot;
this package makes per-tick cost scale with the size of the *change*:

* :mod:`repro.stream.crawl` — re-crawl only the domains a delta
  touched, resuming interrupted crawls from their checkpoints.
* :mod:`repro.stream.features` — exact incremental TF-IDF document
  frequencies and NGG class-graph edge sums (add/subtract a site's
  contribution instead of refitting).
* :mod:`repro.stream.rank` — push-based delta TrustRank: residuals
  from edited edges propagate over row-blocked CSR state instead of
  re-running full power iteration.
* :mod:`repro.stream.drift` — feature-shift and verdict-flip-rate
  detection deciding when a full retrain is due.
* :mod:`repro.stream.pipeline` — :class:`StreamingVerifier`, wiring
  the above into bootstrap / apply_tick / full_retrain, with
  :meth:`~repro.stream.pipeline.StreamingVerifier.full_recompute` as
  the from-scratch oracle the equivalence tests and the
  ``benchmarks/stream`` harness compare against.

Snapshot deltas themselves are planned and applied by
:mod:`repro.data.deltas` (data layer); this package consumes them.
"""

from repro.stream.crawl import DeltaCrawlStore
from repro.stream.drift import DriftDetector, DriftReport
from repro.stream.features import (
    IncrementalClassGraphs,
    IncrementalDocumentFrequencies,
)
from repro.stream.pipeline import FullPipelineState, StreamingVerifier, TickReport
from repro.stream.rank import DeltaRankState

__all__ = [
    "DeltaCrawlStore",
    "DeltaRankState",
    "DriftDetector",
    "DriftReport",
    "FullPipelineState",
    "IncrementalClassGraphs",
    "IncrementalDocumentFrequencies",
    "StreamingVerifier",
    "TickReport",
]
