"""The incremental verification pipeline: one tick at a time.

:class:`StreamingVerifier` wires the stream layers together.
``bootstrap`` runs the cold path once — crawl everything, fit the
vocabulary, train the SVM for its full epoch budget, solve TrustRank
from scratch.  ``apply_tick`` then advances the whole stack by one
:class:`~repro.data.deltas.SnapshotDelta` with per-stage cost
proportional to the *change*, not the corpus:

=====================  ==============================================
stage                  per-tick cost
=====================  ==============================================
crawl                  changed domains only (checkpointed resume)
summaries / TF sets    changed domains only
document frequencies   exact add/subtract (bit-equal to a refit)
NGG class graphs       exact add/subtract of edge sums (1e-9)
TF-IDF features        transform changed docs; others' rows reused
SVM                    ``warm_epochs`` warm-started Pegasos passes
TrustRank              residual push from edited edges (1e-9)
=====================  ==============================================

The frozen-vocabulary warm model accumulates error as the stream
drifts; a :class:`~repro.stream.drift.DriftDetector` watches feature
shift and verdict-flip rate and, when a bound trips, ``full_retrain``
refits vocabulary + SVM cold from the maintained exact state —
bit-identical to what :meth:`full_recompute` (the from-scratch oracle
used by ``benchmarks/stream``) produces, so verdict staleness returns
to exactly zero at every retrain tick.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.data.deltas import SnapshotDelta, StreamCorpus
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.svm import LinearSVC
from repro.network.construction import build_pharmacy_graph
from repro.network.trustrank import trustrank
from repro.perf.cache import FeatureCache, content_fingerprint
from repro.stream.crawl import DeltaCrawlStore
from repro.stream.drift import DriftDetector, DriftReport
from repro.stream.features import (
    IncrementalClassGraphs,
    IncrementalDocumentFrequencies,
    mean_class_graphs,
)
from repro.stream.rank import DeltaRankState
from repro.text.ngram_graph import NGramGraph
from repro.text.summarization import Summarizer
from repro.text.term_vector import TfidfVectorizer

__all__ = ["StreamingVerifier", "TickReport", "FullPipelineState"]

#: Trusted-seed label (mirrors ``repro.data.corpus.LEGITIMATE`` without
#: importing the core layer into the stream).
_LEGITIMATE = 1


@dataclass(frozen=True, slots=True)
class TickReport:
    """What one ``apply_tick`` did and measured.

    Attributes:
        epoch: the applied delta's epoch.
        n_sites: live sites after the tick.
        n_changed: re-crawled domains (births + drifts + rewires).
        n_removed: taken-down domains.
        n_flips: verdict flips among unchanged persisting sites.
        retrained: whether the drift detector triggered a full retrain.
        drift: the detector's measurements for this tick.
        seconds: wall-clock cost of the tick.
        rank_sweeps: residual-push sweeps TrustRank needed.
    """

    epoch: int
    n_sites: int
    n_changed: int
    n_removed: int
    n_flips: int
    retrained: bool
    drift: DriftReport | None
    seconds: float
    rank_sweeps: int


@dataclass(frozen=True)
class FullPipelineState:
    """A from-scratch pipeline run over one corpus state (the oracle)."""

    domains: tuple[str, ...]
    verdicts: dict[str, int]
    vocabulary_terms: tuple[str, ...]
    idf: np.ndarray
    features: sp.csr_matrix
    svm_weights: np.ndarray
    svm_bias: float
    trust_scores: dict[str, float]
    class_graphs: dict[int, NGramGraph] = field(default_factory=dict)


class StreamingVerifier:
    """Incrementally maintained pharmacy verification over a stream.

    Args:
        corpus: the evolving corpus (epoch 0 = base snapshot).
        min_df: vectorizer document-frequency floor.
        damping: TrustRank damping factor.
        lam / n_epochs / batch_size / seed: the SVM configuration used
            by cold fits (``bootstrap`` and full retrains).
        warm_epochs: Pegasos passes per warm tick update.
        detector: drift detector; ``None`` installs the defaults.
        cache: optional :class:`~repro.perf.cache.FeatureCache`; the
            per-tick delta feature matrices are memoized under keys
            carrying the snapshot epoch, so a resumed or replayed tick
            can never be served another epoch's features.
        checkpoint_dir: crawl checkpoint directory (``None`` disables).
        max_pages: per-site crawl page cap.
        jobs: worker count for the cold paths' document-graph builds.
    """

    def __init__(
        self,
        corpus: StreamCorpus,
        min_df: int = 1,
        damping: float = 0.85,
        lam: float = 1e-4,
        n_epochs: int = 30,
        batch_size: int = 32,
        seed: int = 0,
        warm_epochs: int = 3,
        detector: DriftDetector | None = None,
        cache: FeatureCache | None = None,
        checkpoint_dir: str | Path | None = None,
        max_pages: int | None = None,
        jobs: int | None = None,
    ) -> None:
        if warm_epochs < 1:
            raise ValidationError(f"warm_epochs must be >= 1, got {warm_epochs}")
        self._corpus = corpus
        self._min_df = min_df
        self._damping = damping
        self._lam = lam
        self._n_epochs = n_epochs
        self._batch_size = batch_size
        self._seed = seed
        self._warm_epochs = warm_epochs
        self._detector = detector if detector is not None else DriftDetector()
        self._cache = cache
        self._jobs = jobs
        self._crawl = DeltaCrawlStore(
            corpus, checkpoint_dir=checkpoint_dir, max_pages=max_pages
        )
        self._summarizer = Summarizer()
        self._df = IncrementalDocumentFrequencies()
        self._ngg = IncrementalClassGraphs()
        self._rank = DeltaRankState(damping=damping)
        self._vectorizer: TfidfVectorizer | None = None
        self._svm: LinearSVC | None = None
        self._rows: dict[str, sp.csr_matrix] = {}
        self._tokens: dict[str, tuple[str, ...]] = {}
        self._verdicts: dict[str, int] = {}
        self._epoch = 0
        self._fitted_epoch = 0

    # -- introspection ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch of the last applied tick."""
        return self._epoch

    @property
    def verdicts(self) -> dict[str, int]:
        """Current domain -> verdict (1 legitimate, 0 illegitimate)."""
        return dict(self._verdicts)

    @property
    def rank_state(self) -> DeltaRankState:
        """The maintained TrustRank state."""
        return self._rank

    @property
    def document_frequencies(self) -> IncrementalDocumentFrequencies:
        """The maintained exact document-frequency state."""
        return self._df

    @property
    def class_graphs(self) -> IncrementalClassGraphs:
        """The maintained NGG class-graph state."""
        return self._ngg

    @property
    def vectorizer(self) -> TfidfVectorizer:
        """The vectorizer of the last cold fit."""
        if self._vectorizer is None:
            raise NotFittedError("StreamingVerifier has not been bootstrapped")
        return self._vectorizer

    @property
    def classifier(self) -> LinearSVC:
        """The (warm-updated) SVM."""
        if self._svm is None:
            raise NotFittedError("StreamingVerifier has not been bootstrapped")
        return self._svm

    # -- cold start ---------------------------------------------------------

    def bootstrap(self) -> None:
        """Run the full cold pipeline on the corpus's current state."""
        self._crawl.bootstrap()
        domains = self._corpus.domains()
        for domain in domains:
            self._ingest_site(domain)
        self._epoch = self._corpus.epoch
        self._cold_fit()
        for domain in domains:
            site = self._crawl.site(domain)
            self._rank.set_row(
                domain,
                {target: 1.0 for target in site.outbound_endpoints()},
            )
        self._rank.set_trust_seeds(self._trusted_domains())
        self._rank.push()

    def _ingest_site(self, domain: str) -> None:
        """(Re)build one site's text state from its crawled pages."""
        site = self._crawl.site(domain)
        doc = self._summarizer.summarize_site(site)
        self._tokens[domain] = doc.tokens
        label = self._corpus.record_for(domain).label
        graph = self._ngg.build_document_graph(doc.text)
        if domain in self._df:
            self._df.replace(domain, doc.tokens)
            self._ngg.replace(domain, label, graph)
        else:
            self._df.add(domain, doc.tokens)
            self._ngg.add(domain, label, graph)

    def _drop_site(self, domain: str) -> None:
        self._df.remove(domain)
        self._ngg.remove(domain)
        self._tokens.pop(domain, None)
        self._rows.pop(domain, None)
        self._verdicts.pop(domain, None)
        self._rank.remove_source(domain)

    def _trusted_domains(self) -> list[str]:
        labels = self._corpus.labels()
        return [d for d, label in labels.items() if label == _LEGITIMATE]

    def _labels_array(self, domains: tuple[str, ...]) -> np.ndarray:
        labels = self._corpus.labels()
        return np.fromiter((labels[d] for d in domains), dtype=np.int64)

    def _stack_features(self, domains: tuple[str, ...]) -> sp.csr_matrix:
        return sp.vstack([self._rows[d] for d in domains], format="csr")

    def _cold_fit(self) -> None:
        """Refit vocabulary + feature rows + SVM from the exact state."""
        domains = self._corpus.domains()
        vectorizer = self._df.fit_vectorizer(min_df=self._min_df)
        matrix = vectorizer.transform([self._tokens[d] for d in domains])
        self._vectorizer = vectorizer
        self._rows = {d: matrix[i] for i, d in enumerate(domains)}
        y = self._labels_array(domains)
        svm = LinearSVC(
            lam=self._lam,
            n_epochs=self._n_epochs,
            seed=self._seed,
            batch_size=self._batch_size,
        )
        svm.fit(matrix, y)
        self._svm = svm
        self._fitted_epoch = self._epoch
        predicted = svm.predict(matrix)
        self._verdicts = {d: int(predicted[i]) for i, d in enumerate(domains)}
        self._detector.set_baseline(np.asarray(matrix.mean(axis=0)).ravel())

    # -- per-tick update ----------------------------------------------------

    def apply_tick(self, delta: SnapshotDelta) -> TickReport:
        """Advance every maintained stage past one snapshot delta."""
        if self._svm is None:
            raise NotFittedError("bootstrap() before apply_tick()")
        started = time.perf_counter()
        applied = self._corpus.apply(delta)
        self._epoch = delta.epoch
        self._crawl.apply(applied)
        for domain in applied.removed:
            self._drop_site(domain)
        for domain in applied.changed:
            self._ingest_site(domain)
            site = self._crawl.site(domain)
            self._rank.set_row(
                domain,
                {target: 1.0 for target in site.outbound_endpoints()},
            )
        domains = self._corpus.domains()
        n_flips = 0
        retrained = False
        report: DriftReport | None = None
        rank_sweeps = 0
        if applied.n_changes:
            if applied.changed:
                delta_matrix = self._transform_delta(applied.changed)
                for i, domain in enumerate(applied.changed):
                    self._rows[domain] = delta_matrix[i]
            matrix = self._stack_features(domains)
            y = self._labels_array(domains)
            self._svm.warm_fit(
                matrix,
                y,
                n_epochs=self._warm_epochs,
                seed=self._seed + delta.epoch,
            )
            rank_sweeps = self._rank.push()
            predicted = self._svm.predict(matrix)
            changed_set = set(applied.changed)
            new_verdicts = {}
            n_unchanged = 0
            for i, domain in enumerate(domains):
                verdict = int(predicted[i])
                new_verdicts[domain] = verdict
                old = self._verdicts.get(domain)
                if old is not None and domain not in changed_set:
                    n_unchanged += 1
                    if verdict != old:
                        n_flips += 1
            self._verdicts = new_verdicts
            report = self._detector.observe(
                delta.epoch,
                np.asarray(matrix.mean(axis=0)).ravel(),
                n_flips,
                n_unchanged,
            )
            if report.should_retrain:
                self.full_retrain()
                retrained = True
        return TickReport(
            epoch=delta.epoch,
            n_sites=len(domains),
            n_changed=len(applied.changed),
            n_removed=len(applied.removed),
            n_flips=n_flips,
            retrained=retrained,
            drift=report,
            seconds=time.perf_counter() - started,
            rank_sweeps=rank_sweeps,
        )

    def _transform_delta(self, changed: tuple[str, ...]) -> sp.csr_matrix:
        """TF-IDF rows of the changed documents, memoized per epoch.

        The cache key carries the snapshot epoch and the vocabulary's
        fit epoch: the same document content transformed under a later
        retrain's vocabulary is a different matrix, and a replayed
        tick must never be served a neighbouring epoch's rows.
        """
        vectorizer = self.vectorizer
        token_lists = [self._tokens[d] for d in changed]
        if self._cache is None:
            return vectorizer.transform(token_lists)

        def extract() -> sp.csr_matrix:
            # Valid only for the epoch the delta was cut at: the row
            # order follows this epoch's changed-domain list.
            assert self._epoch >= self._fitted_epoch
            return vectorizer.transform(token_lists)

        key = self._cache.key(
            "stream-delta-tfidf",
            content_fingerprint(
                part
                for domain, tokens in zip(changed, token_lists)
                for part in (domain, " ".join(tokens))
            ),
            {
                "epoch": self._epoch,
                "fitted_epoch": self._fitted_epoch,
                "min_df": self._min_df,
            },
        )
        return self._cache.get_or_compute(key, extract)

    # -- full retrain / oracle ---------------------------------------------

    def full_retrain(self) -> None:
        """Cold-refit vocabulary + SVM from the maintained exact state.

        The maintained document frequencies are bit-equal to a fresh
        count, so the refit vocabulary, features, SVM weights, and
        verdicts all match :meth:`full_recompute` exactly — verdict
        staleness is zero immediately after a retrain.
        """
        self._cold_fit()

    def full_recompute(self) -> FullPipelineState:
        """Run the whole pipeline cold on the current corpus state.

        Shares nothing with the maintained state — a fresh crawl, a
        fresh vocabulary fit, a cold SVM, full-power-iteration
        TrustRank, and exact-mean class graphs.  ``benchmarks/stream``
        times this against :meth:`apply_tick` and checks the
        incremental state against it.
        """
        store = DeltaCrawlStore(self._corpus)
        store.bootstrap()
        domains = self._corpus.domains()
        summarizer = Summarizer()
        docs = [summarizer.summarize_site(store.site(d)) for d in domains]
        vectorizer = TfidfVectorizer(min_df=self._min_df)
        matrix = vectorizer.fit(
            [doc.tokens for doc in docs]
        ).transform([doc.tokens for doc in docs])
        y = self._labels_array(domains)
        svm = LinearSVC(
            lam=self._lam,
            n_epochs=self._n_epochs,
            seed=self._seed,
            batch_size=self._batch_size,
        )
        svm.fit(matrix, y)
        predicted = svm.predict(matrix)
        graph = build_pharmacy_graph([store.site(d) for d in domains])
        trust = trustrank(
            graph, self._trusted_domains(), damping=self._damping
        )
        doc_graphs = [NGramGraph.from_text(doc.text) for doc in docs]
        class_graphs = mean_class_graphs(
            doc_graphs,
            [self._corpus.record_for(d).label for d in domains],
        )
        return FullPipelineState(
            domains=domains,
            verdicts={d: int(predicted[i]) for i, d in enumerate(domains)},
            vocabulary_terms=vectorizer.vocabulary.terms(),
            idf=vectorizer.idf.copy(),
            features=matrix,
            svm_weights=svm._w.copy(),
            svm_bias=svm._b,
            trust_scores=trust,
            class_graphs=class_graphs,
        )

    def staleness_against(self, full: FullPipelineState) -> float:
        """Verdict-disagreement rate versus a from-scratch run."""
        if not full.domains:
            return 0.0
        disagreements = 0
        for domain in full.domains:
            if self._verdicts.get(domain) != full.verdicts[domain]:
                disagreements += 1
        return disagreements / len(full.domains)
