"""Base classifier protocol and array-validation helpers.

All classifiers in :mod:`repro.ml` follow a minimal fit/predict
contract:

* ``fit(X, y)`` with ``X`` of shape ``(n_samples, n_features)`` (dense
  ndarray or scipy CSR) and ``y`` an integer label vector;
* ``predict(X)`` returning integer labels;
* ``predict_proba(X)`` returning class-membership probabilities with
  columns ordered by ``classes_``;
* ``decision_scores(X)`` returning a 1-D legitimacy-leaning score used
  for ROC curves (higher = more likely the *positive*, i.e. last,
  class).

Hyperparameters are constructor arguments only, so :func:`clone`
recreates an unfitted copy from ``get_params``.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError

__all__ = [
    "BaseClassifier",
    "clone",
    "check_X_y",
    "check_X",
    "ensure_dense",
]


def ensure_dense(X: Any) -> np.ndarray:
    """Return ``X`` as a 2-D float64 ndarray (densifying CSR input)."""
    if sp.issparse(X):
        # Densify with exactly one full-width pass.  The old
        # np.asarray(X.todense(), dtype=...) route materialized an
        # intermediate np.matrix and, for non-float64 input, re-read
        # the whole dense matrix to convert it.  Wide dtypes convert
        # per-nonzero before densifying; narrow dtypes densify first
        # so the big write stays small, then widen once.
        if X.dtype == np.float64:
            return X.toarray()
        if X.dtype.itemsize >= 8:
            return X.astype(np.float64).toarray()
        return np.asarray(X.toarray(), dtype=np.float64)
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"X must be 2-D, got shape {arr.shape}")
    return arr


def check_X(X: Any, allow_sparse: bool = True) -> Any:
    """Validate feature-matrix shape; densify if sparse is not allowed."""
    if sp.issparse(X):
        if allow_sparse:
            return X.tocsr()
        return ensure_dense(X)
    return ensure_dense(X)


def check_X_y(X: Any, y: Any, allow_sparse: bool = True) -> tuple[Any, np.ndarray]:
    """Validate (X, y) shapes and label dtype."""
    X = check_X(X, allow_sparse=allow_sparse)
    y_arr = np.asarray(y)
    if y_arr.ndim != 1:
        raise ValidationError(f"y must be 1-D, got shape {y_arr.shape}")
    n_samples = X.shape[0]
    if y_arr.shape[0] != n_samples:
        raise ValidationError(
            f"X and y disagree in length: {n_samples} vs {y_arr.shape[0]}"
        )
    if n_samples == 0:
        raise ValidationError("cannot fit on an empty dataset")
    return X, y_arr.astype(np.int64)


class BaseClassifier(abc.ABC):
    """Abstract base for all classifiers in the library."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    # -- abstract API ------------------------------------------------------

    @abc.abstractmethod
    def fit(self, X: Any, y: Any) -> "BaseClassifier":
        """Fit the model; returns self."""

    @abc.abstractmethod
    def predict_proba(self, X: Any) -> np.ndarray:
        """Class-membership probabilities, columns ordered by classes_."""

    # -- shared behaviour ----------------------------------------------------

    def predict(self, X: Any) -> np.ndarray:
        """Predicted labels (argmax of :meth:`predict_proba`)."""
        proba = self.predict_proba(X)
        classes = self._fitted_classes()
        return classes[np.argmax(proba, axis=1)]

    def decision_scores(self, X: Any) -> np.ndarray:
        """1-D score increasing with membership in the positive class.

        The positive class is the largest label in ``classes_`` (the
        library's convention puts *legitimate* = 1 above
        *illegitimate* = 0).
        """
        proba = self.predict_proba(X)
        return proba[:, -1]

    def get_params(self) -> dict[str, Any]:
        """Constructor hyperparameters (for :func:`clone` / repr)."""
        import inspect

        signature = inspect.signature(type(self).__init__)
        params = {}
        for name in signature.parameters:
            if name == "self":
                continue
            attr = f"_{name}"
            if hasattr(self, attr):
                params[name] = getattr(self, attr)
            elif hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def _fitted_classes(self) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.classes_

    def _store_classes(self, y: np.ndarray) -> np.ndarray:
        """Record sorted unique labels; return y re-encoded to 0..k-1."""
        classes, encoded = np.unique(y, return_inverse=True)
        if classes.shape[0] < 2:
            raise ValidationError(
                f"need at least 2 classes to fit, got {classes.tolist()}"
            )
        self.classes_ = classes
        return encoded

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseClassifier) -> BaseClassifier:
    """Return an unfitted copy of ``estimator`` with the same params."""
    return type(estimator)(**estimator.get_params())
