"""Label-noise injection and robustness evaluation.

The paper's authors studied classifier behaviour under mislabeling
noise (Mirylenka, Giannakopoulos, Do, Palpanas, DMKD 2017 — reference
[24]; see also [14]) and cite that line of work in Section 2.2: the
PharmaVerComp corpus is described as "consistent and error free", but a
production deployment would face noisy reviewer labels.  This module
provides the tooling to reproduce that analysis on the pharmacy task:

* :func:`inject_label_noise` — flip a fraction of labels, uniformly or
  asymmetrically (e.g. only illegitimate -> legitimate, the costly
  direction);
* :func:`noise_robustness_curve` — evaluation measure vs noise level
  for an arbitrary fit/predict closure.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from repro.exceptions import ValidationError

__all__ = ["inject_label_noise", "noise_robustness_curve"]


def inject_label_noise(
    y: Sequence[int],
    noise_rate: float,
    direction: str = "both",
    seed: int = 0,
) -> np.ndarray:
    """Return a copy of ``y`` with a fraction of labels flipped.

    Args:
        y: binary labels (0/1).
        noise_rate: fraction of *eligible* labels to flip, in [0, 1].
        direction: ``"both"`` flips a random sample of all labels;
            ``"legit_to_illegit"`` flips only 1 -> 0;
            ``"illegit_to_legit"`` flips only 0 -> 1.
        seed: RNG seed.

    Returns:
        The noisy label vector (original is untouched).
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise ValidationError(f"noise_rate must be in [0, 1], got {noise_rate}")
    if direction not in ("both", "legit_to_illegit", "illegit_to_legit"):
        raise ValidationError(f"unknown direction: {direction!r}")
    labels = np.asarray(y, dtype=np.int64).copy()
    rng = np.random.default_rng(seed)
    if direction == "both":
        eligible = np.arange(labels.shape[0])
    elif direction == "legit_to_illegit":
        eligible = np.flatnonzero(labels == 1)
    else:
        eligible = np.flatnonzero(labels == 0)
    n_flip = int(round(noise_rate * eligible.shape[0]))
    if n_flip == 0:
        return labels
    flip = rng.choice(eligible, size=n_flip, replace=False)
    labels[flip] = 1 - labels[flip]
    return labels


def noise_robustness_curve(
    fit_score: Callable[[np.ndarray], float],
    y: Sequence[int],
    noise_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    direction: str = "both",
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Evaluate a model at increasing training-label noise.

    Args:
        fit_score: callable taking a (noisy) training label vector and
            returning the evaluation measure on *clean* test labels —
            the caller owns the split and the model.
        y: the clean training labels to corrupt.
        noise_rates: noise levels to sweep.
        direction: see :func:`inject_label_noise`.
        seed: RNG seed (varied per level for independent corruptions).

    Returns:
        List of (noise_rate, score) pairs in sweep order.
    """
    curve = []
    for level_no, rate in enumerate(noise_rates):
        noisy = inject_label_noise(y, rate, direction=direction, seed=seed + level_no)
        curve.append((float(rate), float(fit_score(noisy))))
    return curve
