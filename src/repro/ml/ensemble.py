"""Ensemble Selection (Caruana et al., ICML 2004).

The paper's Section 6.3.3 combines the text and network models with
"Ensemble Selection": given a *library* of fitted models, greedily add
models (with replacement) to a bag whenever doing so improves a target
metric on a hill-climbing set; the final prediction averages the
probability outputs of the bag members.

Two refinements from the original paper are included:

* **sorted initialization** — the bag starts with the ``n_init`` best
  single models;
* **selection with replacement** — the same model can be added many
  times, implementing implicit weighting and preventing overfitting of
  the greedy step.

Following Caruana's design, the library's probability predictions are
precomputed once into an ``(n_models, n_instances, n_classes)`` tensor
and the bag sum is maintained incrementally, so every hill-climb round
is a broadcasted vector add; with the default AUC metric all candidate
scores of a round come from one batched rank computation
(:func:`repro.ml.metrics.auc_roc_many`).  Candidates are always
considered in sorted-name order: initialization ranks models by
(metric desc, Brier score asc, name asc) and hill-climb ties resolve to
the lowest name, so the selected bag is deterministic regardless of the
order the library was assembled in.  The per-candidate loop
implementation lives on as
:func:`repro.perf.reference.reference_ensemble_select`, the equivalence
oracle pinned by ``tests/perf``.

The library entries are heterogeneous: each has its own feature matrix
(text models see TF-IDF or graph-similarity features, the network model
sees TrustRank scores), so the ensemble works with pre-computed
probability predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.metrics import auc_roc, auc_roc_many

__all__ = ["LibraryModel", "EnsembleSelection"]


@dataclass(frozen=True, slots=True)
class LibraryModel:
    """One member of the model library.

    Attributes:
        name: display name ("svm-text", "nb-network", ...).
        predict_proba: maps an *instance index array* to an
            ``(n, 2)`` probability matrix.  The indirection through
            indices lets every model use its own feature matrix.
    """

    name: str
    predict_proba: Callable[[np.ndarray], np.ndarray]


class EnsembleSelection:
    """Greedy forward ensemble selection with replacement.

    Args:
        metric: scoring function ``(y_true, positive_scores) -> float``
            maximized by the greedy step (default AUC-ROC, the measure
            the paper optimizes for).  With the default, candidate
            scoring is batched; a custom metric is evaluated per
            candidate with identical selection semantics.
        n_init: size of the sorted initialization (best single models).
        max_rounds: cap on greedy additions after initialization.
        tolerance: stop when the best addition improves the score by
            less than this.
    """

    def __init__(
        self,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        n_init: int = 1,
        max_rounds: int = 30,
        tolerance: float = 1e-6,
    ) -> None:
        if n_init < 1:
            raise ValidationError(f"n_init must be >= 1, got {n_init}")
        if max_rounds < 0:
            raise ValidationError(f"max_rounds must be >= 0, got {max_rounds}")
        self._metric = metric or auc_roc
        self._n_init = n_init
        self._max_rounds = max_rounds
        self._tolerance = tolerance
        self._library: tuple[LibraryModel, ...] = ()
        self._bag_counts: dict[str, int] | None = None

    @property
    def bag_counts(self) -> dict[str, int]:
        """How many times each library model was selected."""
        if self._bag_counts is None:
            raise NotFittedError("EnsembleSelection has not been fitted")
        return dict(self._bag_counts)

    def _candidate_scores(self, y: np.ndarray, cand: np.ndarray) -> np.ndarray:
        """Metric of every candidate score row (batched when possible)."""
        if self._metric is auc_roc:
            return auc_roc_many(y, cand)
        return np.array([self._metric(y, row) for row in cand])

    def fit(
        self,
        library: Sequence[LibraryModel],
        hillclimb_indices: np.ndarray,
        y_hillclimb: np.ndarray,
    ) -> "EnsembleSelection":
        """Select the ensemble bag on the hill-climbing set.

        Args:
            library: fitted candidate models.
            hillclimb_indices: instance indices of the hill-climbing set
                (passed to each model's ``predict_proba``).
            y_hillclimb: labels of the hill-climbing set.
        """
        if not library:
            raise ValidationError("model library is empty")
        y = np.asarray(y_hillclimb).ravel()
        predictions = {
            model.name: np.asarray(model.predict_proba(hillclimb_indices))
            for model in library
        }
        for name, proba in predictions.items():
            if proba.shape != (y.shape[0], 2):
                raise ValidationError(
                    f"model {name!r} returned probability shape {proba.shape}, "
                    f"expected {(y.shape[0], 2)}"
                )

        # Deterministic candidate order: sorted model names.  The
        # prediction tensor is built once; every later step is pure
        # array arithmetic on it.
        names = sorted(predictions)
        tensor = np.stack([predictions[name] for name in names])
        pos_scores = tensor[:, :, 1]  # (n_models, n_instances)

        single_scores = self._candidate_scores(y, pos_scores)
        # Initialization ties (several perfect single models are common
        # on small hill-climb sets) resolve by Brier score — the model
        # with the better-calibrated probabilities — then by name.
        briers = np.mean((pos_scores - y[None, :]) ** 2, axis=1)
        ranked = sorted(
            range(len(names)),
            key=lambda m: (-single_scores[m], briers[m], names[m]),
        )
        bag: list[int] = ranked[: self._n_init]
        bag_sum = tensor[bag].sum(axis=0)
        best_score = float(self._metric(y, (bag_sum / len(bag))[:, 1]))

        for _ in range(self._max_rounds):
            candidates = (bag_sum[None, :, 1] + pos_scores) / (len(bag) + 1)
            scores = self._candidate_scores(y, candidates)
            best_m = int(np.argmax(scores))  # ties -> lowest sorted name
            if not scores[best_m] > best_score + self._tolerance:
                break
            bag.append(best_m)
            bag_sum = bag_sum + tensor[best_m]
            best_score = float(scores[best_m])

        self._library = tuple(library)
        counts: dict[str, int] = {}
        for m in bag:
            counts[names[m]] = counts.get(names[m], 0) + 1
        self._bag_counts = counts
        return self

    def predict_proba(self, indices: np.ndarray) -> np.ndarray:
        """Bag-weighted average probability for the given instances."""
        if self._bag_counts is None:
            raise NotFittedError("EnsembleSelection has not been fitted")
        total = sum(self._bag_counts.values())
        by_name = {model.name: model for model in self._library}
        out: np.ndarray | None = None
        for name, count in self._bag_counts.items():
            proba = np.asarray(by_name[name].predict_proba(indices))
            weighted = proba * (count / total)
            out = weighted if out is None else out + weighted
        assert out is not None
        return out

    def predict(self, indices: np.ndarray) -> np.ndarray:
        """Hard labels (0/1) from the averaged probabilities."""
        return (self.predict_proba(indices)[:, 1] >= 0.5).astype(np.int64)

    def decision_scores(self, indices: np.ndarray) -> np.ndarray:
        """Positive-class averaged probability (ranking signal)."""
        return self.predict_proba(indices)[:, 1]
