"""C4.5-style decision tree (Weka's J48 equivalent).

Implements the core of Quinlan's C4.5 for continuous attributes, which
is what both TF-IDF weights and graph-similarity features are:

* binary splits ``feature <= threshold`` chosen by **gain ratio**
  (information gain / split information), with the C4.5 rule that a
  split must first beat the average gain of all candidate splits;
* recursive growth until purity, ``min_samples_split``, or
  ``max_depth``;
* pessimistic error pruning (C4.5's upper-bound error estimate with
  confidence factor CF = 0.25, Weka's default);
* leaves predict the training class distribution, so
  ``predict_proba`` is available for ranking and AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import stats

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X_y, ensure_dense

__all__ = ["C45Tree"]

_EPS = 1e-12


@dataclass
class _Node:
    """One tree node; a leaf when ``feature`` is None."""

    counts: np.ndarray  # class counts of training samples at this node
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def n_samples(self) -> float:
        return float(self.counts.sum())

    def error_count(self) -> float:
        """Misclassifications if this node predicted its majority class."""
        return float(self.counts.sum() - self.counts.max())


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log2(p)))


def _pessimistic_errors(n: float, e: float, cf: float = 0.25) -> float:
    """C4.5's upper confidence bound on the error count of a leaf.

    Uses the normal approximation to the binomial upper limit that
    Quinlan's release (and Weka) apply with confidence factor ``cf``.
    """
    if n <= 0:
        return 0.0
    z = float(stats.norm.ppf(1.0 - cf))
    f = e / n
    numerator = (
        f
        + z * z / (2.0 * n)
        + z * np.sqrt(f / n - f * f / n + z * z / (4.0 * n * n))
    )
    return n * numerator / (1.0 + z * z / n)


class C45Tree(BaseClassifier):
    """C4.5 decision tree for continuous features.

    Args:
        max_depth: depth cap (None = unlimited).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: each child must keep at least this many rows.
        confidence_factor: CF for pessimistic pruning (Weka default 0.25);
            ``None`` disables pruning.
        max_candidate_features: if set, evaluate splits only on the
            ``k`` highest-variance features at each node — an optional
            speed knob for very wide TF-IDF matrices (None = all).
        seed: reserved for future stochastic variants (kept for clone
            symmetry; the tree itself is deterministic).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        confidence_factor: float | None = 0.25,
        max_candidate_features: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValidationError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._min_samples_leaf = min_samples_leaf
        self._confidence_factor = confidence_factor
        self._max_candidate_features = max_candidate_features
        self._seed = seed
        self._root: _Node | None = None
        self._n_features = 0

    # -- fitting -------------------------------------------------------------

    def fit(self, X: Any, y: Any) -> "C45Tree":
        X = ensure_dense(X)
        X, y = check_X_y(X, y, allow_sparse=False)
        encoded = self._store_classes(y)
        n_classes = len(self._fitted_classes())
        self._n_features = X.shape[1]
        self._root = self._grow(X, encoded, n_classes, depth=0)
        if self._confidence_factor is not None:
            self._prune(self._root)
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, n_classes: int, depth: int
    ) -> _Node:
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        node = _Node(counts=counts)
        if (
            counts.max() == counts.sum()  # pure
            or counts.sum() < self._min_samples_split
            or (self._max_depth is not None and depth >= self._max_depth)
        ):
            return node
        split = self._best_split(X, y, n_classes)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], n_classes, depth + 1)
        node.right = self._grow(X[~mask], y[~mask], n_classes, depth + 1)
        return node

    def _candidate_features(self, X: np.ndarray) -> np.ndarray:
        n_features = X.shape[1]
        if (
            self._max_candidate_features is None
            or n_features <= self._max_candidate_features
        ):
            return np.arange(n_features)
        variances = X.var(axis=0)
        top = np.argpartition(-variances, self._max_candidate_features)[
            : self._max_candidate_features
        ]
        return np.sort(top)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, n_classes: int
    ) -> tuple[int, float] | None:
        """Best (feature, threshold) by C4.5 gain ratio, or None."""
        n_samples = X.shape[0]
        parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        parent_entropy = _entropy(parent_counts)
        min_leaf = self._min_samples_leaf

        best: tuple[float, int, float] | None = None  # (ratio, feature, thr)
        gains: list[tuple[float, float, int, float]] = []  # (gain, ratio, f, thr)

        for feature in self._candidate_features(X):
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y[order]
            # one-hot cumulative class counts along the sorted column
            onehot = np.zeros((n_samples, n_classes), dtype=np.float64)
            onehot[np.arange(n_samples), sorted_y] = 1.0
            cum = np.cumsum(onehot, axis=0)
            # candidate cut after position i (0-based): left = first i+1 rows
            boundaries = np.where(np.diff(sorted_vals) > _EPS)[0]
            if boundaries.size == 0:
                continue
            valid = boundaries[
                (boundaries + 1 >= min_leaf)
                & (n_samples - boundaries - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            left_counts = cum[valid]
            right_counts = parent_counts - left_counts
            n_left = (valid + 1).astype(np.float64)
            n_right = n_samples - n_left
            h_left = _entropy_rows(left_counts)
            h_right = _entropy_rows(right_counts)
            weighted = (n_left * h_left + n_right * h_right) / n_samples
            gain = parent_entropy - weighted
            p_left = n_left / n_samples
            p_right = n_right / n_samples
            split_info = -(
                p_left * np.log2(p_left) + p_right * np.log2(p_right)
            )
            ratio = np.where(split_info > _EPS, gain / split_info, 0.0)
            k = int(np.argmax(ratio))
            if gain[k] <= _EPS:
                continue
            # C4.5 midpoint threshold between the boundary values.
            thr = 0.5 * (sorted_vals[valid[k]] + sorted_vals[valid[k] + 1])
            gains.append((float(gain[k]), float(ratio[k]), int(feature), float(thr)))

        if not gains:
            return None
        # C4.5 restriction: only consider splits with at least average gain.
        avg_gain = sum(g for g, _, _, _ in gains) / len(gains)
        eligible = [item for item in gains if item[0] >= avg_gain - _EPS]
        _, _, feature, thr = max(eligible, key=lambda item: item[1])
        return feature, thr

    # -- pruning ---------------------------------------------------------------

    def _prune(self, node: _Node) -> float:
        """Post-order pessimistic pruning; returns estimated errors."""
        cf = self._confidence_factor
        assert cf is not None
        if node.is_leaf:
            return _pessimistic_errors(node.n_samples(), node.error_count(), cf)
        assert node.left is not None and node.right is not None
        subtree_errors = self._prune(node.left) + self._prune(node.right)
        leaf_errors = _pessimistic_errors(node.n_samples(), node.error_count(), cf)
        if leaf_errors <= subtree_errors + 0.1:
            node.feature = None
            node.left = None
            node.right = None
            return leaf_errors
        return subtree_errors

    # -- prediction --------------------------------------------------------------

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._n_features}, "
                f"got {X.shape[1]}"
            )
        n_classes = len(self._fitted_classes())
        out = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            # Laplace-smoothed leaf distribution (as J48 does).
            out[i] = (node.counts + 1.0) / (node.counts.sum() + n_classes)
        return out

    # -- introspection --------------------------------------------------------------

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    def to_text(self, feature_names: list[str] | None = None) -> str:
        """Render the fitted tree as indented rules (J48's print style).

        Args:
            feature_names: optional display names per feature index;
                defaults to ``f0, f1, ...``.

        Returns:
            One line per decision/leaf, e.g.::

                f2 <= 0.35
                |   class 0 (12.0)
                f2 > 0.35
                |   class 1 (8.0)
        """
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")
        classes = self._fitted_classes()

        def name(idx: int) -> str:
            if feature_names is not None:
                return feature_names[idx]
            return f"f{idx}"

        lines: list[str] = []

        def walk(node: _Node, depth: int) -> None:
            prefix = "|   " * depth
            if node.is_leaf:
                majority = classes[int(np.argmax(node.counts))]
                lines.append(
                    f"{prefix}class {majority} ({node.counts.sum():.1f})"
                )
                return
            assert node.left is not None and node.right is not None
            lines.append(f"{prefix}{name(node.feature)} <= {node.threshold:.6g}")
            walk(node.left, depth + 1)
            lines.append(f"{prefix}{name(node.feature)} > {node.threshold:.6g}")
            walk(node.right, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)


def _entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Row-wise entropy of a (rows, classes) count matrix."""
    totals = counts.sum(axis=1, keepdims=True)
    safe_totals = np.where(totals > 0, totals, 1.0)
    p = counts / safe_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -np.sum(p * logp, axis=1)
