"""C4.5-style decision tree (Weka's J48 equivalent).

Implements the core of Quinlan's C4.5 for continuous attributes, which
is what both TF-IDF weights and graph-similarity features are:

* binary splits ``feature <= threshold`` chosen by **gain ratio**
  (information gain / split information), with the C4.5 rule that a
  split must first beat the average gain of all candidate splits;
* recursive growth until purity, ``min_samples_split``, or
  ``max_depth``;
* pessimistic error pruning (C4.5's upper-bound error estimate with
  confidence factor CF = 0.25, Weka's default);
* leaves predict the training class distribution, so
  ``predict_proba`` is available for ranking and AUC.

The split search is fully vectorized: one stable argsort of the whole
candidate-feature block, cumulative class-count arrays, and a single
masked argmax evaluate every (feature, threshold) pair without a
Python candidate loop.  The per-feature/per-candidate loop
implementation survives as :class:`repro.perf.reference.ReferenceC45Tree`,
the equivalence oracle pinned by ``tests/perf`` (identical trees,
bit-equal predictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import stats

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X_y, ensure_dense

__all__ = ["C45Tree"]

_EPS = 1e-12


@dataclass
class _Node:
    """One tree node; a leaf when ``feature`` is None."""

    counts: np.ndarray  # class counts of training samples at this node
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def n_samples(self) -> float:
        return float(self.counts.sum())

    def error_count(self) -> float:
        """Misclassifications if this node predicted its majority class."""
        return float(self.counts.sum() - self.counts.max())


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log2(p)))


def _pessimistic_errors(n: float, e: float, cf: float = 0.25) -> float:
    """C4.5's upper confidence bound on the error count of a leaf.

    Uses the normal approximation to the binomial upper limit that
    Quinlan's release (and Weka) apply with confidence factor ``cf``.
    """
    if n <= 0:
        return 0.0
    z = float(stats.norm.ppf(1.0 - cf))
    f = e / n
    numerator = (
        f
        + z * z / (2.0 * n)
        + z * np.sqrt(f / n - f * f / n + z * z / (4.0 * n * n))
    )
    return n * numerator / (1.0 + z * z / n)


class C45Tree(BaseClassifier):
    """C4.5 decision tree for continuous features.

    Args:
        max_depth: depth cap (None = unlimited).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: each child must keep at least this many rows.
        confidence_factor: CF for pessimistic pruning (Weka default 0.25);
            ``None`` disables pruning.
        max_candidate_features: if set, evaluate splits only on the
            ``k`` highest-variance features at each node — an optional
            speed knob for very wide TF-IDF matrices (None = all).
        max_features: if set, subsample at most this many of the
            candidate features uniformly at random at each node
            (random-forest style); applied after the
            ``max_candidate_features`` variance filter.
        seed: seeds the per-``fit`` RNG that draws the ``max_features``
            subsets, so clone/refit is deterministic.  With
            ``max_features=None`` the tree is deterministic regardless
            of the seed.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        confidence_factor: float | None = 0.25,
        max_candidate_features: int | None = None,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValidationError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and max_features < 1:
            raise ValidationError(
                f"max_features must be >= 1 or None, got {max_features}"
            )
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._min_samples_leaf = min_samples_leaf
        self._confidence_factor = confidence_factor
        self._max_candidate_features = max_candidate_features
        self._max_features = max_features
        self._seed = seed
        self._root: _Node | None = None
        self._n_features = 0

    # -- fitting -------------------------------------------------------------

    def fit(self, X: Any, y: Any) -> "C45Tree":
        X = ensure_dense(X)
        X, y = check_X_y(X, y, allow_sparse=False)
        encoded = self._store_classes(y)
        n_classes = len(self._fitted_classes())
        self._n_features = X.shape[1]
        rng = np.random.default_rng(self._seed)
        self._root = self._grow(X, encoded, n_classes, depth=0, rng=rng)
        if self._confidence_factor is not None:
            self._prune(self._root)
        return self

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        node = _Node(counts=counts)
        if (
            counts.max() == counts.sum()  # pure
            or counts.sum() < self._min_samples_split
            or (self._max_depth is not None and depth >= self._max_depth)
        ):
            return node
        split = self._best_split(X, y, n_classes, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], n_classes, depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], n_classes, depth + 1, rng)
        return node

    def _candidate_features(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_features = X.shape[1]
        features = np.arange(n_features)
        if (
            self._max_candidate_features is not None
            and n_features > self._max_candidate_features
        ):
            variances = X.var(axis=0)
            top = np.argpartition(-variances, self._max_candidate_features)[
                : self._max_candidate_features
            ]
            features = np.sort(top)
        if self._max_features is not None and features.shape[0] > self._max_features:
            chosen = rng.choice(
                features.shape[0], size=self._max_features, replace=False
            )
            features = np.sort(features[chosen])
        return features

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        """Best (feature, threshold) by C4.5 gain ratio, or None.

        Every candidate feature is handled in one vectorized pass: a
        stable column-wise argsort, per-class cumulative counts, and a
        masked argmax over the full ``(n_candidates, n_features)``
        gain-ratio matrix.  Candidate cut ``i`` puts the first ``i+1``
        sorted rows on the left; ties across features resolve to the
        lowest feature index (first maximum), matching the sequential
        reference kernel.
        """
        n_samples = X.shape[0]
        parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        parent_entropy = _entropy(parent_counts)
        min_leaf = self._min_samples_leaf

        features = self._candidate_features(X, rng)
        cols = X[:, features]
        order = np.argsort(cols, axis=0, kind="stable")
        sorted_vals = np.take_along_axis(cols, order, axis=0)
        sorted_y = y[order]  # (n_samples, n_features)

        boundary = np.diff(sorted_vals, axis=0) > _EPS  # (n_samples - 1, F)
        n_left = np.arange(1, n_samples, dtype=np.float64)
        leaf_ok = (n_left >= min_leaf) & (n_samples - n_left >= min_leaf)
        valid = boundary & leaf_ok[:, None]
        if not valid.any():
            return None

        # Cumulative class counts along each sorted column; row i holds
        # the class histogram of the first i+1 rows.
        onehot = (
            sorted_y[:, :, None] == np.arange(n_classes)[None, None, :]
        ).astype(np.float64)
        cum = np.cumsum(onehot, axis=0)
        left_counts = cum[:-1]  # (n_samples - 1, F, n_classes)
        right_counts = parent_counts[None, None, :] - left_counts
        n_right = n_samples - n_left
        h_left = _entropy_rows(left_counts)
        h_right = _entropy_rows(right_counts)
        weighted = (n_left[:, None] * h_left + n_right[:, None] * h_right) / n_samples
        gain = parent_entropy - weighted  # (n_samples - 1, F)
        p_left = n_left / n_samples
        p_right = n_right / n_samples
        split_info = -(p_left * np.log2(p_left) + p_right * np.log2(p_right))
        ratio = np.where(
            split_info[:, None] > _EPS, gain / split_info[:, None], 0.0
        )

        masked_ratio = np.where(valid, ratio, -np.inf)
        f_range = np.arange(features.shape[0])
        k = np.argmax(masked_ratio, axis=0)  # best candidate per feature
        gain_k = gain[k, f_range]
        good = valid.any(axis=0) & (gain_k > _EPS)
        if not good.any():
            return None
        # C4.5 restriction: only consider splits with at least average gain.
        avg_gain = float(np.sum(gain_k[good])) / int(np.count_nonzero(good))
        eligible = good & (gain_k >= avg_gain - _EPS)
        cand_ratio = np.where(eligible, masked_ratio[k, f_range], -np.inf)
        best_f = int(np.argmax(cand_ratio))
        kk = int(k[best_f])
        # C4.5 midpoint threshold between the boundary values.
        thr = 0.5 * (sorted_vals[kk, best_f] + sorted_vals[kk + 1, best_f])
        return int(features[best_f]), float(thr)

    # -- pruning ---------------------------------------------------------------

    def _prune(self, node: _Node) -> float:
        """Post-order pessimistic pruning; returns estimated errors."""
        cf = self._confidence_factor
        assert cf is not None
        if node.is_leaf:
            return _pessimistic_errors(node.n_samples(), node.error_count(), cf)
        assert node.left is not None and node.right is not None
        subtree_errors = self._prune(node.left) + self._prune(node.right)
        leaf_errors = _pessimistic_errors(node.n_samples(), node.error_count(), cf)
        if leaf_errors <= subtree_errors + 0.1:
            node.feature = None
            node.left = None
            node.right = None
            return leaf_errors
        return subtree_errors

    # -- prediction --------------------------------------------------------------

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._n_features}, "
                f"got {X.shape[1]}"
            )
        n_classes = len(self._fitted_classes())
        out = np.empty((X.shape[0], n_classes), dtype=np.float64)
        self._fill_proba(self._root, X, np.arange(X.shape[0]), out, n_classes)
        return out

    def _fill_proba(
        self,
        node: _Node,
        X: np.ndarray,
        idx: np.ndarray,
        out: np.ndarray,
        n_classes: int,
    ) -> None:
        """Route the rows in ``idx`` down the tree, block-wise."""
        if node.is_leaf:
            # Laplace-smoothed leaf distribution (as J48 does).
            out[idx] = (node.counts + 1.0) / (node.counts.sum() + n_classes)
            return
        assert node.left is not None and node.right is not None
        mask = X[idx, node.feature] <= node.threshold
        self._fill_proba(node.left, X, idx[mask], out, n_classes)
        self._fill_proba(node.right, X, idx[~mask], out, n_classes)

    # -- introspection --------------------------------------------------------------

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    def to_text(self, feature_names: list[str] | None = None) -> str:
        """Render the fitted tree as indented rules (J48's print style).

        Args:
            feature_names: optional display names per feature index;
                defaults to ``f0, f1, ...``.

        Returns:
            One line per decision/leaf, e.g.::

                f2 <= 0.35
                |   class 0 (12.0)
                f2 > 0.35
                |   class 1 (8.0)
        """
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")
        classes = self._fitted_classes()

        def name(idx: int) -> str:
            if feature_names is not None:
                return feature_names[idx]
            return f"f{idx}"

        lines: list[str] = []

        def walk(node: _Node, depth: int) -> None:
            prefix = "|   " * depth
            if node.is_leaf:
                majority = classes[int(np.argmax(node.counts))]
                lines.append(
                    f"{prefix}class {majority} ({node.counts.sum():.1f})"
                )
                return
            assert node.left is not None and node.right is not None
            lines.append(f"{prefix}{name(node.feature)} <= {node.threshold:.6g}")
            walk(node.left, depth + 1)
            lines.append(f"{prefix}{name(node.feature)} > {node.threshold:.6g}")
            walk(node.right, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)


def _entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Entropy along the last (class) axis of a count array."""
    totals = counts.sum(axis=-1, keepdims=True)
    safe_totals = np.where(totals > 0, totals, 1.0)
    p = counts / safe_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -np.sum(p * logp, axis=-1)
