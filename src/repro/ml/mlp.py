"""Multilayer perceptron (the paper's MLP / "Artificial Neural Networks").

A single-hidden-layer feed-forward network with sigmoid activations and
a softmax output trained by mini-batch gradient descent with momentum —
the same architecture family as Weka's MultilayerPerceptron, which the
paper uses on N-Gram-Graph similarity features (where it is the best
classifier, Tables 7–10).

Inputs are expected to be dense and roughly unit-scaled (similarity
features are already in [0, 1]; use
:class:`~repro.ml.scaling.StandardScaler` otherwise).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X_y, ensure_dense

__all__ = ["MLPClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -50.0, 50.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(BaseClassifier):
    """One-hidden-layer MLP with sigmoid units and softmax output.

    Args:
        hidden_units: width of the hidden layer.
        learning_rate: SGD step size.
        momentum: classical momentum coefficient (Weka default 0.2).
        n_epochs: passes over the training data (Weka default 500; the
            low-dimensional similarity features converge much faster).
        batch_size: mini-batch size.
        l2: weight decay coefficient.
        class_weight: ``None`` or ``"balanced"`` (loss re-weighting).
        seed: RNG seed for init and shuffling.
    """

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 0.3,
        momentum: float = 0.2,
        n_epochs: int = 200,
        batch_size: int = 32,
        l2: float = 1e-4,
        class_weight: str | None = "balanced",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if hidden_units < 1:
            raise ValidationError(f"hidden_units must be >= 1, got {hidden_units}")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must be in [0, 1), got {momentum}")
        if n_epochs < 1:
            raise ValidationError(f"n_epochs must be >= 1, got {n_epochs}")
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        if class_weight not in (None, "balanced"):
            raise ValidationError(f"unsupported class_weight: {class_weight!r}")
        self._hidden_units = hidden_units
        self._learning_rate = learning_rate
        self._momentum = momentum
        self._n_epochs = n_epochs
        self._batch_size = batch_size
        self._l2 = l2
        self._class_weight = class_weight
        self._seed = seed
        self._w1: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._w2: np.ndarray | None = None
        self._b2: np.ndarray | None = None

    def fit(self, X: Any, y: Any) -> "MLPClassifier":
        X = ensure_dense(X)
        X, y = check_X_y(X, y, allow_sparse=False)
        encoded = self._store_classes(y)
        n_classes = len(self._fitted_classes())
        n_samples, n_features = X.shape

        rng = np.random.default_rng(self._seed)
        scale1 = np.sqrt(2.0 / (n_features + self._hidden_units))
        scale2 = np.sqrt(2.0 / (self._hidden_units + n_classes))
        w1 = rng.normal(0.0, scale1, size=(n_features, self._hidden_units))
        b1 = np.zeros(self._hidden_units)
        w2 = rng.normal(0.0, scale2, size=(self._hidden_units, n_classes))
        b2 = np.zeros(n_classes)
        v_w1 = np.zeros_like(w1)
        v_b1 = np.zeros_like(b1)
        v_w2 = np.zeros_like(w2)
        v_b2 = np.zeros_like(b2)

        onehot = np.zeros((n_samples, n_classes))
        onehot[np.arange(n_samples), encoded] = 1.0
        if self._class_weight == "balanced":
            counts = np.bincount(encoded, minlength=n_classes).astype(np.float64)
            weights_per_class = n_samples / (n_classes * np.maximum(counts, 1.0))
            sample_weight = weights_per_class[encoded]
        else:
            sample_weight = np.ones(n_samples)

        lr = self._learning_rate
        mu = self._momentum
        for _ in range(self._n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self._batch_size):
                idx = order[start : start + self._batch_size]
                xb = X[idx]
                tb = onehot[idx]
                wb = sample_weight[idx][:, None]
                hidden = _sigmoid(xb @ w1 + b1)
                proba = _softmax(hidden @ w2 + b2)
                # Cross-entropy gradient at the softmax input:
                delta_out = (proba - tb) * wb / len(idx)
                grad_w2 = hidden.T @ delta_out + self._l2 * w2
                grad_b2 = delta_out.sum(axis=0)
                delta_hidden = (delta_out @ w2.T) * hidden * (1.0 - hidden)
                grad_w1 = xb.T @ delta_hidden + self._l2 * w1
                grad_b1 = delta_hidden.sum(axis=0)
                v_w2 = mu * v_w2 - lr * grad_w2
                v_b2 = mu * v_b2 - lr * grad_b2
                v_w1 = mu * v_w1 - lr * grad_w1
                v_b1 = mu * v_b1 - lr * grad_b1
                w2 += v_w2
                b2 += v_b2
                w1 += v_w1
                b1 += v_b1

        self._w1, self._b1, self._w2, self._b2 = w1, b1, w2, b2
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._w1 is None:
            raise NotFittedError("MLPClassifier has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._w1.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._w1.shape[0]}, "
                f"got {X.shape[1]}"
            )
        hidden = _sigmoid(X @ self._w1 + self._b1)
        return _softmax(hidden @ self._w2 + self._b2)
