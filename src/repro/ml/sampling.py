"""Class-imbalance resampling: random undersampling (SUB) and SMOTE.

The paper's two classes are strongly imbalanced (12% legitimate).  It
evaluates three regimes per classifier — the natural distribution (NO),
random undersampling of the majority class (SUB), and SMOTE
oversampling of the minority class — and reports the best (Table 2).

* :class:`RandomUnderSampler` removes majority-class examples at random
  until both classes are the same size.
* :class:`SMOTE` synthesizes minority examples by interpolating between
  a minority point and one of its k nearest minority neighbours
  (Chawla et al., JAIR 2002) — "operating in feature space rather than
  data space".

Both operate on dense or sparse matrices (sparse input is densified for
SMOTE's neighbour computation; the paper's subsampled TF-IDF matrices
are small enough for this).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_X_y, ensure_dense
from repro.exceptions import ValidationError

__all__ = ["RandomUnderSampler", "SMOTE", "SAMPLER_ABBREVIATIONS"]

#: Abbreviations used in the paper's tables (Table 2).
SAMPLER_ABBREVIATIONS = {
    None: "NO",
    "RandomUnderSampler": "SUB",
    "SMOTE": "SMOTE",
}


class RandomUnderSampler:
    """Balance classes by dropping random majority-class rows (SUB).

    Args:
        seed: RNG seed for the row selection.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def fit_resample(self, X: Any, y: Any) -> tuple[Any, np.ndarray]:
        """Return a class-balanced (X, y) subsample.

        Every class is cut to the size of the smallest one.  Row order
        is re-sorted to keep the output deterministic.
        """
        X, y = check_X_y(X, y, allow_sparse=True)
        rng = np.random.default_rng(self._seed)
        classes, counts = np.unique(y, return_counts=True)
        target = int(counts.min())
        keep: list[np.ndarray] = []
        for label in classes:
            idx = np.flatnonzero(y == label)
            if idx.size > target:
                idx = rng.choice(idx, size=target, replace=False)
            keep.append(idx)
        rows = np.sort(np.concatenate(keep))
        return X[rows], y[rows]


class SMOTE:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al. 2002).

    Oversamples every non-majority class up to the majority-class size
    by generating synthetic rows ``x + u * (neighbour - x)`` with
    ``u ~ U(0, 1)`` and ``neighbour`` one of the ``k`` nearest
    same-class rows.

    Args:
        k_neighbors: neighbourhood size (paper/standard default 5).
        seed: RNG seed.
    """

    def __init__(self, k_neighbors: int = 5, seed: int = 0) -> None:
        if k_neighbors < 1:
            raise ValidationError(f"k_neighbors must be >= 1, got {k_neighbors}")
        self._k_neighbors = k_neighbors
        self._seed = seed

    def fit_resample(self, X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
        """Return (X, y) with minority classes synthetically upsampled.

        Output is always dense (synthetic rows are dense by nature).
        """
        X, y = check_X_y(X, y, allow_sparse=True)
        dense = ensure_dense(X) if sp.issparse(X) else X
        rng = np.random.default_rng(self._seed)
        classes, counts = np.unique(y, return_counts=True)
        majority = int(counts.max())
        new_rows: list[np.ndarray] = [dense]
        new_labels: list[np.ndarray] = [y]
        for label, count in zip(classes, counts):
            deficit = majority - int(count)
            if deficit == 0:
                continue
            block = dense[y == label]
            if block.shape[0] == 1:
                # Nothing to interpolate with; replicate the single row.
                synthetic = np.repeat(block, deficit, axis=0)
            else:
                synthetic = self._synthesize(block, deficit, rng)
            new_rows.append(synthetic)
            new_labels.append(np.full(deficit, label, dtype=y.dtype))
        return np.vstack(new_rows), np.concatenate(new_labels)

    def _synthesize(
        self, block: np.ndarray, n_new: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate ``n_new`` synthetic rows from minority ``block``."""
        k = min(self._k_neighbors, block.shape[0] - 1)
        # Pairwise squared distances within the minority class.
        sq = np.sum(block**2, axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (block @ block.T)
        np.fill_diagonal(d2, np.inf)
        neighbour_idx = np.argsort(d2, axis=1)[:, :k]
        base = rng.integers(0, block.shape[0], size=n_new)
        pick = rng.integers(0, k, size=n_new)
        neighbours = block[neighbour_idx[base, pick]]
        gaps = rng.random(size=(n_new, 1))
        return block[base] + gaps * (neighbours - block[base])
