"""Class-imbalance resampling: random undersampling (SUB) and SMOTE.

The paper's two classes are strongly imbalanced (12% legitimate).  It
evaluates three regimes per classifier — the natural distribution (NO),
random undersampling of the majority class (SUB), and SMOTE
oversampling of the minority class — and reports the best (Table 2).

* :class:`RandomUnderSampler` removes majority-class examples at random
  until both classes are the same size.
* :class:`SMOTE` synthesizes minority examples by interpolating between
  a minority point and one of its k nearest minority neighbours
  (Chawla et al., JAIR 2002) — "operating in feature space rather than
  data space".

Both operate on dense or sparse matrices (sparse input is densified for
SMOTE's neighbour computation; the paper's subsampled TF-IDF matrices
are small enough for this).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_X_y, ensure_dense
from repro.exceptions import ValidationError

__all__ = ["RandomUnderSampler", "SMOTE", "SAMPLER_ABBREVIATIONS"]

#: Abbreviations used in the paper's tables (Table 2).
SAMPLER_ABBREVIATIONS = {
    None: "NO",
    "RandomUnderSampler": "SUB",
    "SMOTE": "SMOTE",
}


class RandomUnderSampler:
    """Balance classes by dropping random majority-class rows (SUB).

    Args:
        seed: RNG seed for the row selection.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def fit_resample(self, X: Any, y: Any) -> tuple[Any, np.ndarray]:
        """Return a class-balanced (X, y) subsample.

        Every class is cut to the size of the smallest one.  Row order
        is re-sorted to keep the output deterministic.
        """
        X, y = check_X_y(X, y, allow_sparse=True)
        rng = np.random.default_rng(self._seed)
        classes, counts = np.unique(y, return_counts=True)
        target = int(counts.min())
        keep: list[np.ndarray] = []
        for label in classes:
            idx = np.flatnonzero(y == label)
            if idx.size > target:
                idx = rng.choice(idx, size=target, replace=False)
            keep.append(idx)
        rows = np.sort(np.concatenate(keep))
        return X[rows], y[rows]


class SMOTE:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al. 2002).

    Oversamples every non-majority class up to the majority-class size
    by generating synthetic rows ``x + u * (neighbour - x)`` with
    ``u ~ U(0, 1)`` and ``neighbour`` one of the ``k`` nearest
    same-class rows.

    The neighbour search computes pairwise squared distances in row
    chunks of the minority block (one ``chunk @ block.T`` product per
    chunk), so memory stays bounded at ``chunk_size * n_minority``
    floats while the interpolation of all synthetic rows happens in one
    vectorized expression.  The classic per-sample loop implementation
    is kept as :class:`repro.perf.reference.ReferenceSMOTE`, the
    equivalence oracle pinned by ``tests/perf``.

    Args:
        k_neighbors: neighbourhood size (paper/standard default 5).
        seed: RNG seed.
        chunk_size: rows per pairwise-distance chunk (memory knob; the
            result is identical at any chunk size).
    """

    def __init__(
        self, k_neighbors: int = 5, seed: int = 0, chunk_size: int = 512
    ) -> None:
        if k_neighbors < 1:
            raise ValidationError(f"k_neighbors must be >= 1, got {k_neighbors}")
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self._k_neighbors = k_neighbors
        self._seed = seed
        self._chunk_size = chunk_size

    def fit_resample(self, X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
        """Return (X, y) with minority classes synthetically upsampled.

        Output is always dense (synthetic rows are dense by nature).
        """
        X, y = check_X_y(X, y, allow_sparse=True)
        dense = ensure_dense(X) if sp.issparse(X) else X
        rng = np.random.default_rng(self._seed)
        classes, counts = np.unique(y, return_counts=True)
        majority = int(counts.max())
        new_rows: list[np.ndarray] = [dense]
        new_labels: list[np.ndarray] = [y]
        for label, count in zip(classes, counts):
            deficit = majority - int(count)
            if deficit == 0:
                continue
            block = dense[y == label]
            if block.shape[0] == 1:
                # Nothing to interpolate with; replicate the single row.
                synthetic = np.repeat(block, deficit, axis=0)
            else:
                synthetic = self._synthesize(block, deficit, rng)
            new_rows.append(synthetic)
            new_labels.append(np.full(deficit, label, dtype=y.dtype))
        return np.vstack(new_rows), np.concatenate(new_labels)

    def _synthesize(
        self, block: np.ndarray, n_new: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate ``n_new`` synthetic rows from minority ``block``."""
        k = min(self._k_neighbors, block.shape[0] - 1)
        n_rows = block.shape[0]
        # Pairwise squared distances within the minority class, chunked
        # over rows so peak memory is chunk_size * n_rows.
        sq = np.sum(block**2, axis=1)
        neighbour_idx = np.empty((n_rows, k), dtype=np.int64)
        for start in range(0, n_rows, self._chunk_size):
            stop = min(start + self._chunk_size, n_rows)
            d2 = (
                sq[start:stop, None]
                + sq[None, :]
                - 2.0 * (block[start:stop] @ block.T)
            )
            d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
            neighbour_idx[start:stop] = np.argsort(d2, axis=1)[:, :k]
        base = rng.integers(0, block.shape[0], size=n_new)
        pick = rng.integers(0, k, size=n_new)
        neighbours = block[neighbour_idx[base, pick]]
        gaps = rng.random(size=(n_new, 1))
        return block[base] + gaps * (neighbours - block[base])
