"""L2-regularized logistic regression.

Not one of the paper's five classifiers, but a natural library member
for Ensemble Selection (the Caruana approach explicitly thrives on
diverse libraries) and a well-calibrated probabilistic baseline for the
ranking model.  Trained full-batch with gradient descent + momentum on
dense or sparse input.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X, check_X_y

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -50.0, 50.0)))


class LogisticRegression(BaseClassifier):
    """Binary logistic regression (L2, full-batch gradient descent).

    Args:
        l2: regularization strength.
        learning_rate: gradient step size.
        n_iterations: gradient steps.
        momentum: classical momentum coefficient.
        class_weight: ``None`` or ``"balanced"``.
        tolerance: stop when the gradient norm falls below this.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 1.0,
        n_iterations: int = 300,
        momentum: float = 0.9,
        class_weight: str | None = "balanced",
        tolerance: float = 1e-7,
    ) -> None:
        super().__init__()
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        if n_iterations < 1:
            raise ValidationError(f"n_iterations must be >= 1, got {n_iterations}")
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must be in [0, 1), got {momentum}")
        if class_weight not in (None, "balanced"):
            raise ValidationError(f"unsupported class_weight: {class_weight!r}")
        self._l2 = l2
        self._learning_rate = learning_rate
        self._n_iterations = n_iterations
        self._momentum = momentum
        self._class_weight = class_weight
        self._tolerance = tolerance
        self._w: np.ndarray | None = None
        self._b: float = 0.0

    def fit(self, X: Any, y: Any) -> "LogisticRegression":
        X, y = check_X_y(X, y, allow_sparse=True)
        encoded = self._store_classes(y)
        if len(self._fitted_classes()) != 2:
            raise ValidationError("LogisticRegression is binary; got > 2 classes")
        target = encoded.astype(np.float64)
        n_samples, n_features = X.shape
        if self._class_weight == "balanced":
            n_pos = float(target.sum())
            n_neg = float(n_samples - n_pos)
            weight = np.where(
                target == 1.0,  # repro-lint: disable=R006 (exact 0/1 label match)
                n_samples / (2.0 * max(n_pos, 1.0)),
                n_samples / (2.0 * max(n_neg, 1.0)),
            )
        else:
            weight = np.ones(n_samples)
        weight = weight / weight.sum()

        w = np.zeros(n_features)
        b = 0.0
        v_w = np.zeros(n_features)
        v_b = 0.0
        lr = self._learning_rate
        mu = self._momentum
        XT = X.T  # cached transpose view (cheap for CSR too)
        for _ in range(self._n_iterations):
            # CSR @ dense vector yields a dense ndarray directly.
            margin = np.asarray(X @ w).ravel()
            proba = _sigmoid(margin + b)
            error = (proba - target) * weight
            grad_w = np.asarray(XT @ error).ravel() + self._l2 * w
            grad_b = float(error.sum())
            if np.sqrt(grad_w @ grad_w + grad_b**2) < self._tolerance:
                break
            v_w = mu * v_w - lr * grad_w
            v_b = mu * v_b - lr * grad_b
            w = w + v_w
            b = b + v_b
        self._w = w
        self._b = b
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Log-odds of the positive (legitimate) class."""
        if self._w is None:
            raise NotFittedError("LogisticRegression has not been fitted")
        X = check_X(X, allow_sparse=True)
        if X.shape[1] != self._w.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._w.shape[0]}, "
                f"got {X.shape[1]}"
            )
        scores = np.asarray(X @ self._w).ravel()
        return scores + self._b

    def predict_proba(self, X: Any) -> np.ndarray:
        pos = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - pos, pos])
