"""Probability calibration (Platt scaling).

The paper maps non-probabilistic SVM output to {0, 1} for ranking.  A
production deployment usually wants calibrated probabilities instead;
:class:`PlattScaler` fits the classic sigmoid

    P(y = 1 | s) = 1 / (1 + exp(A * s + B))

to (score, label) pairs by regularized maximum likelihood (Platt 1999,
with the Lin/Weng/others target smoothing), and
:class:`CalibratedClassifier` wraps any fitted classifier exposing
``decision_scores`` so it gains a calibrated ``predict_proba``.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.devtools.contracts import check_row_stochastic, check_score_range
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier

__all__ = ["PlattScaler", "CalibratedClassifier"]


class PlattScaler:
    """Fit a sigmoid mapping real scores to probabilities.

    Args:
        max_iterations: Newton-step cap.
        tolerance: gradient-norm stopping threshold.
    """

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-10) -> None:
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._a: float | None = None
        self._b: float | None = None

    @property
    def coefficients(self) -> tuple[float, float]:
        """The fitted (A, B) of ``sigma(A s + B)``."""
        if self._a is None or self._b is None:
            raise NotFittedError("PlattScaler has not been fitted")
        return self._a, self._b

    def fit(self, scores: ArrayLike, y: ArrayLike) -> "PlattScaler":
        """Fit on held-out (score, binary-label) pairs.

        Uses Platt's smoothed targets ``(n_pos + 1) / (n_pos + 2)`` and
        ``1 / (n_neg + 2)`` to avoid overfitting tiny calibration sets,
        optimized with Newton iterations on the 2-parameter problem.
        """
        s = np.asarray(scores, dtype=np.float64).ravel()
        labels = np.asarray(y, dtype=np.int64).ravel()
        if s.shape != labels.shape:
            raise ValidationError("scores and y disagree in shape")
        if s.size == 0:
            raise ValidationError("cannot calibrate on an empty set")
        n_pos = float(np.sum(labels == 1))
        n_neg = float(labels.size - n_pos)
        if n_pos == 0 or n_neg == 0:
            raise ValidationError("calibration needs both classes present")
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        target = np.where(labels == 1, hi, lo)

        a, b = 0.0, float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
        for _ in range(self._max_iterations):
            z = a * s + b
            p = 1.0 / (1.0 + np.exp(-np.clip(-z, -50.0, 50.0)))
            # Note: Platt's convention is P = 1/(1+exp(A s + B)), i.e.
            # p above is sigma(-(a s + b)).
            d = p - target
            grad_a = float(np.dot(d, -s))
            grad_b = float(-np.sum(d))
            w = p * (1.0 - p)
            h_aa = float(np.dot(w, s * s)) + 1e-12
            h_ab = float(np.dot(w, s))
            h_bb = float(np.sum(w)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            step_a = (h_bb * grad_a - h_ab * grad_b) / det
            step_b = (h_aa * grad_b - h_ab * grad_a) / det
            a -= step_a
            b -= step_b
            if abs(step_a) + abs(step_b) < self._tolerance:
                break
        self._a, self._b = a, b
        return self

    @check_score_range(0.0, 1.0)
    def transform(self, scores: ArrayLike) -> np.ndarray:
        """Map scores to calibrated P(y = 1)."""
        a, b = self.coefficients
        s = np.asarray(scores, dtype=np.float64).ravel()
        z = np.clip(a * s + b, -50.0, 50.0)
        return 1.0 / (1.0 + np.exp(z))

    def fit_transform(self, scores: ArrayLike, y: ArrayLike) -> np.ndarray:
        """``fit(scores, y).transform(scores)``."""
        return self.fit(scores, y).transform(scores)


class CalibratedClassifier:
    """Wrap a fitted classifier with Platt-calibrated probabilities.

    Args:
        classifier: a fitted classifier exposing ``decision_scores``.
        scores: held-out decision scores for calibration.
        y: held-out labels aligned with ``scores``.
    """

    def __init__(
        self, classifier: BaseClassifier, scores: ArrayLike, y: ArrayLike
    ) -> None:
        self._classifier = classifier
        self._scaler = PlattScaler().fit(scores, y)

    @property
    def classes_(self) -> np.ndarray | None:
        """Class labels of the wrapped classifier."""
        return self._classifier.classes_

    @check_row_stochastic()
    def predict_proba(self, X: Any) -> np.ndarray:
        """Calibrated class probabilities, columns ``[P(0), P(1)]``."""
        pos = self._scaler.transform(self._classifier.decision_scores(X))
        return np.column_stack([1.0 - pos, pos])

    def predict(self, X: Any) -> np.ndarray:
        """Labels from thresholding the calibrated probability at 0.5."""
        classes = self._classifier._fitted_classes()
        return classes[(self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)]

    def decision_scores(self, X: Any) -> np.ndarray:
        """Calibrated positive-class probability (for ROC curves)."""
        return self.predict_proba(X)[:, 1]
