"""Cross-validation utilities.

The paper evaluates everything with 3-fold cross-validation (two folds
train, one tests), repeated over all fold rotations.  Folds are
stratified so every fold keeps the 12/88 class ratio — essential with
only ~167 legitimate examples.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np
from repro.exceptions import ValidationError

__all__ = ["StratifiedKFold", "train_test_split", "cross_val_predictions"]


class StratifiedKFold:
    """Stratified k-fold splitter.

    Args:
        n_splits: number of folds (paper: 3).
        shuffle: shuffle within each class before folding.
        seed: RNG seed used when shuffling.
    """

    def __init__(self, n_splits: int = 3, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self._n_splits = n_splits
        self._shuffle = shuffle
        self._seed = seed

    @property
    def n_splits(self) -> int:
        return self._n_splits

    def split(self, y: Sequence[int]) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) for each fold.

        Raises:
            ValueError: when any class has fewer rows than ``n_splits``.
        """
        labels = np.asarray(y).ravel()
        n = labels.shape[0]
        rng = np.random.default_rng(self._seed)
        fold_of = np.empty(n, dtype=np.int64)
        for label in np.unique(labels):
            idx = np.flatnonzero(labels == label)
            if idx.size < self._n_splits:
                raise ValidationError(
                    f"class {label} has {idx.size} rows < n_splits={self._n_splits}"
                )
            if self._shuffle:
                rng.shuffle(idx)
            # Deal class rows round-robin into folds.
            fold_of[idx] = np.arange(idx.size) % self._n_splits
        for fold in range(self._n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            yield train, test


def train_test_split(
    y: Sequence[int], test_fraction: float = 0.33, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified single split; returns (train_indices, test_indices)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    labels = np.asarray(y).ravel()
    rng = np.random.default_rng(seed)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label in np.unique(labels):
        idx = np.flatnonzero(labels == label)
        rng.shuffle(idx)
        n_test = max(1, int(round(test_fraction * idx.size)))
        if n_test >= idx.size:
            n_test = idx.size - 1
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    return (
        np.sort(np.concatenate(train_parts)),
        np.sort(np.concatenate(test_parts)),
    )


def cross_val_predictions(
    fit_predict: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
    y: Sequence[int],
    n_splits: int = 3,
    seed: int = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Drive k-fold CV over an arbitrary fit/predict closure.

    Args:
        fit_predict: callable ``(train_idx, test_idx) ->
            (predictions, scores)`` over the caller's own data store.
        y: labels, used only for stratification and returned per fold.
        n_splits: fold count.
        seed: fold RNG seed.

    Yields:
        ``(y_test, predictions, scores)`` per fold.
    """
    labels = np.asarray(y).ravel()
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, seed=seed)
    for train_idx, test_idx in splitter.split(labels):
        predictions, scores = fit_predict(train_idx, test_idx)
        yield labels[test_idx], np.asarray(predictions), np.asarray(scores)
