"""Learning substrate: classifiers, resampling, CV, metrics, ensembles.

Everything is implemented from scratch on NumPy/SciPy; there is no
scikit-learn dependency.
"""

from repro.ml.base import BaseClassifier, check_X, check_X_y, clone, ensure_dense
from repro.ml.calibration import CalibratedClassifier, PlattScaler
from repro.ml.ensemble import EnsembleSelection, LibraryModel
from repro.ml.metrics import (
    BinaryClassificationReport,
    accuracy,
    auc_roc,
    average_precision,
    classification_report,
    confusion_counts,
    f1_score,
    mean_confidence_interval,
    pairwise_orderedness,
    precision,
    precision_recall_curve,
    recall,
    roc_curve,
    threshold_for_precision,
)
from repro.ml.logistic import LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import (
    StratifiedKFold,
    cross_val_predictions,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.noise import inject_label_noise, noise_robustness_curve
from repro.ml.sampling import SAMPLER_ABBREVIATIONS, SMOTE, RandomUnderSampler
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVC
from repro.ml.tree import C45Tree

__all__ = [
    "BaseClassifier",
    "check_X",
    "check_X_y",
    "clone",
    "ensure_dense",
    "CalibratedClassifier",
    "PlattScaler",
    "EnsembleSelection",
    "LibraryModel",
    "BinaryClassificationReport",
    "accuracy",
    "auc_roc",
    "average_precision",
    "precision_recall_curve",
    "threshold_for_precision",
    "classification_report",
    "confusion_counts",
    "f1_score",
    "mean_confidence_interval",
    "pairwise_orderedness",
    "precision",
    "recall",
    "roc_curve",
    "LogisticRegression",
    "MLPClassifier",
    "inject_label_noise",
    "noise_robustness_curve",
    "StratifiedKFold",
    "cross_val_predictions",
    "train_test_split",
    "GaussianNB",
    "MultinomialNB",
    "SAMPLER_ABBREVIATIONS",
    "SMOTE",
    "RandomUnderSampler",
    "StandardScaler",
    "LinearSVC",
    "C45Tree",
]
