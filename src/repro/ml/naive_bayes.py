"""Naïve Bayes classifiers: Multinomial (NBM) and Gaussian (NB).

:class:`MultinomialNB` is the paper's NBM text classifier — the
membership probability P(c | d) ∝ P(c) Π P(t_k | c) with Laplace
smoothing — and accepts sparse TF-IDF matrices directly (fractional
"counts" are handled the standard way, by accumulating weights).

:class:`GaussianNB` is the paper's plain NB, used on the dense
low-dimensional feature sets (N-Gram-Graph similarities, TrustRank
scores).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X, check_X_y, ensure_dense

__all__ = ["MultinomialNB", "GaussianNB"]


class MultinomialNB(BaseClassifier):
    """Multinomial Naïve Bayes with Laplace (add-alpha) smoothing.

    Args:
        alpha: smoothing pseudo-count added to every (class, term) pair.
        fit_prior: when False, use a uniform class prior instead of the
            empirical one (useful under heavy class imbalance).
    """

    def __init__(self, alpha: float = 1.0, fit_prior: bool = True) -> None:
        super().__init__()
        if alpha <= 0.0:
            raise ValidationError(f"alpha must be > 0, got {alpha}")
        self._alpha = alpha
        self._fit_prior = fit_prior
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: np.ndarray | None = None

    def fit(self, X: Any, y: Any) -> "MultinomialNB":
        X, y = check_X_y(X, y, allow_sparse=True)
        encoded = self._store_classes(y)
        n_classes = len(self._fitted_classes())
        n_features = X.shape[1]
        counts = np.zeros((n_classes, n_features), dtype=np.float64)
        class_sizes = np.zeros(n_classes, dtype=np.float64)
        for k in range(n_classes):
            mask = encoded == k
            class_sizes[k] = float(np.sum(mask))
            block = X[mask]
            if sp.issparse(block):
                counts[k] = np.asarray(block.sum(axis=0)).ravel()
            else:
                counts[k] = block.sum(axis=0)
        if np.any(counts < 0):
            raise ValidationError("MultinomialNB requires non-negative features")
        smoothed = counts + self._alpha
        self._log_likelihood = np.log(smoothed) - np.log(
            smoothed.sum(axis=1, keepdims=True)
        )
        if self._fit_prior:
            self._log_prior = np.log(class_sizes / class_sizes.sum())
        else:
            self._log_prior = np.full(n_classes, -np.log(n_classes))
        return self

    def _joint_log_likelihood(self, X: Any) -> np.ndarray:
        if self._log_likelihood is None or self._log_prior is None:
            raise NotFittedError("MultinomialNB has not been fitted")
        X = check_X(X, allow_sparse=True)
        if X.shape[1] != self._log_likelihood.shape[1]:
            raise ValidationError(
                f"feature-count mismatch: fitted on "
                f"{self._log_likelihood.shape[1]}, got {X.shape[1]}"
            )
        # CSR @ dense matrix yields a dense ndarray directly.
        jll = np.asarray(X @ self._log_likelihood.T)
        return jll + self._log_prior

    def predict_proba(self, X: Any) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba


class GaussianNB(BaseClassifier):
    """Gaussian Naïve Bayes for dense continuous features.

    Args:
        var_smoothing: fraction of the largest feature variance added to
            every per-class variance for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        if var_smoothing < 0.0:
            raise ValidationError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self._var_smoothing = var_smoothing
        self._theta: np.ndarray | None = None  # per-class means
        self._var: np.ndarray | None = None  # per-class variances
        self._log_prior: np.ndarray | None = None

    def fit(self, X: Any, y: Any) -> "GaussianNB":
        X = ensure_dense(X)
        X, y = check_X_y(X, y, allow_sparse=False)
        encoded = self._store_classes(y)
        n_classes = len(self._fitted_classes())
        n_features = X.shape[1]
        theta = np.zeros((n_classes, n_features), dtype=np.float64)
        var = np.zeros((n_classes, n_features), dtype=np.float64)
        sizes = np.zeros(n_classes, dtype=np.float64)
        for k in range(n_classes):
            block = X[encoded == k]
            sizes[k] = block.shape[0]
            theta[k] = block.mean(axis=0)
            var[k] = block.var(axis=0)
        eps = self._var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self._theta = theta
        self._var = var + eps
        self._log_prior = np.log(sizes / sizes.sum())
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._theta is None or self._var is None or self._log_prior is None:
            raise NotFittedError("GaussianNB has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._theta.shape[1]:
            raise ValidationError(
                f"feature-count mismatch: fitted on "
                f"{self._theta.shape[1]}, got {X.shape[1]}"
            )
        n_classes = self._theta.shape[0]
        jll = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for k in range(n_classes):
            diff = X - self._theta[k]
            jll[:, k] = self._log_prior[k] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self._var[k]) + diff**2 / self._var[k],
                axis=1,
            )
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
