"""Linear Support Vector Machine trained with mini-batch Pegasos SGD.

The paper uses Weka's SVM on TF-IDF vectors and on N-Gram-Graph
similarity features.  :class:`LinearSVC` implements a linear soft-margin
SVM via the mini-batch Pegasos primal sub-gradient method
(Shalev-Shwartz et al., 2007; mini-batch iterations per the 2011
journal version), which handles sparse high-dimensional text matrices
efficiently: each step computes all batch margins with one
matrix-vector product and applies one aggregated update, so the hot
loop is a handful of numpy/scipy kernels instead of a per-sample
Python loop.  ``batch_size=1`` reproduces the classic per-sample
Pegasos schedule exactly; the per-sample Python-loop implementation is
kept as :func:`repro.perf.reference.reference_pegasos_fit`, the
equivalence oracle pinned by ``tests/perf``.

SVMs are non-probabilistic; the paper maps their output to {0, 1} for
ranking.  For AUC computation we expose the raw margin through
``decision_function`` and a sigmoid-squashed pseudo-probability through
``predict_proba`` (a fixed-slope Platt approximation — adequate for
ranking by margin, which is what AUC measures).

Class imbalance support: ``class_weight="balanced"`` scales each
example's loss inversely to its class frequency, matching the paper's
observation that SVM performs well even without resampling.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X, check_X_y

__all__ = ["LinearSVC", "pegasos_weights"]


def pegasos_weights(
    X: Any,
    signs: np.ndarray,
    sample_weight: np.ndarray,
    lam: float,
    n_epochs: int,
    seed: int,
    batch_size: int,
    init_weights: np.ndarray | None = None,
    t0: int = 0,
) -> np.ndarray:
    """Mini-batch Pegasos on ±1 ``signs``; returns the augmented weights.

    The returned vector has ``n_features + 1`` entries — the bias is
    folded in as a constant feature, so it is regularized with ``w``
    and Pegasos's large early steps cannot make it drift unboundedly.

    Per batch ``B_t`` (global step counter ``t``, ``eta = 1/(lam*t)``):
    margins of the whole batch are computed against the batch-start
    weights with one matvec, then ``w <- (1 - eta*lam) * w`` and the
    averaged sub-gradient of the margin violators is added in one
    vector op (dense) or one CSR ``X.T @ coefs`` product (sparse, no
    densification).  With ``batch_size=1`` this is exactly the classic
    per-sample Pegasos update sequence.

    Args:
        X: ``(n_samples, n_features)`` dense ndarray or CSR matrix.
        signs: ±1.0 per sample.
        sample_weight: per-sample loss weight.
        lam: regularization strength λ.
        n_epochs: full passes over the training set.
        seed: RNG seed controlling the example order.
        batch_size: samples per sub-gradient step.
        init_weights: optional augmented ``n_features + 1`` start
            weights (a previous run's return value).  The streaming
            layer warm-starts each tick's refresh from the prior
            tick's weights so a handful of epochs suffices; the
            defaults (zeros, ``t0=0``) reproduce the cold schedule
            bit-for-bit.
        t0: global step counter to resume from.  Continuing with the
            prior run's final ``t`` keeps the ``1/(lam*t)`` step sizes
            small, so the warm start refines rather than overwrites.

    Raises:
        ValidationError: ``init_weights`` of the wrong shape or a
            negative ``t0``.
    """
    n_samples, n_features = X.shape
    rng = np.random.default_rng(seed)
    if init_weights is None:
        w = np.zeros(n_features + 1, dtype=np.float64)
    else:
        w = np.asarray(init_weights, dtype=np.float64).copy()
        if w.shape != (n_features + 1,):
            raise ValidationError(
                f"init_weights must have shape ({n_features + 1},), "
                f"got {w.shape}"
            )
    if t0 < 0:
        raise ValidationError(f"t0 must be >= 0, got {t0}")
    is_sparse = sp.issparse(X)
    coef_full = sample_weight * signs
    t = t0
    for _ in range(n_epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, batch_size):
            batch = order[start : start + batch_size]
            t += 1
            eta = 1.0 / (lam * t)
            Xb = X[batch]
            margins = signs[batch] * (Xb @ w[:-1] + w[-1])
            w *= 1.0 - eta * lam
            violators = margins < 1.0
            if not np.any(violators):
                continue
            step = eta / batch.shape[0]
            coefs = step * coef_full[batch[violators]]
            Xv = Xb[violators]
            if is_sparse:
                w[:-1] += Xv.T @ coefs
            else:
                w[:-1] += Xv.T @ coefs
            w[-1] += coefs.sum()
    return w


class LinearSVC(BaseClassifier):
    """Binary linear SVM (hinge loss, L2 regularization) via Pegasos.

    Args:
        lam: regularization strength λ (weight of ||w||²/2).
        n_epochs: full passes over the training set.
        class_weight: ``None`` or ``"balanced"``.
        seed: RNG seed controlling example order.
        batch_size: samples per Pegasos sub-gradient step; 1 recovers
            the classic per-sample schedule, larger batches trade a
            slightly coarser step sequence for vectorized margin and
            update computation.
    """

    def __init__(
        self,
        lam: float = 1e-4,
        n_epochs: int = 30,
        class_weight: str | None = "balanced",
        seed: int = 0,
        batch_size: int = 32,
    ) -> None:
        super().__init__()
        if lam <= 0.0:
            raise ValidationError(f"lam must be > 0, got {lam}")
        if n_epochs < 1:
            raise ValidationError(f"n_epochs must be >= 1, got {n_epochs}")
        if class_weight not in (None, "balanced"):
            raise ValidationError(f"unsupported class_weight: {class_weight!r}")
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        self._lam = lam
        self._n_epochs = n_epochs
        self._class_weight = class_weight
        self._seed = seed
        self._batch_size = batch_size
        self._w: np.ndarray | None = None
        self._b: float = 0.0
        self._t: int = 0

    def _prepare(self, X: Any, y: Any) -> tuple[Any, np.ndarray, np.ndarray]:
        """Validate ``(X, y)`` and derive signs + balanced weights."""
        X, y = check_X_y(X, y, allow_sparse=True)
        encoded = self._store_classes(y)
        if len(self._fitted_classes()) != 2:
            raise ValidationError("LinearSVC is binary; got more than 2 classes")
        # Map to {-1, +1}; +1 is the larger label (legitimate).
        signs = np.where(encoded == 1, 1.0, -1.0)
        n_samples = X.shape[0]
        if self._class_weight == "balanced":
            n_pos = float(np.sum(signs > 0))
            n_neg = float(n_samples - n_pos)
            w_pos = n_samples / (2.0 * max(n_pos, 1.0))
            w_neg = n_samples / (2.0 * max(n_neg, 1.0))
        else:
            w_pos = w_neg = 1.0
        sample_weight = np.where(signs > 0, w_pos, w_neg)
        return X, signs, sample_weight

    def _steps_per_pass(self, n_samples: int) -> int:
        return -(-n_samples // self._batch_size)

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        X, signs, sample_weight = self._prepare(X, y)
        w = pegasos_weights(
            X,
            signs,
            sample_weight,
            lam=self._lam,
            n_epochs=self._n_epochs,
            seed=self._seed,
            batch_size=self._batch_size,
        )
        self._w = w[:-1]
        self._b = float(w[-1])
        self._t = self._n_epochs * self._steps_per_pass(X.shape[0])
        return self

    def warm_fit(
        self, X: Any, y: Any, *, n_epochs: int = 3, seed: int | None = None
    ) -> "LinearSVC":
        """Refine the fitted hyperplane with a few extra Pegasos passes.

        The streaming layer calls this once per tick: the current
        weights seed :func:`pegasos_weights` (``init_weights``) and the
        global step counter continues where training left off, so the
        ``1/(lam*t)`` learning rates stay small and the update nudges
        the margin toward the changed examples instead of restarting
        the schedule.  ``seed`` varies the shuffle order between ticks
        (defaults to the constructor seed).

        Raises:
            NotFittedError: no prior :meth:`fit`.
            ValidationError: feature-count mismatch with the fit.
        """
        if self._w is None:
            raise NotFittedError("warm_fit requires a prior fit")
        if n_epochs < 1:
            raise ValidationError(f"n_epochs must be >= 1, got {n_epochs}")
        X, signs, sample_weight = self._prepare(X, y)
        if X.shape[1] != self._w.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._w.shape[0]}, "
                f"got {X.shape[1]}"
            )
        w = pegasos_weights(
            X,
            signs,
            sample_weight,
            lam=self._lam,
            n_epochs=n_epochs,
            seed=self._seed if seed is None else seed,
            batch_size=self._batch_size,
            init_weights=np.concatenate([self._w, [self._b]]),
            t0=self._t,
        )
        self._w = w[:-1]
        self._b = float(w[-1])
        self._t += n_epochs * self._steps_per_pass(X.shape[0])
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Signed margin; positive = legitimate side of the hyperplane."""
        if self._w is None:
            raise NotFittedError("LinearSVC has not been fitted")
        X = check_X(X, allow_sparse=True)
        if X.shape[1] != self._w.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._w.shape[0]}, "
                f"got {X.shape[1]}"
            )
        # CSR @ dense vector yields a dense ndarray directly.
        scores = np.asarray(X @ self._w).ravel()
        return scores + self._b

    def predict_proba(self, X: Any) -> np.ndarray:
        """Sigmoid of the margin (fixed-slope Platt approximation)."""
        margin = self.decision_function(X)
        pos = 1.0 / (1.0 + np.exp(-np.clip(margin, -50.0, 50.0)))
        return np.column_stack([1.0 - pos, pos])

    def decision_scores(self, X: Any) -> np.ndarray:
        """Raw margin — the most faithful ranking signal for an SVM."""
        return self.decision_function(X)
