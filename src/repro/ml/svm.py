"""Linear Support Vector Machine trained with Pegasos SGD.

The paper uses Weka's SVM on TF-IDF vectors and on N-Gram-Graph
similarity features.  :class:`LinearSVC` implements a linear soft-margin
SVM via the Pegasos primal sub-gradient method (Shalev-Shwartz et al.,
2007), which handles sparse high-dimensional text matrices efficiently.

SVMs are non-probabilistic; the paper maps their output to {0, 1} for
ranking.  For AUC computation we expose the raw margin through
``decision_function`` and a sigmoid-squashed pseudo-probability through
``predict_proba`` (a fixed-slope Platt approximation — adequate for
ranking by margin, which is what AUC measures).

Class imbalance support: ``class_weight="balanced"`` scales each
example's loss inversely to its class frequency, matching the paper's
observation that SVM performs well even without resampling.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseClassifier, check_X, check_X_y

__all__ = ["LinearSVC"]


class LinearSVC(BaseClassifier):
    """Binary linear SVM (hinge loss, L2 regularization) via Pegasos.

    Args:
        lam: regularization strength λ (weight of ||w||²/2).
        n_epochs: full passes over the training set.
        class_weight: ``None`` or ``"balanced"``.
        seed: RNG seed controlling example order.
    """

    def __init__(
        self,
        lam: float = 1e-4,
        n_epochs: int = 30,
        class_weight: str | None = "balanced",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if lam <= 0.0:
            raise ValidationError(f"lam must be > 0, got {lam}")
        if n_epochs < 1:
            raise ValidationError(f"n_epochs must be >= 1, got {n_epochs}")
        if class_weight not in (None, "balanced"):
            raise ValidationError(f"unsupported class_weight: {class_weight!r}")
        self._lam = lam
        self._n_epochs = n_epochs
        self._class_weight = class_weight
        self._seed = seed
        self._w: np.ndarray | None = None
        self._b: float = 0.0

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        X, y = check_X_y(X, y, allow_sparse=True)
        encoded = self._store_classes(y)
        if len(self._fitted_classes()) != 2:
            raise ValidationError("LinearSVC is binary; got more than 2 classes")
        # Map to {-1, +1}; +1 is the larger label (legitimate).
        signs = np.where(encoded == 1, 1.0, -1.0)
        n_samples, n_features = X.shape
        if self._class_weight == "balanced":
            n_pos = float(np.sum(signs > 0))
            n_neg = float(n_samples - n_pos)
            w_pos = n_samples / (2.0 * max(n_pos, 1.0))
            w_neg = n_samples / (2.0 * max(n_neg, 1.0))
        else:
            w_pos = w_neg = 1.0
        sample_weight = np.where(signs > 0, w_pos, w_neg)

        rng = np.random.default_rng(self._seed)
        # The bias is folded into the weight vector as an augmented
        # constant feature, so it is regularized with w and Pegasos's
        # large early steps cannot make it drift unboundedly.
        w = np.zeros(n_features + 1, dtype=np.float64)
        is_sparse = sp.issparse(X)
        t = 0
        for _ in range(self._n_epochs):
            order = rng.permutation(n_samples)
            for i in order:
                t += 1
                eta = 1.0 / (self._lam * t)
                if is_sparse:
                    row = X.getrow(i)
                    margin = signs[i] * ((row @ w[:-1]).item() + w[-1])
                else:
                    row = X[i]
                    margin = signs[i] * (float(row @ w[:-1]) + w[-1])
                w *= 1.0 - eta * self._lam
                if margin < 1.0:
                    step = eta * sample_weight[i] * signs[i]
                    if is_sparse:
                        w[row.indices] += step * row.data
                    else:
                        w[:-1] += step * row
                    w[-1] += step
        self._w = w[:-1]
        self._b = float(w[-1])
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Signed margin; positive = legitimate side of the hyperplane."""
        if self._w is None:
            raise NotFittedError("LinearSVC has not been fitted")
        X = check_X(X, allow_sparse=True)
        if X.shape[1] != self._w.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._w.shape[0]}, "
                f"got {X.shape[1]}"
            )
        scores = X @ self._w
        if sp.issparse(scores):
            scores = np.asarray(scores.todense()).ravel()
        return np.asarray(scores).ravel() + self._b

    def predict_proba(self, X: Any) -> np.ndarray:
        """Sigmoid of the margin (fixed-slope Platt approximation)."""
        margin = self.decision_function(X)
        pos = 1.0 / (1.0 + np.exp(-np.clip(margin, -50.0, 50.0)))
        return np.column_stack([1.0 - pos, pos])

    def decision_scores(self, X: Any) -> np.ndarray:
        """Raw margin — the most faithful ranking signal for an SVM."""
        return self.decision_function(X)
