"""Evaluation measures (Section 6.2 of the paper).

Implements exactly the measures the paper reports:

* overall accuracy;
* per-class precision and recall (the paper reports them for both the
  *legitimate* (positive) and *illegitimate* (negative) class);
* the ROC curve and the area under it (AUC-ROC);
* normal-approximation confidence intervals over cross-validation folds;
* pairwise orderedness for the ranking problem (Problem 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from numpy.typing import ArrayLike

from repro.devtools.contracts import check_score_range
from repro.exceptions import ValidationError

__all__ = [
    "confusion_counts",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "roc_curve",
    "auc_roc",
    "auc_roc_many",
    "precision_recall_curve",
    "average_precision",
    "threshold_for_precision",
    "mean_confidence_interval",
    "pairwise_orderedness",
    "BinaryClassificationReport",
    "classification_report",
]


def _as_label_arrays(
    y_true: ArrayLike, y_pred: ArrayLike
) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true).ravel()
    yp = np.asarray(y_pred).ravel()
    if yt.shape != yp.shape:
        raise ValidationError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise ValidationError("empty label arrays")
    return yt, yp


def confusion_counts(
    y_true: ArrayLike, y_pred: ArrayLike, positive_label: int = 1
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, tn, fn)`` with respect to ``positive_label``."""
    yt, yp = _as_label_arrays(y_true, y_pred)
    pos_true = yt == positive_label
    pos_pred = yp == positive_label
    tp = int(np.sum(pos_true & pos_pred))
    fp = int(np.sum(~pos_true & pos_pred))
    tn = int(np.sum(~pos_true & ~pos_pred))
    fn = int(np.sum(pos_true & ~pos_pred))
    return tp, fp, tn, fn


@check_score_range(0.0, 1.0)
def accuracy(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Overall accuracy: fraction of correctly classified instances."""
    yt, yp = _as_label_arrays(y_true, y_pred)
    return float(np.mean(yt == yp))


def precision(
    y_true: ArrayLike, y_pred: ArrayLike, positive_label: int = 1
) -> float:
    """Precision for ``positive_label``; 0.0 when nothing was predicted
    positive (convention for the degenerate case)."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred, positive_label)
    denom = tp + fp
    return tp / denom if denom else 0.0


def recall(
    y_true: ArrayLike, y_pred: ArrayLike, positive_label: int = 1
) -> float:
    """Recall for ``positive_label``; 0.0 when the class is absent."""
    tp, _, _, fn = confusion_counts(y_true, y_pred, positive_label)
    denom = tp + fn
    return tp / denom if denom else 0.0


def f1_score(
    y_true: ArrayLike, y_pred: ArrayLike, positive_label: int = 1
) -> float:
    """Harmonic mean of precision and recall for ``positive_label``."""
    p = precision(y_true, y_pred, positive_label)
    r = recall(y_true, y_pred, positive_label)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def roc_curve(
    y_true: ArrayLike, scores: ArrayLike, positive_label: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve.

    Args:
        y_true: true labels.
        scores: real-valued scores, higher = more positive.
        positive_label: which label counts as positive.

    Returns:
        ``(fpr, tpr, thresholds)`` arrays; thresholds descending,
        starting above the max score so the curve begins at (0, 0).
    """
    yt = np.asarray(y_true).ravel()
    sc = np.asarray(scores, dtype=np.float64).ravel()
    if yt.shape != sc.shape:
        raise ValidationError(f"shape mismatch: {yt.shape} vs {sc.shape}")
    pos = yt == positive_label
    n_pos = int(np.sum(pos))
    n_neg = int(yt.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("ROC requires both positive and negative examples")
    order = np.argsort(-sc, kind="stable")
    sorted_scores = sc[order]
    sorted_pos = pos[order].astype(np.float64)
    # Collapse ties: only keep the last index of each distinct score.
    distinct = np.where(np.diff(sorted_scores))[0]
    cut = np.r_[distinct, sorted_scores.size - 1]
    tp_cum = np.cumsum(sorted_pos)[cut]
    fp_cum = (cut + 1) - tp_cum
    tpr = np.r_[0.0, tp_cum / n_pos]
    fpr = np.r_[0.0, fp_cum / n_neg]
    thresholds = np.r_[sorted_scores[0] + 1.0, sorted_scores[cut]]
    return fpr, tpr, thresholds


@check_score_range(0.0, 1.0)
def auc_roc(
    y_true: ArrayLike, scores: ArrayLike, positive_label: int = 1
) -> float:
    """Area under the ROC curve (trapezoidal rule over the exact curve)."""
    fpr, tpr, _ = roc_curve(y_true, scores, positive_label)
    return float(np.trapezoid(tpr, fpr))


def auc_roc_many(
    y_true: ArrayLike, scores: ArrayLike, positive_label: int = 1
) -> np.ndarray:
    """AUC-ROC of many score rows against one label vector at once.

    Uses the Mann-Whitney rank statistic with average ranks for ties,
    which equals the trapezoidal area over the tie-collapsed ROC curve
    computed by :func:`auc_roc` (up to floating-point rounding, well
    within 1e-9).  One argsort per row replaces one full ROC-curve
    construction per row, which is what makes batched ensemble
    hill-climbing cheap.

    Args:
        y_true: true labels, shape ``(n,)``.
        scores: score matrix, shape ``(m, n)`` — one row per candidate.
        positive_label: which label counts as positive.

    Returns:
        Array of ``m`` AUC values in [0, 1].
    """
    yt = np.asarray(y_true).ravel()
    mat = np.asarray(scores, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[1] != yt.size:
        raise ValidationError(
            f"scores must be (m, {yt.size}), got {mat.shape}"
        )
    pos = yt == positive_label
    n_pos = int(np.sum(pos))
    n_neg = int(yt.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("ROC requires both positive and negative examples")
    m, n = mat.shape
    order = np.argsort(mat, axis=1, kind="stable")
    svals = np.take_along_axis(mat, order, axis=1)
    idx = np.arange(n, dtype=np.float64)
    # Average ranks over tie groups: for each sorted position find the
    # first and last index of its group of equal values.
    new_group = np.ones((m, n), dtype=bool)
    new_group[:, 1:] = np.diff(svals, axis=1) != 0.0  # repro-lint: disable=R006 (exact tie-group detection)
    first = np.maximum.accumulate(np.where(new_group, idx, 0.0), axis=1)
    is_last = np.ones((m, n), dtype=bool)
    is_last[:, :-1] = new_group[:, 1:]
    last = np.minimum.accumulate(
        np.where(is_last, idx, np.inf)[:, ::-1], axis=1
    )[:, ::-1]
    avg_rank_sorted = 0.5 * (first + last) + 1.0
    ranks = np.empty_like(mat)
    np.put_along_axis(ranks, order, avg_rank_sorted, axis=1)
    rank_sum_pos = ranks[:, pos].sum(axis=1)
    denom = float(n_pos) * float(n_neg)
    return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / denom


def precision_recall_curve(
    y_true: ArrayLike, scores: ArrayLike, positive_label: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall pairs at every distinct score threshold.

    Returns:
        ``(precision, recall, thresholds)``; recall is non-decreasing
        along the arrays (thresholds descending), with the conventional
        (precision=1, recall=0) starting point prepended.
    """
    yt = np.asarray(y_true).ravel()
    sc = np.asarray(scores, dtype=np.float64).ravel()
    if yt.shape != sc.shape:
        raise ValidationError(f"shape mismatch: {yt.shape} vs {sc.shape}")
    pos = yt == positive_label
    n_pos = int(np.sum(pos))
    if n_pos == 0:
        raise ValidationError("precision-recall requires positive examples")
    order = np.argsort(-sc, kind="stable")
    sorted_scores = sc[order]
    sorted_pos = pos[order].astype(np.float64)
    distinct = np.where(np.diff(sorted_scores))[0]
    cut = np.r_[distinct, sorted_scores.size - 1]
    tp = np.cumsum(sorted_pos)[cut]
    predicted = (cut + 1).astype(np.float64)
    prec = np.r_[1.0, tp / predicted]
    rec = np.r_[0.0, tp / n_pos]
    thresholds = np.r_[sorted_scores[0] + 1.0, sorted_scores[cut]]
    return prec, rec, thresholds


def average_precision(
    y_true: ArrayLike, scores: ArrayLike, positive_label: int = 1
) -> float:
    """Average precision (area under the PR curve, step interpolation)."""
    prec, rec, _ = precision_recall_curve(y_true, scores, positive_label)
    return float(np.sum(np.diff(rec) * prec[1:]))


def threshold_for_precision(
    y_true: ArrayLike,
    scores: ArrayLike,
    min_precision: float,
    positive_label: int = 1,
) -> float | None:
    """Smallest score threshold achieving at least ``min_precision``.

    The operational knob for a verification deployment: "only
    auto-whitelist pharmacies when legitimate precision stays above X".

    Returns:
        The threshold (predict positive when ``score >= threshold``)
        maximizing recall subject to the precision floor, or ``None``
        when no threshold achieves it.
    """
    if not 0.0 < min_precision <= 1.0:
        raise ValidationError(f"min_precision must be in (0, 1], got {min_precision}")
    prec, rec, thresholds = precision_recall_curve(
        y_true, scores, positive_label
    )
    feasible = np.flatnonzero(prec[1:] >= min_precision) + 1
    if feasible.size == 0:
        return None
    best = feasible[np.argmax(rec[feasible])]
    return float(thresholds[best])


def mean_confidence_interval(
    values: ArrayLike, confidence: float = 0.95
) -> tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval.

    The paper reports 95% confidence intervals across cross-validation
    folds.  For tiny fold counts a Student-t critical value is used.

    Returns:
        ``(mean, half_width)``; half_width is 0.0 for a single value.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValidationError("no values to aggregate")
    mean = float(np.mean(arr))
    if arr.size == 1:
        return mean, 0.0
    from scipy import stats

    sem = float(np.std(arr, ddof=1) / np.sqrt(arr.size))
    t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return mean, t_crit * sem


@check_score_range(0.0, 1.0)
def pairwise_orderedness(ranks: ArrayLike, oracle_labels: ArrayLike) -> float:
    """Pairwise orderedness of a legitimacy ranking (Section 6.2).

    A pair (p, q) is a *violation* when an illegitimate pharmacy
    received a rank score >= that of a legitimate pharmacy.  The
    measure is the fraction of ordered pairs without a violation:

        pairord(X) = (|X| - violations) / |X|

    Args:
        ranks: rank scores (higher = more legitimate).
        oracle_labels: ground-truth labels (1 legit, 0 illegit).

    Returns:
        Value in [0, 1]; 1.0 means every legitimate pharmacy outranks
        every illegitimate one strictly.
    """
    r = np.asarray(ranks, dtype=np.float64).ravel()
    y = np.asarray(oracle_labels).ravel()
    if r.shape != y.shape:
        raise ValidationError(f"shape mismatch: {r.shape} vs {y.shape}")
    legit_scores = r[y == 1]
    illegit_scores = r[y == 0]
    n_pairs = legit_scores.size * illegit_scores.size
    if n_pairs == 0:
        raise ValidationError("pairwise orderedness needs both classes present")
    # Violation: rank(illegit) >= rank(legit).  Count via sorting:
    # for each legit score, how many illegit scores are >= it.
    sorted_illegit = np.sort(illegit_scores)
    # index of first illegit >= legit score
    idx = np.searchsorted(sorted_illegit, legit_scores, side="left")
    violations = int(np.sum(sorted_illegit.size - idx))
    return (n_pairs - violations) / n_pairs


@dataclass(frozen=True, slots=True)
class BinaryClassificationReport:
    """All paper-reported classification measures for one evaluation."""

    accuracy: float
    legitimate_precision: float
    legitimate_recall: float
    illegitimate_precision: float
    illegitimate_recall: float
    auc_roc: float

    def as_dict(self) -> dict[str, float]:
        """The report as a measure-name -> value mapping."""
        return {
            "accuracy": self.accuracy,
            "legitimate_precision": self.legitimate_precision,
            "legitimate_recall": self.legitimate_recall,
            "illegitimate_precision": self.illegitimate_precision,
            "illegitimate_recall": self.illegitimate_recall,
            "auc_roc": self.auc_roc,
        }


def classification_report(
    y_true: ArrayLike,
    y_pred: ArrayLike,
    scores: ArrayLike,
    positive_label: int = 1,
    negative_label: int = 0,
) -> BinaryClassificationReport:
    """Build the full report the paper's tables are drawn from.

    Args:
        y_true: true labels.
        y_pred: hard predictions.
        scores: real-valued positive-class scores (for AUC).
        positive_label: the *legitimate* label (default 1).
        negative_label: the *illegitimate* label (default 0).
    """
    return BinaryClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        legitimate_precision=precision(y_true, y_pred, positive_label),
        legitimate_recall=recall(y_true, y_pred, positive_label),
        illegitimate_precision=precision(y_true, y_pred, negative_label),
        illegitimate_recall=recall(y_true, y_pred, negative_label),
        auc_roc=auc_roc(y_true, scores, positive_label),
    )
