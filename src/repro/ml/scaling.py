"""Feature standardization."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import ensure_dense

__all__ = ["StandardScaler"]


class StandardScaler:
    """Standardize dense features to zero mean and unit variance.

    Constant features are left centered but unscaled (divisor 1.0).
    """

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: Any) -> "StandardScaler":
        X = ensure_dense(X)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # repro-lint: disable=R006 (exact zero-division guard)
        self._scale = std
        return self

    def transform(self, X: Any) -> np.ndarray:
        if self._mean is None or self._scale is None:
            raise NotFittedError("StandardScaler has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._mean.shape[0]:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._mean.shape[0]}, "
                f"got {X.shape[1]}"
            )
        return (X - self._mean) / self._scale

    def fit_transform(self, X: Any) -> np.ndarray:
        return self.fit(X).transform(X)
