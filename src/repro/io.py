"""Persistence: save/load models and export/import corpora.

* Fitted models (any library object, e.g. a
  :class:`~repro.core.verifier.PharmacyVerifier`) round-trip through
  pickle with a format header and version check, so stale artifacts
  fail loudly instead of mis-predicting.
* Corpora export to a line-oriented JSON format (one pharmacy per line:
  domain, label, ground-truth flags, pages) so labelled crawls can be
  shared without pickling arbitrary code.

All writers are *atomic*: content goes to a sibling temporary file that
is :func:`os.replace`-d over the destination, so a crash mid-write
never leaves a truncated artifact for a later run to trip over.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, IO

from repro.data.corpus import PharmacyCorpus
from repro.data.synthesis import PharmacyRecord
from repro.exceptions import ValidationError
from repro.web.page import WebPage
from repro.web.site import Website

__all__ = [
    "save_model",
    "load_model",
    "export_corpus",
    "import_corpus",
    "atomic_write",
    "atomic_write_text",
    "site_record_to_row",
    "site_record_from_row",
]

_MAGIC = "repro-model"
_FORMAT_VERSION = 1


class PersistenceError(ValidationError):
    """Raised for unreadable or incompatible persisted artifacts.

    Subclasses :class:`~repro.exceptions.ValidationError`: a corrupt
    artifact is invalid input, and callers validating inputs wholesale
    should catch it without importing this module.
    """


def atomic_write(
    path: str | Path, mode: str, writer: Callable[[IO[Any]], None], **open_kwargs: Any
) -> None:
    """Write via a sibling temp file + :func:`os.replace` (atomic on
    POSIX within one filesystem); the temp file is removed on failure.

    The temp name is unique per writer (:func:`tempfile.mkstemp`), so
    concurrent writers to the same destination never clobber each
    other's half-written file — each replace lands a complete
    artifact, last writer wins.

    Args:
        path: destination file.
        mode: ``open`` mode for the temp file (e.g. ``"w"``, ``"wb"``).
        writer: callback receiving the open temp-file handle.
        open_kwargs: forwarded to :func:`open` (e.g. ``encoding``).
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, **open_kwargs) as fh:
            writer(fh)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, content: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``content``."""
    atomic_write(path, "w", lambda fh: fh.write(content), encoding="utf-8")


def save_model(model: Any, path: str | Path) -> None:
    """Pickle a (fitted) model with a format header (atomically)."""
    payload = {
        "magic": _MAGIC,
        "format_version": _FORMAT_VERSION,
        "model": model,
    }
    atomic_write(path, "wb", lambda fh: pickle.dump(payload, fh))


def load_model(path: str | Path) -> Any:
    """Load a model saved by :func:`save_model`.

    Raises:
        PersistenceError: missing file, wrong format, or version skew.
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError as exc:
        raise PersistenceError(f"no such model file: {path}") from exc
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        ValueError,
    ) as exc:
        # Truncated or corrupt pickles surface any of these, depending
        # on where the stream breaks.
        raise PersistenceError(f"corrupt model file: {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise PersistenceError(f"not a repro model file: {path}")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"model format version {version} != supported {_FORMAT_VERSION}"
        )
    return payload["model"]


def site_record_to_row(site: Website, record: PharmacyRecord) -> dict[str, Any]:
    """The JSON-line row of one (site, record) pair.

    Shared by :func:`export_corpus` and the sharded corpus writers in
    :mod:`repro.data.sharding`, so every on-disk pharmacy row uses one
    format regardless of which path wrote it.
    """
    return {
        "domain": record.domain,
        "label": record.label,
        "flags": {
            "is_affiliate_hub": record.is_affiliate_hub,
            "is_affiliate_member": record.is_affiliate_member,
            "is_outlier": record.is_outlier,
            "is_asocial": record.is_asocial,
            "is_trust_imitator": record.is_trust_imitator,
        },
        "pages": [
            {"url": p.url, "text": p.text, "links": list(p.links)}
            for p in site.pages
        ],
    }


def site_record_from_row(row: dict[str, Any]) -> tuple[Website, PharmacyRecord]:
    """Parse one row written by :func:`site_record_to_row`."""
    pages = tuple(
        WebPage(url=p["url"], text=p["text"], links=tuple(p["links"]))
        for p in row["pages"]
    )
    flags = row.get("flags", {})
    record = PharmacyRecord(
        domain=row["domain"],
        label=int(row["label"]),
        is_affiliate_hub=bool(flags.get("is_affiliate_hub", False)),
        is_affiliate_member=bool(flags.get("is_affiliate_member", False)),
        is_outlier=bool(flags.get("is_outlier", False)),
        is_asocial=bool(flags.get("is_asocial", False)),
        is_trust_imitator=bool(flags.get("is_trust_imitator", False)),
    )
    return Website(domain=row["domain"], pages=pages), record


def export_corpus(corpus: PharmacyCorpus, path: str | Path) -> None:
    """Write a corpus as JSON lines (one pharmacy per line), atomically."""

    def write(fh: IO[str]) -> None:
        header = {"format": "repro-corpus", "version": 1, "name": corpus.name}
        fh.write(json.dumps(header) + "\n")
        for site, record in zip(corpus.sites, corpus.records):
            fh.write(json.dumps(site_record_to_row(site, record)) + "\n")

    atomic_write(path, "w", write, encoding="utf-8")


def import_corpus(path: str | Path) -> PharmacyCorpus:
    """Read a corpus written by :func:`export_corpus`.

    Raises:
        PersistenceError: malformed file or unsupported version.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError as exc:
        raise PersistenceError(f"no such corpus file: {path}") from exc
    if not lines:
        raise PersistenceError(f"empty corpus file: {path}")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"malformed corpus header in {path}") from exc
    if header.get("format") != "repro-corpus" or header.get("version") != 1:
        raise PersistenceError(f"unsupported corpus format in {path}")

    sites: list[Website] = []
    records: list[PharmacyRecord] = []
    for line_no, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"malformed corpus row at {path}:{line_no}"
            ) from exc
        pages = tuple(
            WebPage(url=p["url"], text=p["text"], links=tuple(p["links"]))
            for p in row["pages"]
        )
        sites.append(Website(domain=row["domain"], pages=pages))
        flags = row.get("flags", {})
        records.append(
            PharmacyRecord(
                domain=row["domain"],
                label=int(row["label"]),
                is_affiliate_hub=bool(flags.get("is_affiliate_hub", False)),
                is_affiliate_member=bool(flags.get("is_affiliate_member", False)),
                is_outlier=bool(flags.get("is_outlier", False)),
                is_asocial=bool(flags.get("is_asocial", False)),
                is_trust_imitator=bool(flags.get("is_trust_imitator", False)),
            )
        )
    return PharmacyCorpus(
        name=str(header.get("name", "imported")),
        sites=tuple(sites),
        records=tuple(records),
    )
