"""Pre-optimization reference implementations (the equivalence oracle).

These are the pure-Python dict-loop kernels this repo shipped before
the vectorized fast paths landed:

* :class:`ReferenceNGramGraph` — the dict-backed character n-gram graph
  with per-edge dict-probe similarities.
* :func:`reference_personalized_pagerank` — the per-node Python-loop
  power iteration.

They exist for two reasons: the property tests in ``tests/perf`` assert
the fast paths match them within tight tolerances on randomized inputs,
and ``benchmarks/perf`` times them as the baseline that speedups are
reported against.  They are *not* wired into any pipeline.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import GraphError, ValidationError
from repro.network.graph import DirectedGraph

__all__ = ["ReferenceNGramGraph", "reference_personalized_pagerank"]


class ReferenceNGramGraph:
    """Dict-backed n-gram graph (the pre-vectorization implementation).

    Args:
        n: n-gram rank.
        window: neighbourhood distance Dwin.
    """

    def __init__(self, n: int = 4, window: int = 4) -> None:
        if n < 1:
            raise ValidationError(f"n-gram rank must be >= 1, got {n}")
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self._n = n
        self._window = window
        self._edges: dict[tuple[str, str], float] = {}

    @classmethod
    def from_text(
        cls, text: str, n: int = 4, window: int = 4
    ) -> "ReferenceNGramGraph":
        """Build the n-gram graph of ``text`` with dict loops."""
        graph = cls(n=n, window=window)
        grams = graph._ngrams(text)
        edges = graph._edges
        for i, gram in enumerate(grams):
            stop = min(i + window, len(grams) - 1)
            for j in range(i + 1, stop + 1):
                key = graph._edge_key(gram, grams[j])
                edges[key] = edges.get(key, 0.0) + 1.0
        return graph

    def _ngrams(self, text: str) -> list[str]:
        n = self._n
        if len(text) < n:
            return [text] if text else []
        return [text[i : i + n] for i in range(len(text) - n + 1)]

    @staticmethod
    def _edge_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    @property
    def n_edges(self) -> int:
        """|G| — the edge count used by the similarity formulas."""
        return len(self._edges)

    def edges(self) -> Mapping[tuple[str, str], float]:
        """Read-only view of the weighted edge set."""
        return dict(self._edges)

    def merge(
        self, other: "ReferenceNGramGraph", learning_rate: float = 0.5
    ) -> None:
        """In-place JInsect merge: ``w <- w + lr * (w_other - w)``."""
        for key, w_other in other._edges.items():
            w_self = self._edges.get(key)
            if w_self is None:
                self._edges[key] = learning_rate * w_other
            else:
                self._edges[key] = w_self + learning_rate * (w_other - w_self)

    @classmethod
    def merged(
        cls,
        graphs: Sequence["ReferenceNGramGraph"],
        n: int = 4,
        window: int = 4,
    ) -> "ReferenceNGramGraph":
        """Fold ``graphs`` together with learning rate 1/i."""
        result = cls(n=n, window=window)
        for i, graph in enumerate(graphs, start=1):
            result.merge(graph, learning_rate=1.0 / i)
        return result

    def similarities(
        self, other: "ReferenceNGramGraph"
    ) -> tuple[float, float, float, float]:
        """(CS, SS, VS, NVS) against ``other`` via per-edge dict probes."""
        if not self._edges or not other._edges:
            return (0.0, 0.0, 0.0, 0.0)
        n_self = len(self._edges)
        n_other = len(other._edges)
        shared = 0
        vs_total = 0.0
        other_edges = other._edges
        for key, w_self in self._edges.items():
            w_other = other_edges.get(key)
            if w_other is not None:
                shared += 1
                hi = max(w_self, w_other)
                if hi > 0.0:
                    vs_total += min(w_self, w_other) / hi
        lo, hi = min(n_self, n_other), max(n_self, n_other)
        cs = shared / lo
        ss = lo / hi
        vs = vs_total / hi
        return (cs, ss, vs, vs / ss)


def reference_personalized_pagerank(
    graph: DirectedGraph,
    teleport: Mapping[str, float] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Per-node-loop power iteration (the pre-CSR implementation).

    Matches the semantics of
    :func:`repro.network.pagerank.personalized_pagerank` (including the
    :class:`~repro.exceptions.ValidationError` on negative teleport
    mass) but spends one Python loop iteration per node per power step.

    Raises:
        GraphError: empty graph or all-zero teleport vector.
        ValidationError: invalid damping or negative teleport entries.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot rank an empty graph")
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    if teleport is None:
        t = np.full(n, 1.0 / n)
    else:
        t = np.zeros(n)
        for node, mass in teleport.items():
            if mass < 0.0:
                raise ValidationError(
                    f"teleport mass must be >= 0, got {mass} for {node!r}"
                )
            if node in index and mass > 0.0:
                t[index[node]] = mass
        total = t.sum()
        if total <= 0.0:
            raise GraphError("teleport vector has no mass on graph nodes")
        t /= total

    out_targets: list[np.ndarray] = []
    out_weights: list[np.ndarray] = []
    dangling = np.zeros(n, dtype=bool)
    for i, node in enumerate(nodes):
        succ = graph.successors(node)
        if not succ:
            dangling[i] = True
            out_targets.append(np.empty(0, dtype=np.int64))
            out_weights.append(np.empty(0))
            continue
        targets = np.fromiter((index[d] for d in succ), dtype=np.int64)
        weights = np.fromiter(succ.values(), dtype=np.float64)
        out_targets.append(targets)
        out_weights.append(weights / weights.sum())

    rank = t.copy()
    for _ in range(max_iterations):
        new_rank = np.zeros(n)
        for i in range(n):
            mass = rank[i]
            if mass == 0.0:  # repro-lint: disable=R006 (exact sparsity skip)
                continue
            if dangling[i]:
                new_rank += mass * t
            else:
                new_rank[out_targets[i]] += mass * out_weights[i]
        new_rank = damping * new_rank + (1.0 - damping) * t
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return {node: float(rank[index[node]]) for node in nodes}
