"""Pre-optimization reference implementations (the equivalence oracle).

These are the pure-Python loop kernels this repo shipped before the
vectorized fast paths landed (or, for the ML layer, the classic
sequential formulations the fast kernels must reproduce):

* :class:`ReferenceNGramGraph` — the dict-backed character n-gram graph
  with per-edge dict-probe similarities.
* :func:`reference_personalized_pagerank` — the per-node Python-loop
  power iteration.
* :func:`reference_pegasos_fit` — per-sample-loop mini-batch Pegasos
  (``batch_size=1`` is the classic per-sample schedule).
* :class:`ReferenceC45Tree` — C4.5 with the per-feature/per-candidate
  split-search loop and per-row prediction loop.
* :func:`reference_ensemble_select` — per-candidate hill-climbing loop
  for Ensemble Selection.
* :class:`ReferenceSMOTE` — per-sample neighbour-search loop (the
  Chawla et al. pseudocode shape).
* :func:`reference_tfidf_transform` — the per-document dict +
  ``sorted(counts)`` CSR assembly loop.
* :func:`reference_ensure_dense` — the ``np.matrix``-routed densify
  helper that converted dtypes with a second full-matrix pass.

They exist for two reasons: the property tests in ``tests/perf`` assert
the fast paths match them within tight tolerances on randomized inputs,
and ``benchmarks/perf`` times them as the baseline that speedups are
reported against.  They are *not* wired into any pipeline.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, NotFittedError, ValidationError
from repro.ml.base import ensure_dense
from repro.ml.metrics import auc_roc
from repro.ml.sampling import SMOTE
from repro.ml.tree import C45Tree, _entropy
from repro.ml.tree import _EPS as _TREE_EPS
from repro.network.graph import DirectedGraph
from repro.text.term_vector import TfidfVectorizer, _l2_normalize_rows

__all__ = [
    "ReferenceNGramGraph",
    "reference_personalized_pagerank",
    "reference_pegasos_fit",
    "ReferenceC45Tree",
    "reference_ensemble_select",
    "ReferenceSMOTE",
    "reference_tfidf_transform",
    "reference_ensure_dense",
]


class ReferenceNGramGraph:
    """Dict-backed n-gram graph (the pre-vectorization implementation).

    Args:
        n: n-gram rank.
        window: neighbourhood distance Dwin.
    """

    def __init__(self, n: int = 4, window: int = 4) -> None:
        if n < 1:
            raise ValidationError(f"n-gram rank must be >= 1, got {n}")
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self._n = n
        self._window = window
        self._edges: dict[tuple[str, str], float] = {}

    @classmethod
    def from_text(
        cls, text: str, n: int = 4, window: int = 4
    ) -> "ReferenceNGramGraph":
        """Build the n-gram graph of ``text`` with dict loops."""
        graph = cls(n=n, window=window)
        grams = graph._ngrams(text)
        edges = graph._edges
        for i, gram in enumerate(grams):
            stop = min(i + window, len(grams) - 1)
            for j in range(i + 1, stop + 1):
                key = graph._edge_key(gram, grams[j])
                edges[key] = edges.get(key, 0.0) + 1.0
        return graph

    def _ngrams(self, text: str) -> list[str]:
        n = self._n
        if len(text) < n:
            return [text] if text else []
        return [text[i : i + n] for i in range(len(text) - n + 1)]

    @staticmethod
    def _edge_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    @property
    def n_edges(self) -> int:
        """|G| — the edge count used by the similarity formulas."""
        return len(self._edges)

    def edges(self) -> Mapping[tuple[str, str], float]:
        """Read-only view of the weighted edge set."""
        return dict(self._edges)

    def merge(
        self, other: "ReferenceNGramGraph", learning_rate: float = 0.5
    ) -> None:
        """In-place JInsect merge: ``w <- w + lr * (w_other - w)``."""
        for key, w_other in other._edges.items():
            w_self = self._edges.get(key)
            if w_self is None:
                self._edges[key] = learning_rate * w_other
            else:
                self._edges[key] = w_self + learning_rate * (w_other - w_self)

    @classmethod
    def merged(
        cls,
        graphs: Sequence["ReferenceNGramGraph"],
        n: int = 4,
        window: int = 4,
    ) -> "ReferenceNGramGraph":
        """Fold ``graphs`` together with learning rate 1/i."""
        result = cls(n=n, window=window)
        for i, graph in enumerate(graphs, start=1):
            result.merge(graph, learning_rate=1.0 / i)
        return result

    def similarities(
        self, other: "ReferenceNGramGraph"
    ) -> tuple[float, float, float, float]:
        """(CS, SS, VS, NVS) against ``other`` via per-edge dict probes."""
        if not self._edges or not other._edges:
            return (0.0, 0.0, 0.0, 0.0)
        n_self = len(self._edges)
        n_other = len(other._edges)
        shared = 0
        vs_total = 0.0
        other_edges = other._edges
        for key, w_self in self._edges.items():
            w_other = other_edges.get(key)
            if w_other is not None:
                shared += 1
                hi = max(w_self, w_other)
                if hi > 0.0:
                    vs_total += min(w_self, w_other) / hi
        lo, hi = min(n_self, n_other), max(n_self, n_other)
        cs = shared / lo
        ss = lo / hi
        vs = vs_total / hi
        return (cs, ss, vs, vs / ss)


def reference_personalized_pagerank(
    graph: DirectedGraph,
    teleport: Mapping[str, float] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict[str, float]:
    """Per-node-loop power iteration (the pre-CSR implementation).

    Matches the semantics of
    :func:`repro.network.pagerank.personalized_pagerank` (including the
    :class:`~repro.exceptions.ValidationError` on negative teleport
    mass) but spends one Python loop iteration per node per power step.

    Raises:
        GraphError: empty graph or all-zero teleport vector.
        ValidationError: invalid damping or negative teleport entries.
    """
    if graph.n_nodes == 0:
        raise GraphError("cannot rank an empty graph")
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    if teleport is None:
        t = np.full(n, 1.0 / n)
    else:
        t = np.zeros(n)
        for node, mass in teleport.items():
            if mass < 0.0:
                raise ValidationError(
                    f"teleport mass must be >= 0, got {mass} for {node!r}"
                )
            if node in index and mass > 0.0:
                t[index[node]] = mass
        total = t.sum()
        if total <= 0.0:
            raise GraphError("teleport vector has no mass on graph nodes")
        t /= total

    out_targets: list[np.ndarray] = []
    out_weights: list[np.ndarray] = []
    dangling = np.zeros(n, dtype=bool)
    for i, node in enumerate(nodes):
        succ = graph.successors(node)
        if not succ:
            dangling[i] = True
            out_targets.append(np.empty(0, dtype=np.int64))
            out_weights.append(np.empty(0))
            continue
        targets = np.fromiter((index[d] for d in succ), dtype=np.int64)
        weights = np.fromiter(succ.values(), dtype=np.float64)
        out_targets.append(targets)
        out_weights.append(weights / weights.sum())

    rank = t.copy()
    for _ in range(max_iterations):
        new_rank = np.zeros(n)
        for i in range(n):
            mass = rank[i]
            if mass == 0.0:  # repro-lint: disable=R006 (exact sparsity skip)
                continue
            if dangling[i]:
                new_rank += mass * t
            else:
                new_rank[out_targets[i]] += mass * out_weights[i]
        new_rank = damping * new_rank + (1.0 - damping) * t
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return {node: float(rank[index[node]]) for node in nodes}


# -- ML layer references -----------------------------------------------------


def reference_pegasos_fit(
    X: "np.ndarray | sp.csr_matrix",
    signs: np.ndarray,
    sample_weight: np.ndarray,
    lam: float,
    n_epochs: int,
    seed: int,
    batch_size: int,
) -> np.ndarray:
    """Per-sample-loop mini-batch Pegasos (the sequential formulation).

    Implements exactly the schedule of
    :func:`repro.ml.svm.pegasos_weights` — same RNG stream, same global
    step counter, margins taken against the batch-start weights — but
    walks every batch member in a Python loop: one row dot product per
    margin, one scaled row addition per violator.  ``batch_size=1`` is
    the classic per-sample Pegasos update sequence.

    Args:
        X: ``(n_samples, n_features)`` dense ndarray or CSR matrix.
        signs: ±1.0 per sample.
        sample_weight: per-sample loss weight.
        lam: regularization strength λ.
        n_epochs: full passes over the training set.
        seed: RNG seed controlling the example order.
        batch_size: samples per sub-gradient step.

    Returns:
        Augmented weight vector of ``n_features + 1`` entries (bias
        folded in as the last component).
    """
    n_samples, n_features = X.shape
    rng = np.random.default_rng(seed)
    w = np.zeros(n_features + 1, dtype=np.float64)
    is_sparse = sp.issparse(X)
    t = 0
    for _ in range(n_epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, batch_size):
            batch = order[start : start + batch_size]
            t += 1
            eta = 1.0 / (lam * t)
            margins = []
            for i in batch:
                if is_sparse:
                    row = X[int(i)]
                    dot = float((row @ w[:-1])[0])
                else:
                    dot = float(X[int(i)] @ w[:-1])
                margins.append(signs[i] * (dot + w[-1]))
            w *= 1.0 - eta * lam
            step = eta / batch.shape[0]
            for pos, i in enumerate(batch):
                if margins[pos] < 1.0:
                    c = step * (sample_weight[i] * signs[i])
                    if is_sparse:
                        row = X[int(i)]
                        w[row.indices] += c * row.data
                    else:
                        w[:-1] += c * X[int(i)]
                    w[-1] += c
    return w


class ReferenceC45Tree(C45Tree):
    """C4.5 with the per-feature/per-candidate split-search loop.

    Growth, pruning, hyperparameters, and the random ``max_features``
    draws are shared with :class:`repro.ml.tree.C45Tree`; only the
    split search and the prediction traversal are the sequential
    pre-vectorization loops, so a fitted tree (and every prediction)
    must be identical to the fast path's.
    """

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        n_samples = X.shape[0]
        parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        parent_entropy = _entropy(parent_counts)
        min_leaf = self._min_samples_leaf

        gains: list[tuple[float, float, int, float]] = []
        for feature in self._candidate_features(X, rng):
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y[order]
            left = np.zeros(n_classes, dtype=np.float64)
            best_ratio = -np.inf
            best_gain = 0.0
            best_thr = 0.0
            found = False
            for i in range(n_samples - 1):
                left[sorted_y[i]] += 1.0
                if not sorted_vals[i + 1] - sorted_vals[i] > _TREE_EPS:
                    continue
                n_left = float(i + 1)
                n_right = n_samples - n_left
                if n_left < min_leaf or n_right < min_leaf:
                    continue
                right = parent_counts - left
                h_left = _entropy_of_counts(left, n_left)
                h_right = _entropy_of_counts(right, n_right)
                weighted = (n_left * h_left + n_right * h_right) / n_samples
                gain = parent_entropy - weighted
                p_left = n_left / n_samples
                p_right = n_right / n_samples
                split_info = -(
                    p_left * np.log2(p_left) + p_right * np.log2(p_right)
                )
                ratio = gain / split_info if split_info > _TREE_EPS else 0.0
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_gain = gain
                    best_thr = 0.5 * (sorted_vals[i] + sorted_vals[i + 1])
                    found = True
            if not found or not best_gain > _TREE_EPS:
                continue
            gains.append((best_gain, best_ratio, int(feature), float(best_thr)))

        if not gains:
            return None
        gain_values = np.array([g for g, _, _, _ in gains])
        avg_gain = float(np.sum(gain_values)) / len(gains)
        eligible = [item for item in gains if item[0] >= avg_gain - _TREE_EPS]
        _, _, feature, thr = max(eligible, key=lambda item: item[1])
        return feature, thr

    def predict_proba(self, X: "np.ndarray | sp.csr_matrix") -> np.ndarray:
        """Per-row tree traversal (the pre-vectorization loop)."""
        if self._root is None:
            raise NotFittedError("C45Tree has not been fitted")
        X = ensure_dense(X)
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"feature-count mismatch: fitted on {self._n_features}, "
                f"got {X.shape[1]}"
            )
        n_classes = len(self._fitted_classes())
        out = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = (
                    node.left
                    if X[i, node.feature] <= node.threshold
                    else node.right
                )
            out[i] = (node.counts + 1.0) / (node.counts.sum() + n_classes)
        return out


def _entropy_of_counts(counts: np.ndarray, total: float) -> float:
    """Entropy of one class-count vector, fp-identical to the fast path."""
    p = counts / total
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return float(-np.sum(p * logp))


def reference_ensemble_select(
    predictions: Mapping[str, np.ndarray],
    y: np.ndarray,
    metric: "Callable[[np.ndarray, np.ndarray], float] | None" = None,
    n_init: int = 1,
    max_rounds: int = 30,
    tolerance: float = 1e-6,
) -> dict[str, int]:
    """Per-candidate hill-climbing loop for Ensemble Selection.

    Same selection semantics as
    :class:`repro.ml.ensemble.EnsembleSelection` — candidates walked in
    sorted-name order, initialization ranked by (metric desc, Brier
    asc, name asc), hill-climb ties resolved to the first (lowest)
    name, an addition accepted only when it beats the current bag score
    by more than ``tolerance`` — but every candidate of every round
    calls the scalar metric on a freshly averaged bag.

    Args:
        predictions: model name -> ``(n, 2)`` probability matrix.
        y: hill-climbing labels.
        metric: scoring function (default AUC-ROC).
        n_init: sorted-initialization size.
        max_rounds: cap on greedy additions.
        tolerance: minimum improvement to keep climbing.

    Returns:
        Bag composition as a model-name -> selection-count mapping.
    """
    score = metric or auc_roc
    labels = np.asarray(y).ravel()
    names = sorted(predictions)
    arrays = {name: np.asarray(predictions[name]) for name in names}
    singles = {
        name: float(score(labels, arrays[name][:, 1])) for name in names
    }
    briers = {
        name: float(np.mean((arrays[name][:, 1] - labels) ** 2))
        for name in names
    }
    ranked = sorted(names, key=lambda nm: (-singles[nm], briers[nm], nm))
    bag = list(ranked[:n_init])
    bag_sum = np.sum([arrays[nm] for nm in bag], axis=0)
    best_score = float(score(labels, (bag_sum / len(bag))[:, 1]))
    for _ in range(max_rounds):
        best_name: str | None = None
        best_new = -np.inf
        for name in names:
            candidate = (bag_sum + arrays[name]) / (len(bag) + 1)
            value = float(score(labels, candidate[:, 1]))
            if value > best_new:
                best_new = value
                best_name = name
        if best_name is None or not best_new > best_score + tolerance:
            break
        bag.append(best_name)
        bag_sum = bag_sum + arrays[best_name]
        best_score = best_new
    counts: dict[str, int] = {}
    for name in bag:
        counts[name] = counts.get(name, 0) + 1
    return counts


class ReferenceSMOTE(SMOTE):
    """SMOTE with the per-sample neighbour-search loop.

    RNG draw order (base rows, neighbour picks, gaps) and the
    interpolation arithmetic match :class:`repro.ml.sampling.SMOTE`
    exactly; the nearest-neighbour search and the synthetic-row
    interpolation run one sample at a time, as in the Chawla et al.
    pseudocode.
    """

    def _synthesize(
        self, block: np.ndarray, n_new: int, rng: np.random.Generator
    ) -> np.ndarray:
        k = min(self._k_neighbors, block.shape[0] - 1)
        n_rows = block.shape[0]
        sq = np.sum(block**2, axis=1)
        neighbour_idx = np.empty((n_rows, k), dtype=np.int64)
        for i in range(n_rows):
            d2 = sq[i] + sq - 2.0 * (block @ block[i])
            d2[i] = np.inf
            neighbour_idx[i] = np.argsort(d2)[:k]
        base = rng.integers(0, n_rows, size=n_new)
        pick = rng.integers(0, k, size=n_new)
        gaps = rng.random(size=(n_new, 1))
        out = np.empty((n_new, block.shape[1]), dtype=block.dtype)
        for j in range(n_new):
            row = block[base[j]]
            neighbour = block[neighbour_idx[base[j], pick[j]]]
            out[j] = row + gaps[j, 0] * (neighbour - row)
        return out


def reference_tfidf_transform(
    vectorizer: TfidfVectorizer, documents: Sequence[Sequence[str]]
) -> sp.csr_matrix:
    """The per-document dict + ``sorted(counts)`` CSR assembly loop.

    Reads the fitted vocabulary/IDF (and the vectorizer's configured
    flags) and rebuilds the TF-IDF matrix the way
    ``TfidfVectorizer.transform`` did before the batched construction;
    the output must be bit-identical (same data, indices, indptr).

    Args:
        vectorizer: a fitted :class:`repro.text.term_vector.TfidfVectorizer`.
        documents: tokenized documents.
    """
    vocab = vectorizer.vocabulary
    idf = vectorizer.idf
    sublinear = vectorizer._sublinear_tf
    normalize = vectorizer._normalize
    indptr = [0]
    indices: list[int] = []
    data: list[float] = []
    for doc in documents:
        counts: Counter[int] = Counter()
        for term in doc:
            idx = vocab.index_of(term)
            if idx is not None:
                counts[idx] += 1
        for idx in sorted(counts):
            tf = float(counts[idx])
            if sublinear:
                tf = 1.0 + np.log(tf)
            indices.append(idx)
            data.append(tf * idf[idx])
        indptr.append(len(indices))
    matrix = sp.csr_matrix(
        (np.asarray(data), np.asarray(indices, dtype=np.int32), indptr),
        shape=(len(documents), len(vocab)),
        dtype=np.float64,
    )
    if normalize:
        matrix = _l2_normalize_rows(matrix)
    return matrix


def reference_ensure_dense(X: Any) -> np.ndarray:
    """The pre-optimization densify helper, verbatim.

    ``np.asarray(X.todense(), dtype=np.float64)`` materializes an
    intermediate :class:`numpy.matrix` and, whenever the sparse input
    is not already float64 (integer count matrices, float32 blocks),
    re-reads the entire dense result to convert it — a second
    full-matrix pass that :func:`repro.ml.base.ensure_dense` now
    avoids by choosing the conversion order per dtype.  On float64
    input both routes cost one dense write, so the benchmarked win is
    specifically the dtype-converting regime.
    """
    if sp.issparse(X):
        return np.asarray(X.todense(), dtype=np.float64)
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr
