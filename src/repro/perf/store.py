"""Out-of-core matrix store: mmap-backed numpy and CSR artifacts.

The :class:`~repro.perf.cache.FeatureCache` memoizes *pickled* feature
values — loading a hit materializes the whole object in RAM.  That is
the wrong shape for million-site matrices: a 10^6-row TF-IDF or
link-transition matrix must be *assembled shard-by-shard* and then
*consumed block-by-block* without any stage ever holding it whole.

:class:`MatrixStore` is that spillable tier:

* Arrays are stored as ``.npy`` files written through the atomic
  writers of :mod:`repro.io` (sibling temp file + ``os.replace``), so
  a crash mid-spill never leaves a truncated artifact.
* Loads default to ``np.load(mmap_mode="r")``: the OS pages data in on
  demand and evicts it under memory pressure, so a reader's resident
  set is its working set, not the artifact size.
* CSR matrices spill as three arrays (``data``/``indices``/``indptr``)
  plus a JSON meta sidecar; loading reassembles a
  ``scipy.sparse.csr_matrix`` *around the mmaps* (scipy wraps the
  buffers without copying), so block-wise SpMV touches only the rows
  it reads.

Names are path-like keys (``"tfidf/shard-0003"``); each artifact is
content under ``root``, safe to delete wholesale between runs.
"""

from __future__ import annotations

import json
import logging
import re
from pathlib import Path
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.io import PersistenceError, atomic_write

logger = logging.getLogger(__name__)

__all__ = ["MatrixStore"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+(/[A-Za-z0-9._-]+)*$")

_CSR_META = "csr.json"
_CSR_PARTS = ("data", "indices", "indptr")


def _check_name(name: str) -> str:
    """Validate a store key (relative, no traversal, no empty parts)."""
    if not _NAME_RE.match(name) or ".." in name.split("/"):
        raise ValidationError(f"invalid store name: {name!r}")
    return name


class MatrixStore:
    """Directory of atomically-written, mmap-loadable matrix artifacts.

    Args:
        root: store directory (created on first save).

    All ``save_*`` methods overwrite atomically; all ``load_*`` methods
    raise :class:`~repro.io.PersistenceError` on missing or malformed
    artifacts and default to read-only memory maps.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    # -- dense arrays -------------------------------------------------------

    def _array_path(self, name: str) -> Path:
        return self._root / f"{_check_name(name)}.npy"

    def save_array(self, name: str, array: np.ndarray) -> Path:
        """Spill ``array`` as ``<root>/<name>.npy`` (atomic)."""
        arr = np.ascontiguousarray(array)
        path = self._array_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(path, "wb", lambda fh: np.save(fh, arr))
        return path

    def load_array(self, name: str, mmap: bool = True) -> np.ndarray:
        """The stored array, memory-mapped read-only by default."""
        path = self._array_path(name)
        try:
            return np.load(path, mmap_mode="r" if mmap else None)
        except FileNotFoundError as exc:
            raise PersistenceError(f"no such array: {name}") from exc
        except ValueError as exc:
            raise PersistenceError(f"corrupt array {name}: {exc}") from exc

    def has_array(self, name: str) -> bool:
        """Whether an array artifact named ``name`` exists."""
        return self._array_path(name).exists()

    # -- CSR matrices -------------------------------------------------------

    def _csr_dir(self, name: str) -> Path:
        return self._root / _check_name(name)

    def save_csr(self, name: str, matrix: sp.csr_matrix) -> Path:
        """Spill a CSR matrix as three arrays + a meta sidecar.

        The meta file is written *last*, so a directory with a valid
        sidecar always has complete part files.
        """
        if not sp.issparse(matrix):
            raise ValidationError("save_csr needs a scipy sparse matrix")
        csr = matrix.tocsr()
        directory = self._csr_dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        for part in _CSR_PARTS:
            arr = np.ascontiguousarray(getattr(csr, part))
            atomic_write(
                directory / f"{part}.npy", "wb", lambda fh, a=arr: np.save(fh, a)
            )
        meta = {
            "format": "repro-csr",
            "version": 1,
            "shape": [int(csr.shape[0]), int(csr.shape[1])],
            "nnz": int(csr.nnz),
            "dtype": str(csr.dtype),
        }
        atomic_write(
            directory / _CSR_META,
            "w",
            lambda fh: json.dump(meta, fh),
            encoding="utf-8",
        )
        return directory

    def load_csr(self, name: str, mmap: bool = True) -> sp.csr_matrix:
        """Reassemble a stored CSR around read-only memory maps.

        scipy wraps the given buffers without copying, so slicing rows
        of the result reads only those rows' bytes from disk.
        """
        directory = self._csr_dir(name)
        meta_path = directory / _CSR_META
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
        except FileNotFoundError as exc:
            raise PersistenceError(f"no such CSR artifact: {name}") from exc
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"corrupt CSR meta for {name}") from exc
        if meta.get("format") != "repro-csr" or meta.get("version") != 1:
            raise PersistenceError(f"unsupported CSR format for {name}")
        mode = "r" if mmap else None
        try:
            parts = {
                part: np.load(directory / f"{part}.npy", mmap_mode=mode)
                for part in _CSR_PARTS
            }
        except FileNotFoundError as exc:
            raise PersistenceError(f"incomplete CSR artifact: {name}") from exc
        except ValueError as exc:
            raise PersistenceError(f"corrupt CSR part in {name}: {exc}") from exc
        matrix = sp.csr_matrix(
            (parts["data"], parts["indices"], parts["indptr"]),
            shape=tuple(meta["shape"]),
            copy=False,
        )
        if matrix.nnz != int(meta["nnz"]):
            raise PersistenceError(
                f"CSR artifact {name} nnz mismatch: "
                f"{matrix.nnz} != {meta['nnz']}"
            )
        return matrix

    def has_csr(self, name: str) -> bool:
        """Whether a complete CSR artifact named ``name`` exists."""
        return (self._csr_dir(name) / _CSR_META).exists()

    # -- JSON sidecars ------------------------------------------------------

    def save_meta(self, name: str, payload: dict) -> Path:
        """Spill a small JSON metadata document (atomic)."""
        path = self._root / f"{_check_name(name)}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(
            path, "w", lambda fh: json.dump(payload, fh), encoding="utf-8"
        )
        return path

    def load_meta(self, name: str) -> dict:
        """The stored JSON document.

        Raises:
            PersistenceError: missing or malformed document.
        """
        path = self._root / f"{_check_name(name)}.json"
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError as exc:
            raise PersistenceError(f"no such meta: {name}") from exc
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"corrupt meta {name}: {exc}") from exc

    # -- maintenance --------------------------------------------------------

    def names(self) -> Iterator[str]:
        """All artifact names (arrays, CSR dirs, metas), sorted."""
        found: set[str] = set()
        for path in sorted(self._root.rglob("*")):
            rel = path.relative_to(self._root)
            if path.is_file() and path.suffix == ".npy" and len(rel.parts) >= 1:
                parent = path.parent
                if (parent / _CSR_META).exists():
                    found.add(str(parent.relative_to(self._root)))
                else:
                    found.add(str(rel)[: -len(".npy")])
            elif path.is_file() and path.suffix == ".json":
                if path.name == _CSR_META:
                    continue
                found.add(str(rel)[: -len(".json")])
        return iter(sorted(found))
