"""Content-addressed on-disk feature cache.

Cross-validation folds, the table sweeps, and the nine ablation suites
repeatedly extract the *same* per-document features (summary documents,
n-gram graphs, TF-IDF token streams) from the same content.  This
module memoizes those extractions on disk, keyed by::

    sha256(kind, content fingerprint, extractor params, code version)

so a cache entry can only be served when the input content, every
extractor knob, *and* the extractor implementation are all unchanged.
Bump :data:`CODE_VERSION` whenever an extractor's output for identical
inputs changes; stale entries then miss instead of poisoning results.

Entries are pickles written through the atomic writers of
:mod:`repro.io` (sibling temp file + ``os.replace``), so a crash
mid-write never leaves a truncated artifact; corrupt or stale entries
are treated as misses and silently recomputed.

The cache is opt-in: pipelines take an optional
:class:`FeatureCache` (or read ``REPRO_CACHE_DIR`` via
:meth:`FeatureCache.from_env`) and behave identically with it on or
off — cached and fresh runs return equal values by construction.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.exceptions import ValidationError
from repro.io import PersistenceError, load_model, save_model

logger = logging.getLogger(__name__)

__all__ = [
    "CODE_VERSION",
    "FeatureCache",
    "content_fingerprint",
    "params_fingerprint",
]

#: Version of the feature-extraction code paths guarded by this cache.
#: Bump on any change that alters extractor output for identical input.
CODE_VERSION = "1"

#: Environment variable naming the cache directory (unset = disabled).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping total cache bytes (unset = unbounded).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


def content_fingerprint(parts: Iterable[str | bytes]) -> str:
    """Collision-resistant digest of an ordered content stream.

    Args:
        parts: the content to fingerprint (document texts, token
            streams, serialized pages …), in a canonical order.

    Returns:
        Hex SHA-256 of the length-prefixed concatenation (length
        prefixes prevent ``("ab", "c")`` colliding with ``("a", "bc")``).
    """
    digest = hashlib.sha256()
    for part in parts:
        raw = part.encode("utf-8") if isinstance(part, str) else part
        digest.update(len(raw).to_bytes(8, "big"))
        digest.update(raw)
    return digest.hexdigest()


def params_fingerprint(params: Mapping[str, Any]) -> str:
    """Canonical digest of an extractor-parameter mapping.

    Parameters are serialized as sorted-key JSON so dict ordering never
    changes the key; values must therefore be JSON-representable.

    Raises:
        ValidationError: for non-JSON-serializable parameter values.
    """
    try:
        canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"cache params must be JSON-serializable: {exc}"
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`FeatureCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = field(default=0)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for logs and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


class FeatureCache:
    """Directory-backed content-addressed memoization.

    Args:
        root: cache directory (created on first store).
        max_bytes: total size budget; when a store pushes the cache
            over it, the least-recently-used entries are evicted (and
            counted in ``stats.evictions``) until it fits.  ``None``
            means unbounded.  Million-site runs should set a budget
            (or ``$REPRO_CACHE_MAX_BYTES``) so the cache cannot fill
            the disk.

    Entries are sharded two hex characters deep
    (``<root>/ab/abcdef….pkl``) to keep directory fan-out sane for
    large corpora.
    """

    def __init__(
        self, root: str | Path, max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValidationError(
                f"max_bytes must be > 0 or None, got {max_bytes}"
            )
        self._root = Path(root)
        self._max_bytes = max_bytes
        self.stats = CacheStats()

    @classmethod
    def from_env(cls) -> "FeatureCache | None":
        """Cache at ``$REPRO_CACHE_DIR``, or ``None`` when unset/empty.

        ``$REPRO_CACHE_MAX_BYTES`` (a positive integer) sets the size
        budget; malformed values raise so misconfiguration fails loudly
        instead of silently running unbounded.
        """
        root = os.environ.get(CACHE_DIR_ENV, "").strip()
        if not root:
            return None
        raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
        max_bytes: int | None = None
        if raw:
            try:
                max_bytes = int(raw)
            except ValueError as exc:
                raise ValidationError(
                    f"${CACHE_MAX_BYTES_ENV} must be an integer, got {raw!r}"
                ) from exc
        return cls(root, max_bytes=max_bytes)

    @property
    def max_bytes(self) -> int | None:
        """The size budget (``None`` = unbounded)."""
        return self._max_bytes

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    def key(
        self,
        kind: str,
        content: str,
        params: Mapping[str, Any],
        code_version: str = CODE_VERSION,
    ) -> str:
        """Full cache key for one extraction.

        Args:
            kind: extractor family (``"summary"``, ``"ngg"``, …);
                namespaces otherwise-identical inputs.
            content: content fingerprint from
                :func:`content_fingerprint`.
            params: extractor parameters (JSON-serializable).
            code_version: implementation version of the extractor.
        """
        return params_fingerprint(
            {
                "kind": kind,
                "content": content,
                "params": params_fingerprint(params),
                "code_version": code_version,
            }
        )

    def _path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> Any | None:
        """The cached value for ``key``, or ``None`` on a miss.

        Corrupt, truncated, or format-skewed entries count as misses
        (and are unlinked so the rewritten entry is clean).
        """
        path = self._path(key)
        try:
            value = load_model(path)
        except PersistenceError:
            if path.exists():
                # Corrupt (not merely absent): drop it.
                path.unlink(missing_ok=True)
                self.stats.evictions += 1
            self.stats.misses += 1
            return None
        if self._max_bytes is not None:
            # Refresh recency so LRU eviction spares hot entries.
            try:
                os.utime(path)
            except OSError:
                pass  # entry raced away or fs is read-only; still a hit
        self.stats.hits += 1
        return value

    def store(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (atomically), then enforce
        the size budget by evicting least-recently-used entries."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_model(value, path)
        self.stats.stores += 1
        if self._max_bytes is not None:
            self._enforce_budget(keep=path)

    def _enforce_budget(self, keep: Path) -> None:
        """Evict oldest-accessed entries until the cache fits its budget.

        The just-written entry (``keep``) is never evicted — otherwise a
        single value larger than the budget would thrash forever.
        """
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for entry in self._root.glob("??/*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue  # concurrently evicted by another process
            total += stat.st_size
            if entry != keep:
                entries.append((stat.st_mtime, stat.st_size, entry))
        if total <= self._max_bytes:
            return
        entries.sort()
        evicted = 0
        for _, size, entry in entries:
            entry.unlink(missing_ok=True)
            evicted += 1
            total -= size
            if total <= self._max_bytes:
                break
        self.stats.evictions += evicted
        # Every logged value is an integer byte/entry count, never
        # cached content.
        logger.info(  # repro-flow: disable=T005
            "feature cache over %d-byte budget: evicted %d LRU entries "
            "(now ~%d bytes)",
            self._max_bytes,
            evicted,
            total,
        )

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing on miss."""
        value = self.load(key)
        if value is None:
            value = compute()
            self.store(key, value)
        return value
