"""Deterministic parallel map.

:func:`pmap` is the one parallelism primitive the repo uses: an
order-stable map over a list of items that optionally fans work out to
a process pool.  Its contract:

* **Order-stable** — results come back in input order at any worker
  count (``ProcessPoolExecutor.map`` preserves submission order, and
  the serial path is a plain loop).
* **Seed-safe** — ``pmap`` itself draws no randomness, and because
  workers are separate processes, a seeded ``fn`` cannot be perturbed
  by global RNG state mutated elsewhere in the parent.  Callables must
  be deterministic *per item* (seeds threaded through arguments, never
  taken from ambient state); under that discipline serial and parallel
  runs are bit-for-bit identical.
* **Degrades gracefully** — sandboxes and constrained CI runners may
  forbid spawning processes; pool-creation failure falls back to the
  serial path instead of erroring, so ``--jobs N`` is always safe to
  pass.

``fn`` must be picklable (a module-level function or
:func:`functools.partial` over one), as must items and results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ValidationError

__all__ = ["pmap", "resolve_jobs", "default_chunksize", "WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool costs more than it saves.
_MIN_PARALLEL_ITEMS = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` means one worker per CPU;
    any other positive integer is taken literally.

    Raises:
        ValidationError: for negative ``jobs``.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValidationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_chunksize(n_items: int, n_workers: int) -> int:
    """Adaptive per-batch item count for process-pool maps.

    ``ProcessPoolExecutor.map``'s default of 1 round-trips a pickle per
    item, which dominates wall time on large fine-grained workloads.
    Large chunks amortize pickling; keeping ~4 chunks per worker still
    load-balances uneven per-item costs.
    """
    if n_items < 0:
        raise ValidationError(f"n_items must be >= 0, got {n_items}")
    if n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    return max(1, n_items // (n_workers * 4))


_chunksize = default_chunksize


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Args:
        fn: picklable single-argument callable, deterministic per item.
        items: the inputs (materialized to a list).
        jobs: worker count per :func:`resolve_jobs` (``None``/1 serial,
            0 = CPU count).
        chunksize: items per inter-process batch; default is sized to
            ~4 chunks per worker.

    Returns:
        ``[fn(x) for x in items]`` — same values, same order, at any
        worker count.
    """
    materialized: Sequence[T] = list(items)
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(materialized) < _MIN_PARALLEL_ITEMS:
        return [fn(x) for x in materialized]
    n_workers = min(n_workers, len(materialized))
    if chunksize is None:
        chunksize = _chunksize(len(materialized), n_workers)
    try:
        executor = ProcessPoolExecutor(max_workers=n_workers)
    except (OSError, PermissionError, ValueError):
        # No process support here (sandbox, exhausted fds, …): the
        # serial path computes the identical result.
        return [fn(x) for x in materialized]
    try:
        with executor:
            return list(executor.map(fn, materialized, chunksize=chunksize))
    except BrokenProcessPool:
        # Workers were killed under us (container OOM/seccomp); the
        # computation is pure, so redo it serially.
        return [fn(x) for x in materialized]


class WorkerPool:
    """A reusable process pool with :func:`pmap`'s exact contract.

    ``pmap`` spins a pool up and down per call, which is fine for one
    big map but wasteful for iterative algorithms (block-wise power
    iteration dispatches one small map per iteration — re-importing the
    worker interpreter 100 times would swamp the SpMV).  ``WorkerPool``
    keeps the workers alive across ``map`` calls while preserving:

    * order-stable results at any worker count,
    * serial fallback when pools cannot be created here, and
    * serial redo of a map whose pool broke mid-flight (after which the
      pool stays serial — the environment has shown it kills workers).

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self._requested = resolve_jobs(jobs)
        self._executor: ProcessPoolExecutor | None = None
        if self._requested > 1:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._requested
                )
            except (OSError, PermissionError, ValueError):
                self._executor = None

    @property
    def workers(self) -> int:
        """Effective worker count (1 when running serially)."""
        return self._requested if self._executor is not None else 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        chunksize: int | None = None,
    ) -> list[R]:
        """``[fn(x) for x in items]`` — same order at any worker count."""
        materialized: Sequence[T] = list(items)
        if self._executor is None or len(materialized) < _MIN_PARALLEL_ITEMS:
            return [fn(x) for x in materialized]
        if chunksize is None:
            chunksize = default_chunksize(len(materialized), self._requested)
        try:
            return list(
                self._executor.map(fn, materialized, chunksize=chunksize)
            )
        except BrokenProcessPool:
            self.close()
            return [fn(x) for x in materialized]

    def close(self) -> None:
        """Shut the pool down (idempotent; the pool goes serial)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
