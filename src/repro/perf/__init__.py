"""Performance layer: caching, deterministic parallelism, references.

The hot paths of the reproduction — N-Gram-Graph similarity
(:mod:`repro.text.ngram_graph`), TrustRank power iteration
(:mod:`repro.network.pagerank`), and the ML training/inference engine
(mini-batch Pegasos in :mod:`repro.ml.svm`, the C4.5 split search in
:mod:`repro.ml.tree`, batched ensemble hill-climbing in
:mod:`repro.ml.ensemble`, chunked SMOTE in :mod:`repro.ml.sampling`,
the batched TF-IDF transform in :mod:`repro.text.term_vector`) — are
vectorized in place; sweep-level compute sharing lives in
:mod:`repro.experiments.sweep`.  This package holds the supporting
infrastructure:

* :mod:`repro.perf.cache` — content-addressed on-disk feature
  memoization, keyed by (content hash, extractor params, code version).
* :mod:`repro.perf.parallel` — an order-stable, seed-safe process-pool
  ``pmap`` with a serial fallback.
* :mod:`repro.perf.reference` — the pre-optimization pure-Python
  implementations, kept as the equivalence oracle for property tests
  and as the baseline timed by ``benchmarks/perf``.
"""

from repro.perf.cache import FeatureCache, content_fingerprint
from repro.perf.parallel import (
    WorkerPool,
    default_chunksize,
    pmap,
    resolve_jobs,
)
from repro.perf.store import MatrixStore

__all__ = [
    "FeatureCache",
    "MatrixStore",
    "WorkerPool",
    "content_fingerprint",
    "default_chunksize",
    "pmap",
    "resolve_jobs",
]
