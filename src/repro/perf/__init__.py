"""Performance layer: caching, deterministic parallelism, references.

The hot paths of the reproduction — N-Gram-Graph similarity
(:mod:`repro.text.ngram_graph`) and TrustRank power iteration
(:mod:`repro.network.pagerank`) — are vectorized in place; this package
holds the supporting infrastructure:

* :mod:`repro.perf.cache` — content-addressed on-disk feature
  memoization, keyed by (content hash, extractor params, code version).
* :mod:`repro.perf.parallel` — an order-stable, seed-safe process-pool
  ``pmap`` with a serial fallback.
* :mod:`repro.perf.reference` — the pre-optimization pure-Python
  implementations, kept as the equivalence oracle for property tests
  and as the baseline timed by ``benchmarks/perf``.
"""

from repro.perf.cache import FeatureCache, content_fingerprint
from repro.perf.parallel import pmap, resolve_jobs

__all__ = [
    "FeatureCache",
    "content_fingerprint",
    "pmap",
    "resolve_jobs",
]
