"""Lint rules R001–R008, tailored to the repro codebase.

Each rule inspects one parsed module (:class:`ModuleInfo`) and yields
:class:`~repro.devtools.findings.Finding` objects.  The catalogue:

========  ==============================================================
R001      exceptions raised inside the library must come from
          :mod:`repro.exceptions` (no bare ``ValueError`` etc.)
R002      no unseeded randomness (``random.*``; ``np.random.*`` other
          than explicit ``Generator`` construction) outside
          ``data/synthesis.py``
R003      import layering: ``text``/``network``/``ml``/``web``/``data``
          must not import ``core``/``experiments``; ``core`` must not
          import ``experiments``; ``devtools`` sits below everything;
          only ``cli`` is unrestricted
R004      no mutable default arguments
R005      no ``print()`` in library code (logging only; the CLI module
          is exempt)
R006      no float ``==``/``!=`` on probability/score values — compare
          with a tolerance
R007      public functions must carry full type hints and a docstring
R008      no bare or over-broad exception handlers (``except:``,
          ``except Exception:``, ``except BaseException:``) in library
          code — handlers that re-raise (cleanup blocks ending in a
          bare ``raise``) and the ``devtools`` layer are exempt
R009      mutable default argument that the function body *mutates*
          (``def f(x, acc=[]): acc.append(x)``) — state leaks across
          calls; autofixable to a ``None`` sentinel.  The syntactic
          superset (any mutable default) is R004; R009 is the
          escalation repro-conc's C001 generalizes across processes
========  ==============================================================

Violations are suppressed line-by-line with ``# repro-lint:
disable=R00X`` (comma-separated ids, or ``all``) and file-wide with
``# repro-lint: disable-file=R00X`` near the top of the file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Iterator, Sequence

from repro.devtools.findings import Finding

__all__ = [
    "ModuleInfo",
    "Rule",
    "RULES",
    "parse_module",
    "parse_suppressions",
    "R001_FIX_MAP",
]

# --------------------------------------------------------------------------
# Shared configuration
# --------------------------------------------------------------------------

#: Builtin exceptions that library code must not raise directly (R001).
BANNED_EXCEPTIONS = frozenset(
    {
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "AssertionError",
        "Exception",
        "BaseException",
    }
)

#: Autofix mapping for R001 (`--fix`): builtin -> repro.exceptions name.
R001_FIX_MAP = {
    "ValueError": "ValidationError",
    "TypeError": "ValidationError",
    "KeyError": "MissingKeyError",
    "LookupError": "MissingKeyError",
}

#: ``np.random`` attributes that construct explicit seeded generators
#: and are therefore allowed by R002.
SEEDED_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Path suffixes exempt from R002 (the synthetic-web generator owns its
#: seeding policy and documents it).
R002_EXEMPT_SUFFIXES = ("data/synthesis.py",)

#: Path suffixes exempt from R005 (user-facing command-line surface).
R005_EXEMPT_SUFFIXES = ("repro/cli.py",)

#: Known architectural layers (directory names under the package root,
#: plus the top-level ``cli`` module).
LAYERS = frozenset(
    {
        "text",
        "network",
        "ml",
        "web",
        "data",
        "core",
        "experiments",
        "cli",
        "devtools",
        "perf",
        "serve",
        "stream",
    }
)

#: layer -> layers it must NOT import.  Absent layers are unrestricted.
#: ``serve`` sits above ``core`` (it wraps the verifier) but below
#: ``experiments``/``cli``; nothing below it may reach up into it.
#: ``data`` sits above ``perf``/``web`` (``data.sharding`` fans out
#: through ``perf.parallel`` and builds ``web.site`` objects), so the
#: kernel layers — and ``serve``, which reaches sharded corpora only
#: through the structural ``SiteIndex`` protocol — must not import it.
#: ``stream`` (the incremental pipeline) sits beside ``core``: it builds
#: on the kernel layers and ``data`` deltas but must not reach into the
#: batch verifier, and nothing below it may import it.
FORBIDDEN_IMPORTS: dict[str, frozenset[str]] = {
    "perf": frozenset({"core", "data", "experiments", "cli", "serve", "stream"}),
    "text": frozenset({"core", "data", "experiments", "cli", "serve", "stream"}),
    "network": frozenset({"core", "data", "experiments", "cli", "serve", "stream"}),
    "ml": frozenset({"core", "data", "experiments", "cli", "serve", "stream"}),
    "web": frozenset({"core", "data", "experiments", "cli", "serve", "stream"}),
    "data": frozenset({"core", "experiments", "cli", "serve", "stream"}),
    "core": frozenset({"experiments", "cli", "serve", "stream"}),
    "stream": frozenset({"core", "experiments", "cli", "serve"}),
    "serve": frozenset({"data", "experiments", "cli", "stream"}),
    "experiments": frozenset({"cli", "serve"}),
    "devtools": frozenset(
        {
            "text",
            "network",
            "ml",
            "web",
            "data",
            "core",
            "experiments",
            "cli",
            "serve",
            "stream",
        }
    ),
}

#: Identifier substrings that mark a value as a probability/score for
#: R006's tolerance requirement.
SCORE_TOKENS = (
    "prob",
    "score",
    "rank",
    "trust",
    "similarity",
    "confidence",
    "pvalue",
    "auc",
    "precision",
    "recall",
    "accuracy",
)

#: File-wide suppressions must appear within the first N lines.
_FILE_SUPPRESS_WINDOW = 12


def _suppress_patterns(marker: str) -> tuple[re.Pattern[str], re.Pattern[str]]:
    escaped = re.escape(marker)
    return (
        re.compile(rf"#\s*{escaped}:\s*disable=(?P<ids>[A-Za-z0-9, ]+)"),
        re.compile(rf"#\s*{escaped}:\s*disable-file=(?P<ids>[A-Za-z0-9, ]+)"),
    )


# --------------------------------------------------------------------------
# Module model
# --------------------------------------------------------------------------


@dataclass(slots=True)
class ModuleInfo:
    """A parsed module plus the context rules need.

    Attributes:
        path: posix-style path as given to the linter.
        tree: the parsed AST.
        lines: raw source lines (without trailing newlines).
        layer: architectural layer, or ``None`` when undetermined.
        line_suppressions: line number -> rule ids disabled on it.
        file_suppressions: rule ids disabled for the whole file.
    """

    path: str
    tree: ast.Module
    lines: list[str]
    layer: str | None = None
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()

    def source_line(self, lineno: int) -> str:
        """The stripped source text at 1-based ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` is disabled at ``lineno``."""
        if rule_id in self.file_suppressions or "all" in self.file_suppressions:
            return True
        ids = self.line_suppressions.get(lineno, frozenset())
        return rule_id in ids or "all" in ids


def parse_suppressions(
    lines: Sequence[str], marker: str = "repro-lint"
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Parse ``# <marker>: disable=...`` comments out of ``lines``.

    Shared by the linter (``repro-lint``) and the flow analyzer
    (``repro-flow``); the two tools deliberately use distinct markers so
    suppressing one never silences the other.

    Returns:
        ``(per_line, file_wide)``: 1-based line number -> disabled rule
        ids, and the rule ids disabled for the whole file (only honored
        within the first :data:`_FILE_SUPPRESS_WINDOW` lines).
    """
    line_re, file_re = _suppress_patterns(marker)
    per_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        if marker not in text:
            continue
        match = line_re.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group("ids").split(",") if part.strip()
            )
            per_line[lineno] = ids
        match = file_re.search(text)
        if match and lineno <= _FILE_SUPPRESS_WINDOW:
            file_wide.update(
                part.strip() for part in match.group("ids").split(",") if part.strip()
            )
    return per_line, frozenset(file_wide)


def infer_layer(path: str) -> str | None:
    """Infer the architectural layer of ``path``.

    The last directory component that names a known layer wins;
    otherwise a top-level module whose stem is a layer (``cli.py``)
    claims that layer.  Paths outside the layered tree return ``None``.
    """
    pure = PurePosixPath(path.replace("\\", "/"))
    directories = pure.parts[:-1]
    for part in reversed(directories):
        if part in LAYERS:
            return part
    if pure.stem in LAYERS:
        return pure.stem
    return None


def parse_module(path: str, source: str) -> ModuleInfo:
    """Parse ``source`` into the :class:`ModuleInfo` the rules consume.

    Raises:
        SyntaxError: when the module does not parse.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    per_line, file_wide = parse_suppressions(lines)
    return ModuleInfo(
        path=path.replace("\\", "/"),
        tree=tree,
        lines=lines,
        layer=infer_layer(path),
        line_suppressions=per_line,
        file_suppressions=file_wide,
    )


# --------------------------------------------------------------------------
# Rule plumbing
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule: identifier, summary, and a check function."""

    rule_id: str
    summary: str
    check: Callable[[ModuleInfo], list[Finding]]

    def run(self, module: ModuleInfo) -> list[Finding]:
        """Run the rule, dropping suppressed findings."""
        return [
            finding
            for finding in self.check(module)
            if not module.is_suppressed(self.rule_id, finding.line)
        ]


def _walk_scoped(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, enclosing_symbol)`` pairs over the whole module."""

    def visit(node: ast.AST, symbol: str) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_symbol = (
                    child.name if symbol == "<module>" else f"{symbol}.{child.name}"
                )
                yield child, symbol
                yield from visit(child, child_symbol)
            else:
                yield child, symbol
                yield from visit(child, symbol)

    yield tree, "<module>"
    yield from visit(tree, "<module>")


def _finding(
    module: ModuleInfo,
    rule_id: str,
    node: ast.AST,
    message: str,
    symbol: str,
    fixable: bool = False,
) -> Finding:
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=rule_id,
        path=module.path,
        line=lineno,
        column=col,
        message=message,
        symbol=symbol,
        source_line=module.source_line(lineno),
        fixable=fixable,
    )


# --------------------------------------------------------------------------
# R001 — library exceptions only
# --------------------------------------------------------------------------


def _check_r001(module: ModuleInfo) -> list[Finding]:
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in BANNED_EXCEPTIONS:
            replacement = R001_FIX_MAP.get(name)
            hint = (
                f" (use repro.exceptions.{replacement})"
                if replacement
                else " (use a repro.exceptions subclass)"
            )
            findings.append(
                _finding(
                    module,
                    "R001",
                    node,
                    f"raises builtin {name}{hint}",
                    symbol,
                    fixable=replacement is not None,
                )
            )
    return findings


# --------------------------------------------------------------------------
# R002 — no unseeded randomness
# --------------------------------------------------------------------------


def _check_r002(module: ModuleInfo) -> list[Finding]:
    if module.path.endswith(R002_EXEMPT_SUFFIXES):
        return []
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(
                        _finding(
                            module,
                            "R002",
                            node,
                            "stdlib `random` is unseeded global state; "
                            "use numpy.random.default_rng(seed)",
                            symbol,
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "random":
                findings.append(
                    _finding(
                        module,
                        "R002",
                        node,
                        "stdlib `random` is unseeded global state; "
                        "use numpy.random.default_rng(seed)",
                        symbol,
                    )
                )
            elif mod in ("numpy.random", "np.random"):
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in SEEDED_RANDOM_ALLOWED
                ]
                if bad:
                    findings.append(
                        _finding(
                            module,
                            "R002",
                            node,
                            f"imports unseeded numpy.random members {bad}; "
                            "construct an explicit Generator instead",
                            symbol,
                        )
                    )
        elif isinstance(node, ast.Attribute):
            # <anything>.random.<member> — module-level RandomState API.
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and node.attr not in SEEDED_RANDOM_ALLOWED
            ):
                findings.append(
                    _finding(
                        module,
                        "R002",
                        node,
                        f"`{value.value.id}.random.{node.attr}` uses the "
                        "unseeded global RandomState; construct an explicit "
                        "Generator via default_rng(seed)",
                        symbol,
                    )
                )
    return findings


# --------------------------------------------------------------------------
# R003 — import layering
# --------------------------------------------------------------------------


def _imported_layer(module_name: str) -> str | None:
    parts = module_name.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1] if parts[1] in LAYERS else None


def _check_r003(module: ModuleInfo) -> list[Finding]:
    layer = module.layer
    forbidden = FORBIDDEN_IMPORTS.get(layer or "", frozenset())
    if not forbidden:
        return []
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "repro":
                # `from repro import core` names submodules directly.
                targets = [f"repro.{alias.name}" for alias in node.names]
            else:
                targets = [node.module]
        for target in targets:
            target_layer = _imported_layer(target)
            if target_layer in forbidden:
                findings.append(
                    _finding(
                        module,
                        "R003",
                        node,
                        f"layer `{layer}` must not import layer "
                        f"`{target_layer}` ({target})",
                        symbol,
                    )
                )
    return findings


# --------------------------------------------------------------------------
# R004 — no mutable default arguments
# --------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _check_r004(module: ModuleInfo) -> list[Finding]:
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = node.name if symbol == "<module>" else f"{symbol}.{node.name}"
        args = node.args
        annotated = list(
            zip(
                args.posonlyargs + args.args,
                [None] * (len(args.posonlyargs) + len(args.args) - len(args.defaults))
                + list(args.defaults),
            )
        ) + list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in annotated:
            if default is not None and _is_mutable_default(default):
                findings.append(
                    _finding(
                        module,
                        "R004",
                        default,
                        f"mutable default for parameter `{arg.arg}` of "
                        f"{qualname}(); use None and create inside",
                        symbol,
                    )
                )
    return findings


# --------------------------------------------------------------------------
# R009 — mutable default arguments that the body mutates
# --------------------------------------------------------------------------

#: Method names that mutate their receiver in place (R009).
_PARAM_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)


def _iter_own_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a function body without entering nested defs/classes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _mutated_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef, candidates: frozenset[str]
) -> set[str]:
    """Which of ``candidates`` the function body mutates in place."""
    mutated: set[str] = set()
    for child in _iter_own_scope(node.body):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in _PARAM_MUTATOR_METHODS
            and isinstance(child.func.value, ast.Name)
            and child.func.value.id in candidates
        ):
            mutated.add(child.func.value.id)
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) else [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in candidates
                ):
                    mutated.add(target.value.id)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in candidates
                ):
                    mutated.add(target.value.id)
    return mutated


def _check_r009(module: ModuleInfo) -> list[Finding]:
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = node.name if symbol == "<module>" else f"{symbol}.{node.name}"
        args = node.args
        paired = list(
            zip(
                args.posonlyargs + args.args,
                [None] * (len(args.posonlyargs) + len(args.args) - len(args.defaults))
                + list(args.defaults),
            )
        ) + list(zip(args.kwonlyargs, args.kw_defaults))
        defaults_by_param = {
            arg.arg: default
            for arg, default in paired
            if default is not None and _is_mutable_default(default)
        }
        if not defaults_by_param:
            continue
        for name in sorted(
            _mutated_params(node, frozenset(defaults_by_param))
        ):
            default = defaults_by_param[name]
            findings.append(
                _finding(
                    module,
                    "R009",
                    default,
                    f"mutable default for `{name}` of {qualname}() is "
                    "mutated in the body — state leaks across calls; use a "
                    "None sentinel and create inside",
                    symbol,
                    fixable=default.lineno == (default.end_lineno or default.lineno),
                )
            )
    return findings


# --------------------------------------------------------------------------
# R005 — no print() in library code
# --------------------------------------------------------------------------


def _check_r005(module: ModuleInfo) -> list[Finding]:
    if module.path.endswith(R005_EXEMPT_SUFFIXES):
        return []
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            findings.append(
                _finding(
                    module,
                    "R005",
                    node,
                    "print() in library code; use the logging module",
                    symbol,
                )
            )
    return findings


# --------------------------------------------------------------------------
# R006 — float equality on probability/score values
# --------------------------------------------------------------------------


def _expr_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _expr_name(node.value)
    if isinstance(node, ast.Call):
        return _expr_name(node.func)
    return None


def _is_scoreish(node: ast.expr) -> bool:
    name = _expr_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return any(token in lowered for token in SCORE_TOKENS)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        return True
    return False


def _is_numeric_literal(node: ast.expr) -> bool:
    if _is_float_literal(node):
        return True
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


def _check_r006(module: ModuleInfo) -> list[Finding]:
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            float_literal = any(_is_float_literal(side) for side in pair)
            score_vs_number = any(
                _is_scoreish(a) and (_is_numeric_literal(b) or _is_scoreish(b))
                for a, b in (pair, pair[::-1])
            )
            if float_literal or score_vs_number:
                findings.append(
                    _finding(
                        module,
                        "R006",
                        node,
                        "exact float equality on a probability/score value; "
                        "compare with a tolerance (abs(a - b) < eps) or "
                        "suppress if exactness is intended",
                        symbol,
                    )
                )
                break
    return findings


# --------------------------------------------------------------------------
# R007 — public functions carry type hints and a docstring
# --------------------------------------------------------------------------


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    missing = []
    positional = node.args.posonlyargs + node.args.args
    for i, arg in enumerate(positional):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in node.args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if node.args.vararg is not None and node.args.vararg.annotation is None:
        missing.append(f"*{node.args.vararg.arg}")
    if node.args.kwarg is not None and node.args.kwarg.annotation is None:
        missing.append(f"**{node.args.kwarg.arg}")
    return missing


def _public_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Yield ``(function_node, enclosing_symbol)`` for the public API.

    Public means: reachable through class bodies whose names (and the
    function's own name) carry no leading underscore, and not nested
    inside another function (closures are implementation detail).
    """

    def visit(node: ast.AST, symbol: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("_"):
                    yield child, symbol
                # Do not descend: nested defs are closures.
            elif isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    child_symbol = (
                        child.name
                        if symbol == "<module>"
                        else f"{symbol}.{child.name}"
                    )
                    yield from visit(child, child_symbol)
            else:
                yield from visit(child, symbol)

    yield from visit(tree, "<module>")


def _check_r007(module: ModuleInfo) -> list[Finding]:
    findings = []
    for node, symbol in _public_functions(module.tree):
        qualname = node.name if symbol == "<module>" else f"{symbol}.{node.name}"
        problems = []
        if ast.get_docstring(node) is None:
            problems.append("missing docstring")
        missing = _missing_annotations(node)
        if missing:
            problems.append(f"unannotated parameters: {', '.join(missing)}")
        if node.returns is None:
            problems.append("missing return annotation")
        if problems:
            findings.append(
                _finding(
                    module,
                    "R007",
                    node,
                    f"public function {qualname}() {'; '.join(problems)}",
                    symbol,
                )
            )
    return findings


# --------------------------------------------------------------------------
# R008 — no bare or over-broad exception handlers
# --------------------------------------------------------------------------

#: Exception names too broad to catch in library code (R008).
BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _broad_handler_name(handler: ast.ExceptHandler) -> str | None:
    """The over-broad name a handler catches, or ``None`` when scoped.

    A bare ``except:`` reports as ``"<bare>"``; tuple handlers are
    broad when any member is.
    """
    if handler.type is None:
        return "<bare>"

    def name_of(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name) and node.id in BROAD_EXCEPTION_NAMES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in BROAD_EXCEPTION_NAMES:
            return node.attr
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                found = name_of(elt)
                if found is not None:
                    return found
        return None

    return name_of(handler.type)


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``.

    Cleanup handlers (undo side effects, then propagate) legitimately
    catch everything; the bare ``raise`` is what distinguishes them
    from handlers that *swallow* the error.
    """
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _check_r008(module: ModuleInfo) -> list[Finding]:
    if module.layer == "devtools":
        # Analysis tooling legitimately firewalls arbitrary target-code
        # failures (a crashing rule must not take the linter down).
        return []
    findings = []
    for node, symbol in _walk_scoped(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_handler_name(node)
        if broad is None or _handler_reraises(node):
            continue
        what = "bare `except:`" if broad == "<bare>" else f"`except {broad}:`"
        findings.append(
            _finding(
                module,
                "R008",
                node,
                f"{what} swallows unrelated failures; catch the specific "
                "exception types the block can actually raise (handlers "
                "that re-raise are exempt)",
                symbol,
            )
        )
    return findings


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

RULES: tuple[Rule, ...] = (
    Rule("R001", "raise repro.exceptions types, not bare builtins", _check_r001),
    Rule("R002", "no unseeded randomness outside data/synthesis.py", _check_r002),
    Rule("R003", "import-layering DAG enforcement", _check_r003),
    Rule("R004", "no mutable default arguments", _check_r004),
    Rule("R005", "no print() in library code", _check_r005),
    Rule("R006", "no exact float equality on score values", _check_r006),
    Rule("R007", "public functions need type hints and a docstring", _check_r007),
    Rule("R008", "no bare or over-broad exception handlers", _check_r008),
    Rule(
        "R009",
        "no mutable default arguments mutated by the function body",
        _check_r009,
    ),
)
