"""Project-specific developer tooling.

Two companion halves guard the numeric kernels of the reproduction:

* :mod:`repro.devtools.lint` — an AST-based static-analysis pass with
  rules tailored to this codebase (exception hygiene, seeded
  randomness, import layering, float-comparison safety, API
  documentation).  Run it as ``python -m repro.devtools.lint src/repro``.
* :mod:`repro.devtools.contracts` — runtime numeric-contract
  decorators (probability vectors, row-stochastic matrices, bounded
  scores) that are active under pytest or ``REPRO_CONTRACTS=1`` and
  compile to no-ops otherwise.

See ``docs/devtools.md`` for the rule catalogue and workflows.
"""

from repro.devtools.findings import Finding
from repro.devtools.rules import RULES, Rule

__all__ = ["Finding", "Rule", "RULES"]
