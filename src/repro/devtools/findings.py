"""Finding model shared by the lint rules, baseline, and CLI.

A finding is one rule violation at one source location.  Its
*fingerprint* deliberately excludes the line number so that committed
baselines survive unrelated edits above the finding: two findings with
the same rule, file, enclosing symbol, and normalized source text are
considered the same grandfathered violation (disambiguated by an
occurrence index when a symbol repeats the same line).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Finding", "assign_occurrences"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule identifier (``R001`` .. ``R007``).
        path: file path as given to the linter (posix separators).
        line: 1-based line number of the violation.
        column: 0-based column offset.
        message: human-readable description.
        symbol: dotted name of the enclosing class/function scope, or
            ``<module>`` for module-level code.
        source_line: the stripped source text of the offending line.
        fixable: whether ``--fix`` can rewrite this finding.
        occurrence: 0-based index among findings sharing the same
            (rule, path, symbol, source_line) — keeps fingerprints
            unique when one symbol repeats an offending construct.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    symbol: str = "<module>"
    source_line: str = ""
    fixable: bool = False
    occurrence: int = field(default=0, compare=False)

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return "|".join(
            (
                self.rule,
                self.path,
                self.symbol,
                self.source_line,
                str(self.occurrence),
            )
        )

    def render(self) -> str:
        """One-line ``path:line:col: RULE message`` report form."""
        return f"{self.path}:{self.line}:{self.column + 1}: {self.rule} {self.message}"


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Stamp occurrence indexes so repeated identical lines fingerprint
    uniquely (findings must be in source order per file)."""
    counter: Counter[tuple[str, str, str, str]] = Counter()
    stamped = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol, finding.source_line)
        stamped.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                column=finding.column,
                message=finding.message,
                symbol=finding.symbol,
                source_line=finding.source_line,
                fixable=finding.fixable,
                occurrence=counter[key],
            )
        )
        counter[key] += 1
    return stamped
