"""repro-hot: hot-path performance analysis CLI.

Usage::

    python -m repro.devtools.hot [package-dirs ...]
        [--baseline PATH] [--no-baseline] [--write-baseline]
        [--justification TEXT] [--format text|json|sarif|github]
        [--entry SUFFIX ...] [--fix] [--list-rules]

With no paths, ``src/repro`` is analyzed.  Exit status mirrors the
other analyzers: 0 when no new findings (baselined findings do not
fail the run), 1 when new findings exist **or** ``--fix`` rewrote any
file, 2 on usage errors.

``--entry`` registers extra hot-entry qualname suffixes on top of the
built-in registry, so a one-off investigation can rank findings
against any root.  The default baseline file is
``.repro-hot-baseline.json`` so the four analyzers' baselines never
collide.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.autofix import apply_p003_fixes
from repro.devtools.baseline import Baseline
from repro.devtools.emit import render_github, render_sarif
from repro.devtools.findings import Finding
from repro.devtools.flow.analysis import ProjectAnalysis, analyze_project
from repro.devtools.hot.analyzer import hot_findings
from repro.devtools.hot.registry import HOT_RULES

__all__ = ["main", "analyze_paths", "apply_fixes", "DEFAULT_HOT_BASELINE_NAME"]

DEFAULT_HOT_BASELINE_NAME = ".repro-hot-baseline.json"

_TOOL_NAME = "repro-hot"


def analyze_paths(
    paths: Sequence[str],
    analysis: ProjectAnalysis | None = None,
    entries: Iterable[str] = (),
) -> tuple[list[Finding], list[tuple[str, int, str]]]:
    """Run the hot-path analysis over package directories.

    Returns (findings, load_errors); findings are occurrence-stamped
    and ordered by descending static cost.  Pass a pre-built
    ``analysis`` to share one front-end pass with the other analyzers;
    ``entries`` adds hot-entry qualname suffixes to the registry.
    """
    if analysis is None:
        analysis = analyze_project(paths)
    return hot_findings(analysis, extra_entries=entries)


def apply_fixes(
    findings: Sequence[Finding], fixed_files: list[str]
) -> None:
    """Apply the P003 list->set autofix for every fixable finding.

    Files are rewritten in place; rewritten paths are appended to
    ``fixed_files``.  Callers should re-run the analysis afterwards so
    the report reflects the post-fix tree.
    """
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        if finding.rule == "P003" and finding.fixable:
            by_path.setdefault(finding.path, []).append(finding)
    for path, path_findings in sorted(by_path.items()):
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        fixed = apply_p003_fixes(source, path_findings)
        if fixed == source:
            continue
        file_path.write_text(fixed, encoding="utf-8")
        if path not in fixed_files:
            fixed_files.append(path)


def _render_text(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    out = [finding.render() for finding in new]
    if grandfathered:
        out.append(f"({len(grandfathered)} baselined finding(s) suppressed)")
    if stale:
        out.append(
            f"warning: {len(stale)} stale baseline entr(y/ies) no longer "
            "observed; refresh with --write-baseline"
        )
    if new:
        out.append(f"found {len(new)} new finding(s)")
    else:
        out.append("clean")
    return "\n".join(out)


def _render_json(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    return json.dumps(
        {
            "new": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "column": f.column,
                    "message": f.message,
                    "symbol": f.symbol,
                    "fixable": f.fixable,
                    "fingerprint": f.fingerprint(),
                }
                for f in new
            ],
            "baselined": len(grandfathered),
            "stale_baseline_entries": stale,
        },
        indent=2,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.hot",
        description=(
            "Hot-path performance static analysis for the repro codebase "
            "(rules P001-P008), ranked by a static cost model."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_HOT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="",
        help="note recorded on every entry written by --write-baseline",
    )
    parser.add_argument(
        "--entry",
        action="append",
        default=[],
        metavar="SUFFIX",
        help=(
            "extra hot-entry qualname suffix (repeatable); added to the "
            "built-in registry for the reachability pass"
        ),
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply the P003 list->set autofix in place, then re-analyze",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, summary in HOT_RULES.items():
            sys.stdout.write(f"{rule_id}  {summary}\n")
        return 0

    missing = [raw for raw in args.paths if not Path(raw).is_dir()]
    if missing:
        sys.stderr.write(
            f"error: not a package directory: {', '.join(missing)}\n"
        )
        return 2

    findings, load_errors = analyze_paths(args.paths, entries=args.entry)
    fixed_files: list[str] = []
    if args.fix:
        apply_fixes(findings, fixed_files)
        if fixed_files:
            findings, load_errors = analyze_paths(args.paths, entries=args.entry)
    for path, line, message in load_errors:
        sys.stderr.write(f"warning: {path}:{line}: {message}\n")

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(DEFAULT_HOT_BASELINE_NAME)
    )
    if args.write_baseline:
        Baseline.from_findings(findings, justification=args.justification).save(
            baseline_path, tool=_TOOL_NAME
        )
        sys.stdout.write(f"wrote {len(findings)} finding(s) to {baseline_path}\n")
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            sys.stderr.write(f"error: {exc}\n")
            return 2
    new, grandfathered = baseline.filter(findings)
    stale = baseline.stale_fingerprints(findings)

    if args.format == "sarif":
        sys.stdout.write(render_sarif(_TOOL_NAME, new, HOT_RULES) + "\n")
    elif args.format == "github":
        sys.stdout.write(render_github(new) + "\n")
    elif args.format == "json":
        sys.stdout.write(_render_json(new, grandfathered, stale) + "\n")
    else:
        sys.stdout.write(_render_text(new, grandfathered, stale) + "\n")
    if fixed_files:
        sys.stdout.write(
            f"note: --fix rewrote {len(fixed_files)} file(s); review and "
            "commit the changes\n"
        )
        return 1
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
