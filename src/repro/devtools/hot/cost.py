"""Static cost model ranking repro-hot findings.

A finding's cost is the product of two static multipliers:

* **depth weight** — ``DEPTH_BASE ** min(depth, MAX_DEPTH_WEIGHTED)``
  where ``depth`` is the syntactic loop-nesting depth at the finding
  site.  Each enclosing loop multiplies how often the site executes, so
  a densification three loops deep inside the sweep outranks the same
  call at top level.
* **reach weight** — ``1 / (1 + distance)`` when the enclosing function
  is reachable from a registered hot entry point through the flow call
  graph (``distance`` = number of calls from the nearest entry), and
  :data:`~repro.devtools.hot.registry.COLD_WEIGHT` otherwise.  Cold
  findings stay reported, but every hot site of equal depth outranks
  them.

Both inputs are integers derived deterministically from the AST and the
call graph, so ranking is reproducible across runs and machines.
"""

from __future__ import annotations

from repro.devtools.hot.registry import (
    COLD_WEIGHT,
    DEPTH_BASE,
    MAX_DEPTH_WEIGHTED,
)

__all__ = ["depth_weight", "reach_weight", "site_cost", "format_cost"]


def depth_weight(depth: int) -> float:
    """Multiplier for a site nested under ``depth`` loops (capped so
    pathological nesting cannot overflow the ranking)."""
    return float(DEPTH_BASE ** min(max(depth, 0), MAX_DEPTH_WEIGHTED))


def reach_weight(entry_distance: int | None) -> float:
    """Multiplier for hot reachability; ``None`` means not reachable
    from any registered hot entry point."""
    if entry_distance is None:
        return COLD_WEIGHT
    return 1.0 / (1.0 + max(entry_distance, 0))


def site_cost(depth: int, entry_distance: int | None) -> float:
    """Combined static cost of one finding site."""
    return depth_weight(depth) * reach_weight(entry_distance)


def format_cost(cost: float) -> str:
    """Render a cost for finding messages (stable, short)."""
    return f"{cost:g}"
