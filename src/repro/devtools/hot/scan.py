"""Per-scope syntactic scanner for the hot-path rules.

For one function (or one module's top-level code) the scanner walks the
statement tree with an explicit loop stack, recording the loop-nesting
depth of every candidate site.  It emits :class:`HotSite` records for
the purely syntactic rules (P001, P003, P004, P007, P008) and
*candidates* for P005 (loop-invariant calls), which the analyzer then
filters by purity and hot reachability.

Nested function and class bodies are skipped — they are separate
call-graph units scanned on their own — so each site attributes to
exactly one unit and the cost model can gate it on that unit's
reachability.  Comprehension bodies count as part of the enclosing
statement (their implicit loop does not increment the depth; the model
under-counts rather than guesses).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.conc.registry import MUTATOR_METHODS
from repro.devtools.hot.registry import (
    ARRAY_GROWTH_FUNCTIONS,
    BATCH_SIBLINGS,
)
from repro.devtools.flow.project import FunctionUnit, ModuleUnit, Project

__all__ = ["HotSite", "scan_function", "scan_module_level"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_HASHABLE_CONST = (str, int, float, bool, bytes, type(None))

#: Assignment values that build a sequential (scan-per-lookup) container.
_SEQ_LITERALS = (ast.List, ast.Tuple, ast.ListComp)
_SEQ_FACTORIES = frozenset({"list", "sorted"})
#: ...and ones that already hash their members (P003 near-misses).
_HASHED_LITERALS = (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)
_HASHED_FACTORIES = frozenset({"set", "frozenset", "dict"})


@dataclass(slots=True)
class HotSite:
    """One candidate finding before cost ranking and gating."""

    rule: str
    line: int
    column: int
    depth: int
    message: str
    fixable: bool = False
    #: P005 only: resolved project qualname of the invariant call.
    callee: str | None = None
    #: Stable tie-break payload for deduplication.
    extra: str = ""


@dataclass(slots=True)
class _ScopeIndex:
    """Name-level facts about one scope, gathered in a single walk."""

    assignments: dict[str, list[tuple[int, ast.expr]]] = field(default_factory=dict)
    stores: dict[str, list[int]] = field(default_factory=dict)
    mutations: dict[str, list[int]] = field(default_factory=dict)


def _iter_scope_nodes(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk ``body`` without entering nested def/class/lambda bodies."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _index_scope(body: Sequence[ast.stmt]) -> _ScopeIndex:
    index = _ScopeIndex()
    for node in _iter_scope_nodes(body):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            index.stores.setdefault(node.id, []).append(node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    index.assignments.setdefault(target.id, []).append(
                        (node.lineno, node.value)
                    )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                index.assignments.setdefault(node.target.id, []).append(
                    (node.lineno, node.value)
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
            ):
                index.mutations.setdefault(func.value.id, []).append(node.lineno)
    return index


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _rooted_at(node: ast.expr, names: set[str]) -> bool:
    """Whether ``node`` is a name in ``names`` or an attribute/subscript
    chain rooted at one (``doc``, ``doc.text``, ``doc["body"]``)."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return isinstance(current, ast.Name) and current.id in names


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


class _ScopeScanner:
    def __init__(
        self,
        project: Project,
        module: ModuleUnit,
        body: Sequence[ast.stmt],
        scope_name: str,
        own_qualname: str | None,
    ) -> None:
        self.project = project
        self.module = module
        self.body = body
        self.scope_name = scope_name  # bare name ("" at module level)
        self.own_qualname = own_qualname
        self.index = _index_scope(body)
        self.sites: list[HotSite] = []

    # -- driver ------------------------------------------------------------

    def run(self) -> list[HotSite]:
        self._visit_stmts(self.body, [])
        return self.sites

    def _visit_stmts(self, stmts: Sequence[ast.stmt], loops: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_exprs([stmt.iter], loops)
                inner = loops + [stmt]
                self._visit_stmts(stmt.body, inner)
                self._visit_stmts(stmt.orelse, loops)
            elif isinstance(stmt, ast.While):
                self._scan_exprs([stmt.test], loops)
                inner = loops + [stmt]
                self._visit_stmts(stmt.body, inner)
                self._visit_stmts(stmt.orelse, loops)
            elif isinstance(stmt, ast.If):
                self._scan_exprs([stmt.test], loops)
                self._visit_stmts(stmt.body, loops)
                self._visit_stmts(stmt.orelse, loops)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_exprs(
                    [item.context_expr for item in stmt.items], loops
                )
                self._visit_stmts(stmt.body, loops)
            elif isinstance(stmt, ast.Try):
                self._visit_stmts(stmt.body, loops)
                for handler in stmt.handlers:
                    self._visit_stmts(handler.body, loops)
                self._visit_stmts(stmt.orelse, loops)
                self._visit_stmts(stmt.finalbody, loops)
            else:
                self._scan_statement(stmt, loops)

    # -- statement-level rules ---------------------------------------------

    def _scan_statement(self, stmt: ast.stmt, loops: list[ast.stmt]) -> None:
        depth = len(loops)
        if depth >= 1 and isinstance(stmt, ast.Assign):
            self._check_p004(stmt, depth)
        if depth >= 1 and isinstance(stmt, ast.AugAssign):
            self._check_p008(stmt, depth)
        self._scan_exprs(
            [child for child in ast.iter_child_nodes(stmt) if isinstance(child, ast.expr)],
            loops,
        )

    def _check_p004(self, stmt: ast.Assign, depth: int) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        target = stmt.targets[0].id
        call = stmt.value
        if not isinstance(call, ast.Call) or not isinstance(call.func, ast.Attribute):
            return
        func = call.func
        if func.attr not in ARRAY_GROWTH_FUNCTIONS:
            return
        if not isinstance(func.value, ast.Name):
            return
        base = self.module.imports.get(func.value.id, func.value.id)
        if base != "numpy":
            return
        arg_names: set[str] = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            arg_names |= _loaded_names(arg)
        if target not in arg_names:
            return
        self.sites.append(
            HotSite(
                rule="P004",
                line=stmt.lineno,
                column=stmt.col_offset,
                depth=depth,
                message=(
                    f"'{target} = np.{func.attr}({target}, ...)' grows an "
                    "array incrementally inside a loop (quadratic copying) "
                    "— collect parts in a list and concatenate once after"
                ),
                extra=target,
            )
        )

    def _check_p008(self, stmt: ast.AugAssign, depth: int) -> None:
        if not isinstance(stmt.op, ast.Add) or not isinstance(stmt.target, ast.Name):
            return
        name = stmt.target.id
        initialized_str = any(
            line <= stmt.lineno
            and (
                (isinstance(value, ast.Constant) and isinstance(value.value, str))
                or isinstance(value, ast.JoinedStr)
            )
            for line, value in self.index.assignments.get(name, ())
        )
        if not initialized_str:
            return
        self.sites.append(
            HotSite(
                rule="P008",
                line=stmt.lineno,
                column=stmt.col_offset,
                depth=depth,
                message=(
                    f"'{name} += ...' accumulates a string inside a loop "
                    "(quadratic copying) — collect parts and ''.join() once"
                ),
                extra=name,
            )
        )

    # -- expression-level rules --------------------------------------------

    def _scan_exprs(self, exprs: Sequence[ast.expr], loops: list[ast.stmt]) -> None:
        depth = len(loops)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._check_call(node, depth, loops)
                elif isinstance(node, ast.Compare) and depth >= 1:
                    self._check_p003(node, depth, loops)

    def _check_call(
        self, node: ast.Call, depth: int, loops: list[ast.stmt]
    ) -> None:
        name = _call_name(node)
        if name is None:
            return
        if depth >= 1 and name in BATCH_SIBLINGS:
            self._check_p001(node, name, depth, loops)
        if name == "todense":
            self._emit_p007(node, depth, name)
        elif name == "toarray" and depth >= 1:
            self._emit_p007(node, depth, name)
        if depth >= 1 and isinstance(node.func, ast.Name):
            self._check_p005(node, node.func.id, depth, loops)

    def _check_p001(
        self, node: ast.Call, name: str, depth: int, loops: list[ast.stmt]
    ) -> None:
        sibling = BATCH_SIBLINGS[name]
        if sibling not in self.project.by_name:
            return
        # The batch API's own body may loop over the per-item form.
        if self.scope_name == sibling:
            return
        # Per-*item* signature: an argument must be (rooted at) a loop
        # target.  A call passing a whole collection inside a loop —
        # ``vectorizer.transform(fold_docs)`` per fold — is already
        # batched and must not fire.
        loop_targets: set[str] = set()
        for loop in loops:
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                loop_targets |= {
                    child.id
                    for child in ast.walk(loop.target)
                    if isinstance(child, ast.Name)
                }
        if not any(
            _rooted_at(arg, loop_targets)
            for arg in list(node.args) + [kw.value for kw in node.keywords]
        ):
            return
        self.sites.append(
            HotSite(
                rule="P001",
                line=node.lineno,
                column=node.col_offset,
                depth=depth,
                message=(
                    f"per-item '{name}()' inside a loop — batch sibling "
                    f"'{sibling}()' exists; call it once on the whole batch"
                ),
                extra=name,
            )
        )

    def _emit_p007(self, node: ast.Call, depth: int, kind: str) -> None:
        self.sites.append(
            HotSite(
                rule="P007",
                line=node.lineno,
                column=node.col_offset,
                depth=depth,
                message=f".{kind}() densifies a sparse operand",
                extra=kind,
            )
        )

    def _check_p005(
        self, node: ast.Call, name: str, depth: int, loops: list[ast.stmt]
    ) -> None:
        callee = self._resolve_local_call(name)
        if callee is None or callee == self.own_qualname:
            return
        if node.keywords and any(kw.arg is None for kw in node.keywords):
            return  # **kwargs: cannot prove invariance
        args = list(node.args) + [kw.value for kw in node.keywords]
        if any(isinstance(arg, ast.Starred) for arg in args):
            return
        for arg in args:
            if isinstance(arg, ast.Constant):
                continue
            if isinstance(arg, ast.Name) and not self._stored_in_loops(
                arg.id, loops
            ):
                continue
            return  # non-trivial or loop-varying argument
        self.sites.append(
            HotSite(
                rule="P005",
                line=node.lineno,
                column=node.col_offset,
                depth=depth,
                message=(
                    f"loop-invariant call to pure '{name}()' inside a hot "
                    "loop — hoist it above the loop"
                ),
                callee=callee,
                extra=name,
            )
        )

    def _resolve_local_call(self, name: str) -> str | None:
        unit = self.module.functions.get(name)
        if unit is not None:
            return unit.qualname
        target = self.module.imports.get(name)
        if target is not None and target in self.project.functions:
            return target
        return None

    def _stored_in_loops(self, name: str, loops: list[ast.stmt]) -> bool:
        lines = self.index.stores.get(name, ()) or ()
        mutation_lines = self.index.mutations.get(name, ()) or ()
        for loop in loops:
            end = loop.end_lineno or loop.lineno
            for line in list(lines) + list(mutation_lines):
                if loop.lineno <= line <= end:
                    return True
        return False

    def _check_p003(
        self, node: ast.Compare, depth: int, loops: list[ast.stmt]
    ) -> None:
        comparators = node.comparators
        for op, comparator in zip(node.ops, comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if not isinstance(comparator, ast.Name):
                continue
            name = comparator.id
            innermost = loops[-1]
            prior = [
                (line, value)
                for line, value in self.index.assignments.get(name, ())
                if line < innermost.lineno
            ]
            if not prior:
                continue
            if self._stored_in_loops(name, [innermost]):
                continue  # built or mutated inside the loop: not a scan bug
            _line, value = max(prior, key=lambda pair: pair[0])
            if not self._is_sequential(value):
                continue
            self.sites.append(
                HotSite(
                    rule="P003",
                    line=node.lineno,
                    column=node.col_offset,
                    depth=depth,
                    message=(
                        f"membership test scans list '{name}' built outside "
                        "the loop on every iteration — use a set"
                    ),
                    fixable=self._p003_fixable(name, value),
                    extra=name,
                )
            )

    def _is_sequential(self, value: ast.expr) -> bool:
        if isinstance(value, _SEQ_LITERALS):
            return True
        if isinstance(value, _HASHED_LITERALS):
            return False
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _SEQ_FACTORIES:
                return True
        return False

    def _p003_fixable(self, name: str, value: ast.expr) -> bool:
        if len(self.index.assignments.get(name, ())) != 1:
            return False
        if len(self.index.stores.get(name, ())) != 1:
            return False
        if self.index.mutations.get(name):
            return False
        if not isinstance(value, (ast.List, ast.Tuple)) or not value.elts:
            return False
        if value.lineno != (value.end_lineno or value.lineno):
            return False
        return all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, _HASHABLE_CONST)
            for elt in value.elts
        )


def scan_function(project: Project, unit: FunctionUnit) -> list[HotSite]:
    """All candidate sites in one function body."""
    return _ScopeScanner(
        project, unit.module, unit.node.body, unit.name, unit.qualname
    ).run()


def scan_module_level(project: Project, module: ModuleUnit) -> list[HotSite]:
    """All candidate sites in one module's top-level code."""
    return _ScopeScanner(project, module, module.tree.body, "", None).run()
