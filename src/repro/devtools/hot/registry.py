"""Rule catalogue and shared configuration for ``repro-hot``.

The hot-path analyzer guards the contract PRs 4-5 bought with the
vectorized engine: the feature/ranking/ML pipeline must stay batch,
sparse, and allocation-linear on the paths a million-site run actually
exercises.  Rules P001-P008 each police one way that contract erodes.

Findings are suppressed with ``# repro-hot: disable=P003`` comments
(same syntax as repro-lint/repro-flow/repro-conc, different marker).
"""

from __future__ import annotations

__all__ = [
    "HOT_RULES",
    "SUPPRESSION_MARKER",
    "BATCH_SIBLINGS",
    "HOT_ENTRY_SUFFIXES",
    "REFERENCE_MODULE",
    "REFERENCE_EXEMPT_SEGMENTS",
    "ARRAY_GROWTH_FUNCTIONS",
    "PURE_BUILTINS",
    "DEPTH_BASE",
    "MAX_DEPTH_WEIGHTED",
    "COLD_WEIGHT",
]

#: Marker recognised in suppression comments.
SUPPRESSION_MARKER = "repro-hot"

HOT_RULES: dict[str, str] = {
    "P001": (
        "per-item call inside a loop to an API with a registered batch "
        "sibling (one batched call amortizes setup and vectorizes)"
    ),
    "P002": (
        "repro.perf.reference kernel imported outside tests/benchmarks "
        "(reference kernels are equivalence oracles, not production code)"
    ),
    "P003": (
        "membership test against a list/tuple built outside the loop — "
        "O(n^2) scan; use a set (autofixable when provably unmutated)"
    ),
    "P004": (
        "incremental np.append/np.vstack/np.concatenate growth inside a "
        "loop — quadratic copying; collect parts and concatenate once"
    ),
    "P005": (
        "loop-invariant pure call inside a hot loop — hoist it above "
        "the loop (same result every iteration)"
    ),
    "P006": (
        "method re-derives invariant state (sorted(...) over an "
        "attribute only assigned in __init__) on every call — cache it"
    ),
    "P007": (
        ".toarray()/.todense() densification reachable from a hot entry "
        "point — keep the operand sparse or densify once outside loops"
    ),
    "P008": (
        "str += accumulation inside a loop — quadratic copying; collect "
        "parts and ''.join() once"
    ),
}

#: Per-item callable name -> its registered batch sibling.  P001 fires
#: on a loop-nested call to a key when the project defines the sibling;
#: extend this mapping to register new batch APIs.
BATCH_SIBLINGS: dict[str, str] = {
    "transform": "transform_many",
    "auc_roc": "auc_roc_many",
    "verify_site": "verify_sites",
}

#: Dotted-qualname suffixes that mark hot entry points: a project
#: function whose qualified name ends with one of these (on a ``.``
#: boundary) roots the reachability pass of the cost model.  They cover
#: the sweep driver, the serving path, the crawl loop, and the kernels
#: the perf benchmark harness drives directly.
HOT_ENTRY_SUFFIXES: tuple[str, ...] = (
    "sweep.run_tfidf_sweep",
    # the per-grid-cell kernel run_tfidf_sweep dispatches through pmap
    # (first-class function passing is invisible to the call graph)
    "sweep.run_fold",
    "verifier.PharmacyVerifier.verify_sites",
    "crawler.Crawler.crawl_site",
    "svm.pegasos_weights",
    "ngram_graph.ClassGraphModel.transform_many",
    "metrics.auc_roc_many",
    # the serving request path: every HTTP request funnels through the
    # handler dispatch and the service batch entry point (registered
    # explicitly since BaseHTTPRequestHandler invokes do_GET/do_POST
    # reflectively, invisible to the call graph)
    "http.VerificationRequestHandler._dispatch",
    "service.VerificationService.verify_batch",
    # the million-site scale-out inner loops: the per-block SpMV runs
    # once per block per power iteration through a process pool (the
    # pool.map dispatch is invisible to the call graph), and the shard
    # writer is the pmap worker behind sharded corpus generation
    "blockrank._block_spmv",
    "sharding._write_shard_worker",
    # the incremental-stream tick path: delta application materializes
    # changed sites every tick, and the residual push is the per-tick
    # TrustRank kernel (driven by benchmarks/stream, invisible to the
    # call graph from the batch entries)
    "deltas.StreamCorpus.apply",
    "rank.DeltaRankState.push",
)

#: The reference-kernel module P002 polices.
REFERENCE_MODULE = "repro.perf.reference"

#: Dotted-module-name segments whose modules may import the reference
#: kernels (equivalence tests and the benchmark harness live there).
#: Segment-based, not path-based, so a fixture tree analyzed from any
#: directory keeps the same verdicts.
REFERENCE_EXEMPT_SEGMENTS = frozenset({"tests", "benchmarks"})

#: numpy functions whose loop-nested accumulation is quadratic (P004).
ARRAY_GROWTH_FUNCTIONS = frozenset({"append", "vstack", "hstack", "concatenate"})

#: Builtins treated as pure for the P005 purity derivation.
PURE_BUILTINS = frozenset(
    {
        "abs",
        "all",
        "any",
        "bool",
        "divmod",
        "enumerate",
        "float",
        "frozenset",
        "int",
        "len",
        "max",
        "min",
        "pow",
        "range",
        "round",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
    }
)

#: Cost model: ``cost = DEPTH_BASE**min(depth, MAX_DEPTH_WEIGHTED) *
#: reach``, where ``reach`` is ``1/(1+distance)`` for hot-reachable
#: sites (distance = calls from the nearest hot entry) and
#: :data:`COLD_WEIGHT` otherwise.  Base 4 approximates "each loop level
#: multiplies the iteration count"; the cold weight keeps cold findings
#: reported but ranked below any hot site of equal depth.
DEPTH_BASE = 4
MAX_DEPTH_WEIGHTED = 4
COLD_WEIGHT = 1.0 / 16.0
