"""repro-hot: hot-path performance anti-pattern analyzer (P001-P008).

Detects statically visible performance regressions — per-item calls to
batch APIs, CSR densification, O(n^2) membership scans, quadratic
array/string accumulation, hoistable pure calls, per-call re-derivation
of invariant state, and reference-kernel imports — and ranks every
finding by a static cost model: syntactic loop-nesting depth at the
site multiplied by reachability from the registered hot entry points
(the sweep driver, the serving verifier, the crawl loop, and the
kernels the perf benchmark harness drives).
"""

from repro.devtools.hot.analyzer import hot_findings
from repro.devtools.hot.cli import main
from repro.devtools.hot.registry import HOT_RULES

__all__ = ["hot_findings", "main", "HOT_RULES"]
