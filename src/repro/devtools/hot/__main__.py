"""``python -m repro.devtools.hot`` entry point."""

import sys

from repro.devtools.hot.cli import main

if __name__ == "__main__":
    sys.exit(main())
