"""Rule engine for ``repro-hot`` (P001-P008).

Findings come in three shapes:

* **syntactic** — P001 (per-item batch-API calls), P003 (list
  membership scans), P004 (incremental array growth), P008 (string
  accumulation) fire wherever the scanner sees them; cold sites are
  still reported but the cost model ranks them below hot ones;
* **hot-gated** — P005 (hoistable pure calls) and P007 (densification)
  only fire in functions reachable from a registered hot entry point
  through the flow call graph — a ``todense()`` in a cold CLI helper is
  noise, the same one inside the sweep is a scaling bug;
* **structural** — P002 (reference-kernel imports) per module and P006
  (per-call re-derivation of invariant state) per class.

Every finding's message carries its static cost
(:mod:`repro.devtools.hot.cost`) and, for hot sites, the shortest call
chain from the entry point; the report is ordered by descending cost so
the most expensive regression is always the first line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.conc.effects import extract_effects
from repro.devtools.conc.registry import MUTATOR_METHODS
from repro.devtools.findings import Finding, assign_occurrences
from repro.devtools.flow.analysis import ProjectAnalysis
from repro.devtools.flow.project import FunctionUnit, ModuleUnit
from repro.devtools.hot.cost import format_cost, site_cost
from repro.devtools.hot.registry import (
    HOT_ENTRY_SUFFIXES,
    PURE_BUILTINS,
    REFERENCE_EXEMPT_SEGMENTS,
    REFERENCE_MODULE,
    SUPPRESSION_MARKER,
)
from repro.devtools.hot.scan import HotSite, scan_function, scan_module_level

__all__ = ["hot_findings", "hot_entry_qualnames", "derive_pure_functions"]

_MAX_CHAIN_SHOWN = 4


def _matches_suffix(qualname: str, suffix: str) -> bool:
    return qualname == suffix or qualname.endswith("." + suffix)


def hot_entry_qualnames(
    analysis: ProjectAnalysis, extra_suffixes: Iterable[str] = ()
) -> list[str]:
    """Project functions matching the registered hot-entry suffixes."""
    suffixes = tuple(HOT_ENTRY_SUFFIXES) + tuple(extra_suffixes)
    return sorted(
        qualname
        for qualname in analysis.project.functions
        if any(_matches_suffix(qualname, suffix) for suffix in suffixes)
    )


def derive_pure_functions(analysis: ProjectAnalysis) -> frozenset[str]:
    """Qualnames provably pure: no side effects, no determinism events,
    and every call in the body resolves to a pure project function or a
    whitelisted pure builtin.  Attribute calls (``self.m()``,
    ``np.sqrt``) conservatively poison purity."""
    project = analysis.project
    effects = extract_effects(project)
    candidates: dict[str, set[str]] = {}
    for qualname, unit in project.functions.items():
        fx = effects.get(qualname)
        if fx is not None and (fx.mutations or fx.rebinds or fx.raw_writes):
            continue
        if analysis.result.det_events.get(qualname):
            continue
        callees = _syntactic_callees(unit)
        if callees is None:
            continue
        candidates[qualname] = callees
    pure = set(candidates)
    changed = True
    while changed:
        changed = False
        for qualname in sorted(pure):
            if any(callee not in pure for callee in candidates[qualname]):
                pure.discard(qualname)
                changed = True
    return frozenset(pure)


def _syntactic_callees(unit: FunctionUnit) -> set[str] | None:
    """Project qualnames called by ``unit``, or ``None`` when the body
    contains a call/construct purity cannot see through."""
    module = unit.module
    callees: set[str] = set()
    stack: list[ast.AST] = list(unit.node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Global, ast.Nonlocal, ast.Await, ast.Yield, ast.YieldFrom)):
            return None
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                target = module.functions.get(func.id)
                if target is not None:
                    callees.add(target.qualname)
                else:
                    imported = module.imports.get(func.id)
                    if imported is not None:
                        # Imported project functions join the fixpoint;
                        # external imports poison purity.
                        callees.add(imported)
                    elif func.id not in PURE_BUILTINS:
                        return None
            else:
                return None  # attribute/lambda call: unknown purity
        stack.extend(ast.iter_child_nodes(node))
    return callees


def _chain_note(chain: tuple[str, ...]) -> str:
    shown = chain[-_MAX_CHAIN_SHOWN:]
    prefix = "... -> " if len(chain) > _MAX_CHAIN_SHOWN else ""
    short = " -> ".join(part.rsplit(".", 2)[-1] for part in shown)
    return f"hot: {prefix}{short}"


class _HotAnalyzer:
    def __init__(
        self, analysis: ProjectAnalysis, extra_entries: Iterable[str] = ()
    ) -> None:
        self.project = analysis.project
        self.result = analysis.result
        self.graph = analysis.graph
        self.entries = hot_entry_qualnames(analysis, extra_entries)
        self.reach = self.graph.reachable_from_any(self.entries)
        self.pure = derive_pure_functions(analysis)
        self.pairs: list[tuple[float, Finding]] = []
        self._seen: set[tuple[str, str, int, int, str]] = set()

    # -- emission ----------------------------------------------------------

    def _distance(self, node: str) -> int | None:
        hit = self.reach.get(node)
        if hit is None:
            return None
        return len(hit[1]) - 1

    def _emit(
        self,
        rule: str,
        module: ModuleUnit,
        line: int,
        column: int,
        message: str,
        symbol: str,
        depth: int,
        node: str,
        fixable: bool = False,
        identity_extra: str = "",
    ) -> None:
        if module.is_suppressed_marker(SUPPRESSION_MARKER, rule, line):
            return
        identity = (rule, module.path, line, column, identity_extra)
        if identity in self._seen:
            return
        self._seen.add(identity)
        distance = self._distance(node)
        cost = site_cost(depth, distance)
        if distance is None:
            note = "cold"
        else:
            _entry, chain = self.reach[node]
            note = _chain_note(chain)
        self.pairs.append(
            (
                cost,
                Finding(
                    rule=rule,
                    path=module.path,
                    line=line,
                    column=column,
                    message=f"{message} [cost {format_cost(cost)}; {note}]",
                    symbol=symbol,
                    source_line=module.source_line(line),
                    fixable=fixable,
                ),
            )
        )

    # -- scanner-driven rules ----------------------------------------------

    def _scanned(self) -> None:
        for qualname in sorted(self.project.functions):
            unit = self.project.functions[qualname]
            hot = qualname in self.reach
            for site in scan_function(self.project, unit):
                if not self._keep(site, hot):
                    continue
                self._emit(
                    site.rule,
                    unit.module,
                    site.line,
                    site.column,
                    site.message,
                    unit.symbol,
                    site.depth,
                    qualname,
                    fixable=site.fixable,
                    identity_extra=f"{site.rule}:{site.extra}",
                )
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            node = f"{name}.<module>"
            hot = node in self.reach
            for site in scan_module_level(self.project, module):
                if not self._keep(site, hot):
                    continue
                self._emit(
                    site.rule,
                    module,
                    site.line,
                    site.column,
                    site.message,
                    "<module>",
                    site.depth,
                    node,
                    fixable=site.fixable,
                    identity_extra=f"{site.rule}:{site.extra}",
                )

    def _keep(self, site: HotSite, hot: bool) -> bool:
        if site.rule == "P007":
            return hot
        if site.rule == "P005":
            return hot and site.callee is not None and site.callee in self.pure
        return True

    # -- P002: reference-kernel imports ------------------------------------

    def _reference_imports(self) -> None:
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            segments = set(name.split("."))
            if segments & REFERENCE_EXEMPT_SEGMENTS:
                continue
            if name == REFERENCE_MODULE or name.startswith(REFERENCE_MODULE + "."):
                continue
            for node, target in _reference_import_sites(module):
                self._emit(
                    "P002",
                    module,
                    node.lineno,
                    node.col_offset,
                    f"imports reference kernel '{target}' outside "
                    "tests/benchmarks — reference kernels are equivalence "
                    "oracles, not production code",
                    "<module>",
                    0,
                    f"{name}.<module>",
                    identity_extra=target,
                )

    # -- P006: per-call re-derivation of invariant state -------------------

    def _invariant_rederivation(self) -> None:
        for class_qual in sorted(self.project.classes):
            cls = self.project.classes[class_qual]
            init = cls.methods.get("__init__")
            if init is None:
                continue
            init_attrs = _self_attr_writes(init)
            outside_writes: set[str] = set()
            for method_name, method in cls.methods.items():
                if method_name == "__init__":
                    continue
                writes, mutations = (
                    _self_attr_writes(method),
                    _self_attr_mutations(method),
                )
                outside_writes |= writes | mutations
            # __init__ may legitimately build containers in place.
            for method_name in sorted(cls.methods):
                if method_name == "__init__":
                    continue
                method = cls.methods[method_name]
                for node, attr in _sorted_self_attr_calls(method):
                    if attr not in init_attrs or attr in outside_writes:
                        continue
                    self._emit(
                        "P006",
                        method.module,
                        node.lineno,
                        node.col_offset,
                        f"'{method.symbol}()' re-derives sorted(self.{attr}) "
                        "on every call, but the attribute is only assigned "
                        "in __init__ — compute once and cache",
                        method.symbol,
                        0,
                        method.qualname,
                        identity_extra=attr,
                    )

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Finding]:
        self._scanned()
        self._reference_imports()
        self._invariant_rederivation()
        # Occurrence indexes must be stamped in source order; the report
        # itself is then re-ranked by descending static cost.
        self.pairs.sort(key=lambda p: (p[1].path, p[1].line, p[1].column, p[1].rule))
        stamped = assign_occurrences([finding for _, finding in self.pairs])
        ranked = sorted(
            zip((cost for cost, _ in self.pairs), stamped),
            key=lambda p: (-p[0], p[1].path, p[1].line, p[1].column, p[1].rule),
        )
        return [finding for _, finding in ranked]


def _reference_import_sites(
    module: ModuleUnit,
) -> list[tuple[ast.stmt, str]]:
    sites: list[tuple[ast.stmt, str]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == REFERENCE_MODULE or alias.name.startswith(
                    REFERENCE_MODULE + "."
                ):
                    sites.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.name.split(".")
                drop = node.level - 1 if module.is_package else node.level
                anchor = parts[: len(parts) - drop]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                target = f"{base}.{alias.name}" if base else alias.name
                if base == REFERENCE_MODULE or base.startswith(
                    REFERENCE_MODULE + "."
                ):
                    sites.append((node, base))
                    break
                if target == REFERENCE_MODULE or target.startswith(
                    REFERENCE_MODULE + "."
                ):
                    sites.append((node, target))
                    break
    return sites


def _self_name(unit: FunctionUnit) -> str | None:
    return unit.params[0] if unit.params else None


def _iter_method_nodes(unit: FunctionUnit) -> Iterable[ast.AST]:
    stack: list[ast.AST] = list(unit.node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_attr_writes(unit: FunctionUnit) -> set[str]:
    self_name = _self_name(unit)
    if self_name is None:
        return set()
    return {
        node.attr
        for node in _iter_method_nodes(unit)
        if isinstance(node, ast.Attribute)
        and isinstance(node.ctx, (ast.Store, ast.Del))
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    }


def _self_attr_mutations(unit: FunctionUnit) -> set[str]:
    self_name = _self_name(unit)
    if self_name is None:
        return set()
    mutated: set[str] = set()
    for node in _iter_method_nodes(unit):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        func = node.func
        if func.attr not in MUTATOR_METHODS:
            continue
        receiver = func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == self_name
        ):
            mutated.add(receiver.attr)
    return mutated


def _sorted_self_attr_calls(
    unit: FunctionUnit,
) -> list[tuple[ast.Call, str]]:
    """``sorted(self.X)`` / ``sorted(self.X.items()|keys()|values())``
    calls in the method body."""
    self_name = _self_name(unit)
    if self_name is None:
        return []
    calls: list[tuple[ast.Call, str]] = []
    for node in _iter_method_nodes(unit):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Name) or node.func.id != "sorted":
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr in ("items", "keys", "values")
        ):
            arg = arg.func.value
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == self_name
        ):
            calls.append((node, arg.attr))
    return calls


def hot_findings(
    analysis: ProjectAnalysis, extra_entries: Iterable[str] = ()
) -> tuple[list[Finding], list[tuple[str, int, str]]]:
    """All P001-P008 findings for an analyzed project, ranked by
    descending static cost, plus the project's load errors."""
    findings = _HotAnalyzer(analysis, extra_entries).run()
    return findings, analysis.project.errors
