"""Runtime numeric-contract decorators for the kernels.

The power-iteration kernels (TrustRank, personalized PageRank,
EigenTrust), the calibration layer, and the ranking combiner promise
numeric invariants — probability vectors sum to 1, calibrated
probabilities live in [0, 1], pairwise orderedness lives in [0, 1].
These decorators verify the promises on every call **when checking is
enabled** and compile to literal no-ops otherwise, so production code
pays nothing.

Checking is enabled when, at decoration (import) time:

* the environment variable ``REPRO_CONTRACTS`` is ``1``/``true``/
  ``on``, or
* pytest is already imported (the normal test-suite path) and
  ``REPRO_CONTRACTS`` is not explicitly ``0``/``false``/``off``.

Violations raise :class:`repro.exceptions.ContractViolationError`.
"""

from __future__ import annotations

import functools
import math
import os
import sys
from typing import Any, Callable, Iterable, Mapping, TypeVar

from repro.exceptions import ContractViolationError

__all__ = [
    "contracts_enabled",
    "check_probability_vector",
    "check_row_stochastic",
    "check_score_range",
]

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = ("1", "true", "on", "yes")
_FALSY = ("0", "false", "off", "no")


def contracts_enabled() -> bool:
    """Whether contract decorators should instrument functions.

    The decision is made when a decorated module is imported, so flip
    ``REPRO_CONTRACTS`` *before* importing :mod:`repro` (or reload the
    instrumented module) to change it.
    """
    flag = os.environ.get("REPRO_CONTRACTS", "").strip().lower()
    if flag in _TRUTHY:
        return True
    if flag in _FALSY:
        return False
    return "pytest" in sys.modules


def _values(result: Any) -> Iterable[float]:
    if isinstance(result, Mapping):
        return result.values()
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return result
    arr = np.asarray(result, dtype=np.float64)
    return arr.ravel().tolist()


def _fail(func: Callable[..., Any], detail: str) -> None:
    raise ContractViolationError(
        f"numeric contract violated in {func.__module__}.{func.__qualname__}: "
        f"{detail}"
    )


def check_probability_vector(
    tolerance: float = 1e-6,
    getter: Callable[[Any], Any] | None = None,
) -> Callable[[F], F]:
    """Require the return value to be a probability distribution.

    The checked values (mapping values, or a flattened array) must all
    be finite, within ``[-tolerance, 1 + tolerance]``, and sum to 1
    within ``tolerance``.  An empty result is rejected.

    Args:
        tolerance: absolute slack for the bounds and the total.
        getter: optional projection applied to the return value before
            checking (for functions returning wrapper objects).
    """

    def decorate(func: F) -> F:
        if not contracts_enabled():
            return func

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            payload = getter(result) if getter is not None else result
            total = 0.0
            count = 0
            for value in _values(payload):
                v = float(value)
                if not math.isfinite(v):
                    _fail(func, f"non-finite entry {v!r}")
                if v < -tolerance or v > 1.0 + tolerance:
                    _fail(func, f"entry {v!r} outside [0, 1]")
                total += v
                count += 1
            if count == 0:
                _fail(func, "empty probability vector")
            if abs(total - 1.0) > max(tolerance, tolerance * count):
                _fail(func, f"mass sums to {total!r}, expected 1.0")
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def check_row_stochastic(
    tolerance: float = 1e-6,
    getter: Callable[[Any], Any] | None = None,
) -> Callable[[F], F]:
    """Require the return value to be a row-stochastic 2-D matrix.

    Every entry must be finite and in ``[0, 1]`` (within ``tolerance``)
    and every row must sum to 1 within ``tolerance`` — the shape of
    ``predict_proba`` outputs.
    """

    def decorate(func: F) -> F:
        if not contracts_enabled():
            return func

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            payload = getter(result) if getter is not None else result
            import numpy as np

            matrix = np.asarray(payload, dtype=np.float64)
            if matrix.ndim != 2:
                _fail(func, f"expected a 2-D matrix, got ndim={matrix.ndim}")
            if not np.all(np.isfinite(matrix)):
                _fail(func, "matrix contains non-finite entries")
            if np.any(matrix < -tolerance) or np.any(matrix > 1.0 + tolerance):
                _fail(func, "matrix entries outside [0, 1]")
            row_sums = matrix.sum(axis=1)
            worst = float(np.max(np.abs(row_sums - 1.0))) if row_sums.size else 0.0
            if worst > tolerance:
                _fail(func, f"row sums deviate from 1.0 by up to {worst!r}")
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def check_score_range(
    low: float,
    high: float,
    tolerance: float = 1e-9,
    getter: Callable[[Any], Any] | None = None,
    allow_nan: bool = False,
) -> Callable[[F], F]:
    """Require every returned score to lie in ``[low, high]``.

    Args:
        low: inclusive lower bound.
        high: inclusive upper bound.
        tolerance: absolute slack on both bounds.
        getter: optional projection applied to the return value before
            checking (e.g. extract one field of a result object).
        allow_nan: accept NaN entries (used for "metric undefined"
            sentinels such as pairord without oracle labels).
    """

    def decorate(func: F) -> F:
        if not contracts_enabled():
            return func

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            payload = getter(result) if getter is not None else result
            values = (
                [float(payload)]
                if isinstance(payload, (int, float))
                else [float(v) for v in _values(payload)]
            )
            for v in values:
                if math.isnan(v):
                    if allow_nan:
                        continue
                    _fail(func, "NaN score")
                if not math.isfinite(v):
                    _fail(func, f"non-finite score {v!r}")
                if v < low - tolerance or v > high + tolerance:
                    _fail(func, f"score {v!r} outside [{low}, {high}]")
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
