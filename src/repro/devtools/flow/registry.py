"""Source, sink, and rule registry for the flow analyses.

The taint model is *structural* rather than hard-coded to repro module
names, so the same analyzer checks both ``src/repro`` and the seeded
test fixture packages:

* **Sources** — calls whose return value is untrusted: any
  ``.fetch(...)`` (web content; the :class:`~repro.web.host.WebHost`
  protocol) and any file-content read (``.read()``, ``.read_text()``,
  ``.readlines()``).
* **Sinks** — dangerous positions, each with a *category* a sanitizer
  can clear: filesystem path construction and ``open()`` (``path``),
  regex-pattern positions (``regex``), outbound fetch URLs (``ssrf``),
  and report/log string interpolation (``report``).
* **Sanitizers** — functions carrying the
  :func:`repro.devtools.sanitizers.sanitizes` decorator, read
  statically from the AST by the project loader.

Rule catalogue (``python -m repro.devtools.flow --list-rules``):

======  ===============================================================
T001    untrusted data reaches a filesystem path / ``open()`` sink
T002    untrusted data used as a regular-expression pattern
T003    regex literal vulnerable to catastrophic backtracking (ReDoS)
T004    untrusted URL reaches an outbound fetch (SSRF) without
        registrable-domain pinning
T005    untrusted data interpolated into a report/log string
D001    unseeded RNG reachable from an experiment entrypoint
D002    wall-clock read feeding values reachable from an entrypoint
D003    iteration over an unordered set feeding results, reachable
        from an entrypoint
======  ===============================================================
"""

from __future__ import annotations

__all__ = [
    "FLOW_RULES",
    "TAINT_RULE_BY_CATEGORY",
    "SOURCE_ATTR_NAMES",
    "FILE_READ_ATTRS",
    "PATH_SINK_BUILTINS",
    "PATH_SINK_DOTTED",
    "PATH_SINK_ANY_ARG",
    "REGEX_SINK_DOTTED",
    "FETCH_ATTR_NAMES",
    "FETCH_SINK_DOTTED",
    "REPORT_MODULE_SUFFIXES",
    "LOGGER_BASE_NAMES",
    "LOGGER_METHODS",
    "CLOCK_CALLS",
    "SEEDED_RNG_ALLOWED",
    "CLEAN_BUILTINS",
    "PROPAGATING_BUILTINS",
]

#: Rule id -> one-line description (CLI catalogue + SARIF metadata).
FLOW_RULES: dict[str, str] = {
    "T001": "untrusted data reaches a filesystem path/open() sink",
    "T002": "untrusted data used as a regular-expression pattern",
    "T003": "regex literal vulnerable to catastrophic backtracking (ReDoS)",
    "T004": "untrusted URL reaches an outbound fetch (SSRF)",
    "T005": "untrusted data interpolated into a report/log string",
    "D001": "unseeded RNG reachable from an experiment entrypoint",
    "D002": "wall-clock read feeding values reachable from an entrypoint",
    "D003": "unordered-set iteration feeding results reachable from an entrypoint",
}

#: sink category -> taint rule id.
TAINT_RULE_BY_CATEGORY = {
    "path": "T001",
    "regex": "T002",
    "ssrf": "T004",
    "report": "T005",
}

# -- sources ---------------------------------------------------------------

#: Attribute-call names whose return value is untrusted web content.
SOURCE_ATTR_NAMES = frozenset({"fetch"})

#: Attribute-call names whose return value is untrusted file content.
FILE_READ_ATTRS = frozenset({"read", "read_text", "read_bytes", "readlines"})

# -- sinks -----------------------------------------------------------------

#: Builtin call names whose first argument is a filesystem path.
PATH_SINK_BUILTINS = frozenset({"open"})

#: Resolved dotted calls whose first argument is a filesystem path.
PATH_SINK_DOTTED = frozenset(
    {
        "os.open",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "pathlib.Path",
        "pathlib.PurePath",
        "pathlib.PurePosixPath",
    }
)

#: Resolved dotted calls where *every* argument is a filesystem path.
PATH_SINK_ANY_ARG = frozenset(
    {"os.replace", "os.rename", "os.path.join", "shutil.copy", "shutil.move"}
)

#: ``re`` module functions whose first argument is a pattern.
REGEX_SINK_DOTTED = frozenset(
    {
        "re.compile",
        "re.search",
        "re.match",
        "re.fullmatch",
        "re.findall",
        "re.finditer",
        "re.split",
        "re.sub",
        "re.subn",
    }
)

#: Attribute-call names that perform an outbound fetch (URL = arg 0).
FETCH_ATTR_NAMES = frozenset({"fetch"})

#: Resolved dotted outbound-fetch calls (URL = arg 0).
FETCH_SINK_DOTTED = frozenset(
    {
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.head",
        "httpx.get",
    }
)

#: Module path suffixes where f-string/%/.format/print interpolation is
#: a report sink (T005).  Logging calls are sinks package-wide.
REPORT_MODULE_SUFFIXES = ("report.py",)

#: Receiver names treated as loggers for the T005 logging sink.
LOGGER_BASE_NAMES = frozenset({"logger", "logging", "log"})

#: Logger methods that format untrusted data into log records.
LOGGER_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)

# -- determinism -----------------------------------------------------------

#: Resolved dotted calls that read the wall clock.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` members that construct explicitly seeded generators
#: (mirrors repro-lint R002's allowlist).
SEEDED_RNG_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

# -- builtin call modeling -------------------------------------------------

#: Builtins whose return value never carries taint (numeric casts and
#: size/identity queries break the data dependency on content).
CLEAN_BUILTINS = frozenset(
    {
        "len",
        "int",
        "float",
        "bool",
        "abs",
        "round",
        "sum",
        "hash",
        "id",
        "isinstance",
        "issubclass",
        "ord",
        "range",
        "divmod",
        "pow",
    }
)

#: Builtins that pass their arguments' taint through to the result.
PROPAGATING_BUILTINS = frozenset(
    {
        "str",
        "repr",
        "format",
        "bytes",
        "list",
        "tuple",
        "set",
        "frozenset",
        "dict",
        "sorted",
        "reversed",
        "enumerate",
        "zip",
        "map",
        "filter",
        "min",
        "max",
        "next",
        "iter",
        "getattr",
        "vars",
    }
)
