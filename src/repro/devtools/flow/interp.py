"""Interprocedural abstract interpreter behind the flow analyses.

One pass serves three consumers:

* **Call graph** — every resolved call edge (direct calls, methods via
  ``self``, aliased imports, dispatch-dict lookups, ``getattr`` on a
  module, and an attribute-name fallback for unknown receivers).
* **Taint** — summary-based dataflow.  Each function gets a
  :class:`Summary` describing whether its return is a taint *source*,
  which parameters flow to its return (and which sink categories are
  cleared en route), and which parameters reach sinks inside it or its
  callees.  Summaries are iterated to a fixpoint, then a final pass
  reports source-to-sink flows as findings.
* **Determinism** — per-function nondeterminism events (unseeded RNG,
  wall-clock values feeding data, unordered-set iteration) later gated
  on entrypoint reachability by :mod:`repro.devtools.flow.determinism`.

The abstract domain is deliberately small: a value is a possible-taint
(with the set of sink categories already cleared by sanitizers and a
few origin strings for messages), a set of parameter dependencies, an
optional set of callable targets (for higher-order dispatch), and two
booleans (``is_set``, ``is_clock``).  The interpreter is
flow-insensitive within a function (assignments only *join*), visits
each body twice to stabilize loop-carried facts, and evaluates lambda
bodies inline in the enclosing environment — approximating the
deferred call that dispatch helpers like ``_cached(key, lambda: ...)``
perform.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.devtools.findings import Finding
from repro.devtools.flow import redos
from repro.devtools.flow.project import FunctionUnit, ModuleUnit, Project
from repro.devtools.flow.registry import (
    CLEAN_BUILTINS,
    CLOCK_CALLS,
    FETCH_ATTR_NAMES,
    FETCH_SINK_DOTTED,
    FILE_READ_ATTRS,
    LOGGER_BASE_NAMES,
    LOGGER_METHODS,
    PATH_SINK_ANY_ARG,
    PATH_SINK_BUILTINS,
    PATH_SINK_DOTTED,
    PROPAGATING_BUILTINS,
    REGEX_SINK_DOTTED,
    REPORT_MODULE_SUFFIXES,
    SEEDED_RNG_ALLOWED,
    SOURCE_ATTR_NAMES,
    TAINT_RULE_BY_CATEGORY,
)

__all__ = ["Taint", "AV", "SinkHit", "DetEvent", "Summary", "AnalysisResult", "run_analysis"]

_MAX_ORIGINS = 3
_MAX_CHAIN = 6
_MAX_SINK_HITS_PER_PARAM = 24
_MAX_FIXPOINT_ROUNDS = 20

_MUTATING_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "extendleft", "insert", "update", "push"}
)


@dataclass(frozen=True, slots=True)
class Taint:
    """Untrusted data: which sink categories sanitizers cleared, and a
    few origin strings for diagnostics."""

    cleared: frozenset[str] = frozenset()
    origins: tuple[str, ...] = ()


def _merge_origins(a: tuple[str, ...], b: tuple[str, ...]) -> tuple[str, ...]:
    merged = list(a)
    for origin in b:
        if origin not in merged:
            merged.append(origin)
    return tuple(sorted(merged)[:_MAX_ORIGINS])


def join_taint(a: Taint | None, b: Taint | None) -> Taint | None:
    """Least upper bound: tainted wins; cleared sets intersect."""
    if a is None:
        return b
    if b is None:
        return a
    return Taint(
        cleared=a.cleared & b.cleared, origins=_merge_origins(a.origins, b.origins)
    )


def clear_taint(t: Taint | None, kinds: frozenset[str]) -> Taint | None:
    """Apply a sanitizer: add ``kinds`` to the cleared set."""
    if t is None or "*" in kinds:
        return None if ("*" in kinds or t is None) else t
    return Taint(cleared=t.cleared | kinds, origins=t.origins)


@dataclass(slots=True)
class AV:
    """Abstract value: taint, parameter dependencies (param index ->
    categories cleared since entry), callable targets, set-ness, and
    wall-clock provenance."""

    taint: Taint | None = None
    pdeps: dict[int, frozenset[str]] = field(default_factory=dict)
    callables: frozenset[str] = frozenset()
    is_set: bool = False
    is_clock: bool = False


def _merge_pdeps(
    into: dict[int, frozenset[str]], other: Mapping[int, frozenset[str]],
    additions: frozenset[str] = frozenset(),
) -> None:
    for param, cleared in other.items():
        cleared = cleared | additions
        if param in into:
            into[param] = into[param] & cleared
        else:
            into[param] = cleared


def join_av(*values: AV) -> AV:
    """Join abstract values (used for merges and default propagation)."""
    result = AV()
    for value in values:
        result.taint = join_taint(result.taint, value.taint)
        _merge_pdeps(result.pdeps, value.pdeps)
        result.callables = result.callables | value.callables
        result.is_set = result.is_set or value.is_set
        result.is_clock = result.is_clock or value.is_clock
    return result


@dataclass(frozen=True, slots=True)
class SinkHit:
    """A sink location reachable from a function parameter."""

    category: str
    detail: str
    path: str
    line: int
    column: int
    symbol: str
    source_line: str
    cleared: frozenset[str] = frozenset()
    chain: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class DetEvent:
    """One potential-nondeterminism site inside a function."""

    rule: str
    message: str
    path: str
    line: int
    column: int
    symbol: str
    source_line: str


@dataclass(slots=True)
class Summary:
    """Interprocedural summary of one function."""

    ret_taint: Taint | None = None
    ret_pdeps: dict[int, frozenset[str]] = field(default_factory=dict)
    ret_clock: bool = False
    sink_pdeps: dict[int, tuple[SinkHit, ...]] = field(default_factory=dict)

    def key(self) -> tuple:
        """Canonical form for fixpoint convergence checks."""
        taint_key = (
            None
            if self.ret_taint is None
            else (tuple(sorted(self.ret_taint.cleared)), self.ret_taint.origins)
        )
        return (
            taint_key,
            tuple(sorted((p, tuple(sorted(c))) for p, c in self.ret_pdeps.items())),
            self.ret_clock,
            tuple(
                sorted(
                    (p, tuple(sorted((h.category, h.path, h.line, tuple(sorted(h.cleared))) for h in hits)))
                    for p, hits in self.sink_pdeps.items()
                )
            ),
        )


@dataclass(slots=True)
class AnalysisResult:
    """Everything the downstream analyses consume."""

    summaries: dict[str, Summary] = field(default_factory=dict)
    call_edges: dict[str, set[str]] = field(default_factory=dict)
    taint_findings: list[Finding] = field(default_factory=list)
    det_events: dict[str, list[DetEvent]] = field(default_factory=dict)


# -- callee resolution ------------------------------------------------------


@dataclass(slots=True)
class _Callee:
    """Resolution of a call expression's target."""

    kind: str  # "units" | "class" | "external" | "builtin" | "unknown"
    units: list[FunctionUnit] = field(default_factory=list)
    dotted: str = ""
    builtin: str = ""
    receiver: AV | None = None
    attr: str = ""


class _Interp:
    """Interpret one function (or one module's top-level code)."""

    def __init__(
        self,
        project: Project,
        module: ModuleUnit,
        unit: FunctionUnit | None,
        summaries: Mapping[str, Summary],
        collect: bool,
    ) -> None:
        self.project = project
        self.module = module
        self.unit = unit
        self.symbol = unit.symbol if unit is not None else "<module>"
        self.summaries = summaries
        self.collect = collect
        self.env: dict[str, AV] = {}
        self.edges: set[str] = set()
        self.findings: list[Finding] = []
        self.det_events: list[DetEvent] = []
        self.ret = AV()
        self.summary = Summary()
        self._reporting = 0
        self._is_report_module = module.path.endswith(REPORT_MODULE_SUFFIXES)

    # -- entry ------------------------------------------------------------

    def run(self) -> Summary:
        if self.unit is not None:
            for index, name in enumerate(self.unit.params):
                self.env[name] = AV(pdeps={index: frozenset()})
            body: Sequence[ast.stmt] = self.unit.node.body
        else:
            body = self.module.tree.body
        # Two passes stabilize loop-carried and use-before-def facts
        # (the environment only ever joins, so this is monotone).
        for _ in range(2):
            self.findings.clear()
            self.det_events.clear()
            self.visit_block(body)
        self.summary.ret_taint = self.ret.taint
        self.summary.ret_pdeps = dict(self.ret.pdeps)
        self.summary.ret_clock = self.ret.is_clock
        return self.summary

    # -- helpers ----------------------------------------------------------

    def _loc(self, node: ast.AST) -> tuple[int, int]:
        return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)

    def _finding(self, rule: str, node: ast.AST, message: str) -> None:
        if not self.collect:
            return
        line, column = self._loc(node)
        if self.module.is_suppressed(rule, line):
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.path,
                line=line,
                column=column,
                message=message,
                symbol=self.symbol,
                source_line=self.module.source_line(line),
            )
        )

    def _det_event(self, rule: str, node: ast.AST, message: str) -> None:
        if not self.collect:
            return
        line, column = self._loc(node)
        if self.module.is_suppressed(rule, line):
            return
        self.det_events.append(
            DetEvent(
                rule=rule,
                message=message,
                path=self.module.path,
                line=line,
                column=column,
                symbol=self.symbol,
                source_line=self.module.source_line(line),
            )
        )

    def _origin(self, node: ast.AST, what: str) -> Taint:
        line, _ = self._loc(node)
        leaf = self.module.path.rsplit("/", 1)[-1]
        return Taint(origins=(f"{leaf}:{line} {what}",))

    def _bind(self, target: ast.expr, value: AV) -> None:
        if isinstance(target, ast.Name):
            existing = self.env.get(target.id)
            self.env[target.id] = join_av(existing, value) if existing else value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, AV(taint=value.taint, pdeps=dict(value.pdeps),
                                       is_clock=value.is_clock))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                existing = self.env.get(base.id)
                joined = join_av(existing, value) if existing else value
                # Container identity (set-ness) is a property of the
                # container, not the stored element.
                joined.is_set = existing.is_set if existing else False
                self.env[base.id] = joined
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                existing = self.env.get(base.id)
                if existing is not None:
                    self.env[base.id] = join_av(existing, value)

    def _element_of(self, container: AV) -> AV:
        return AV(taint=container.taint, pdeps=dict(container.pdeps),
                  is_clock=container.is_clock)

    # -- sink machinery ----------------------------------------------------

    def _check_sink(self, category: str, value: AV, node: ast.AST, detail: str) -> None:
        rule = TAINT_RULE_BY_CATEGORY[category]
        line, column = self._loc(node)
        if value.taint is not None and category not in value.taint.cleared:
            origins = ", ".join(value.taint.origins) or "untrusted input"
            self._finding(rule, node, f"untrusted data ({origins}) reaches {detail}")
        for param, cleared in value.pdeps.items():
            if category in cleared:
                continue
            hits = list(self.summary.sink_pdeps.get(param, ()))
            if len(hits) >= _MAX_SINK_HITS_PER_PARAM:
                continue
            hit = SinkHit(
                category=category,
                detail=detail,
                path=self.module.path,
                line=line,
                column=column,
                symbol=self.symbol,
                source_line=self.module.source_line(line),
                cleared=cleared,
                chain=(self._qualname(),),
            )
            if not any(
                h.category == hit.category and h.path == hit.path and h.line == hit.line
                for h in hits
            ):
                hits.append(hit)
                self.summary.sink_pdeps[param] = tuple(hits)

    def _qualname(self) -> str:
        if self.unit is not None:
            return self.unit.qualname
        return f"{self.module.name}.<module>"

    def _apply_summary(
        self,
        unit: FunctionUnit,
        args_by_index: Mapping[int, AV],
        node: ast.AST,
    ) -> AV:
        summary = self.summaries.get(unit.qualname, Summary())
        result = AV(taint=summary.ret_taint, is_clock=summary.ret_clock)
        for index, additions in summary.ret_pdeps.items():
            arg = args_by_index.get(index)
            if arg is None:
                continue
            if arg.taint is not None:
                result.taint = join_taint(result.taint, clear_taint(arg.taint, additions))
            _merge_pdeps(result.pdeps, arg.pdeps, additions)
            result.is_clock = result.is_clock or arg.is_clock
        # Parameter-to-sink flows recorded inside the callee fire here
        # when the caller provides tainted data.
        for index, hits in summary.sink_pdeps.items():
            arg = args_by_index.get(index)
            if arg is None:
                continue
            for hit in hits:
                effective = hit.cleared
                if arg.taint is not None and hit.category not in (
                    arg.taint.cleared | effective
                ):
                    rule = TAINT_RULE_BY_CATEGORY[hit.category]
                    if not self.module.is_suppressed(rule, self._loc(node)[0]) and self.collect:
                        sink_module = self._sink_module(hit.path)
                        if sink_module is None or not sink_module.is_suppressed(
                            rule, hit.line
                        ):
                            origins = ", ".join(arg.taint.origins) or "untrusted input"
                            chain = (self._qualname(), *hit.chain)[:_MAX_CHAIN]
                            self.findings.append(
                                Finding(
                                    rule=rule,
                                    path=hit.path,
                                    line=hit.line,
                                    column=hit.column,
                                    message=(
                                        f"untrusted data ({origins}) reaches "
                                        f"{hit.detail} via {' -> '.join(chain)}"
                                    ),
                                    symbol=hit.symbol,
                                    source_line=hit.source_line,
                                )
                            )
                for param, cleared in arg.pdeps.items():
                    if hit.category in (cleared | effective):
                        continue
                    existing = list(self.summary.sink_pdeps.get(param, ()))
                    if len(existing) >= _MAX_SINK_HITS_PER_PARAM:
                        continue
                    lifted = SinkHit(
                        category=hit.category,
                        detail=hit.detail,
                        path=hit.path,
                        line=hit.line,
                        column=hit.column,
                        symbol=hit.symbol,
                        source_line=hit.source_line,
                        cleared=cleared | effective,
                        chain=(self._qualname(), *hit.chain)[:_MAX_CHAIN],
                    )
                    if not any(
                        h.category == lifted.category
                        and h.path == lifted.path
                        and h.line == lifted.line
                        for h in existing
                    ):
                        existing.append(lifted)
                        self.summary.sink_pdeps[param] = tuple(existing)
        if unit.sanitizes is not None:
            if "*" in unit.sanitizes:
                return AV()
            result.taint = clear_taint(result.taint, unit.sanitizes)
            result.pdeps = {
                p: c | unit.sanitizes for p, c in result.pdeps.items()
            }
        return result

    def _sink_module(self, path: str) -> ModuleUnit | None:
        for module in self.project.modules.values():
            if module.path == path:
                return module
        return None

    # -- callee resolution -------------------------------------------------

    def _resolve_dotted(self, base: str, attrs: Sequence[str]) -> str:
        root = self.module.imports.get(base, base)
        return ".".join([root, *attrs])

    def _lookup_units(self, dotted: str) -> list[FunctionUnit]:
        unit = self.project.functions.get(dotted)
        return [unit] if unit is not None else []

    def _resolve_callee(self, func: ast.expr) -> _Callee:
        if isinstance(func, ast.Name):
            name = func.id
            local = self.env.get(name)
            if local is not None and local.callables:
                units = [
                    self.project.functions[q]
                    for q in sorted(local.callables)
                    if q in self.project.functions
                ]
                if units:
                    return _Callee(kind="units", units=units)
            if self.unit is not None:
                nested = self.module.functions.get(f"{self.unit.symbol}.{name}")
                if nested is not None:
                    return _Callee(kind="units", units=[nested])
            direct = self.module.functions.get(name)
            if direct is not None:
                return _Callee(kind="units", units=[direct])
            if name in self.module.imports:
                dotted = self.module.imports[name]
                units = self._lookup_units(dotted)
                if units:
                    return _Callee(kind="units", units=units)
                if dotted in self.project.classes:
                    return _Callee(kind="class", dotted=dotted)
                return _Callee(kind="external", dotted=dotted)
            if f"{self.module.name}.{name}" in self.project.classes:
                return _Callee(kind="class", dotted=f"{self.module.name}.{name}")
            return _Callee(kind="builtin", builtin=name)
        if isinstance(func, ast.Attribute):
            parts: list[str] = []
            current: ast.expr = func
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            parts.reverse()
            attr = parts[-1]
            if isinstance(current, ast.Name):
                base = current.id
                if base == "self" and self.unit is not None and self.unit.class_name:
                    klass = self.project.classes.get(self.unit.class_name)
                    if klass is not None and len(parts) == 1 and attr in klass.methods:
                        return _Callee(
                            kind="units",
                            units=[klass.methods[attr]],
                            receiver=self.env.get("self", AV()),
                            attr=attr,
                        )
                if base in self.module.imports or base not in self.env:
                    dotted = self._resolve_dotted(base, parts)
                    units = self._lookup_units(dotted)
                    if units:
                        return _Callee(kind="units", units=units, attr=attr)
                    if dotted in self.project.classes:
                        return _Callee(kind="class", dotted=dotted)
                    if base in self.module.imports or base in (
                        "os", "re", "time", "datetime", "np", "numpy", "random"
                    ):
                        return _Callee(kind="external", dotted=dotted, attr=attr)
                receiver = self.env.get(base, self.eval(current))
                return self._receiver_callee(receiver, attr, base)
            receiver = self.eval(current)
            return self._receiver_callee(receiver, attr, "")
        if isinstance(func, ast.Subscript):
            container = func.value
            if isinstance(container, (ast.Name, ast.Attribute)):
                dotted = self._dotted_of(container)
                if dotted is not None:
                    table = self.project.dispatch_tables.get(dotted)
                    if table is None and "." not in dotted:
                        table = self.project.dispatch_tables.get(
                            f"{self.module.name}.{dotted}"
                        )
                    if table:
                        units = [
                            self.project.functions[q]
                            for q in table
                            if q in self.project.functions
                        ]
                        return _Callee(kind="units", units=units)
            receiver = self.eval(func)
            return _Callee(kind="unknown", receiver=receiver)
        receiver = self.eval(func)
        return _Callee(kind="unknown", receiver=receiver)

    def _receiver_callee(self, receiver: AV, attr: str, base: str) -> _Callee:
        if receiver.callables:
            units = [
                self.project.functions[q]
                for q in sorted(receiver.callables)
                if q in self.project.functions
            ]
            if units:
                return _Callee(kind="units", units=units, receiver=receiver, attr=attr)
        fallback = [
            self.project.functions[q]
            for q in self.project.by_name.get(attr, ())
            if q in self.project.functions
            and self.project.functions[q].class_name is not None
        ]
        return _Callee(
            kind="units" if fallback else "unknown",
            units=fallback,
            receiver=receiver,
            attr=attr,
        )

    def _dotted_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.module.imports.get(node.id, f"{self.module.name}.{node.id}")
        if isinstance(node, ast.Attribute):
            parts: list[str] = []
            current: ast.expr = node
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                return self._resolve_dotted(current.id, list(reversed(parts)))
        return None

    # -- expression evaluation --------------------------------------------

    def eval(self, node: ast.expr | None) -> AV:
        if node is None:
            return AV()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Conservative default: join every child expression.
        children = [
            self.eval(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return join_av(*children) if children else AV()

    def _eval_Constant(self, node: ast.Constant) -> AV:
        return AV()

    def _eval_Name(self, node: ast.Name) -> AV:
        value = self.env.get(node.id)
        if value is not None:
            return AV(
                taint=value.taint,
                pdeps=dict(value.pdeps),
                callables=value.callables,
                is_set=value.is_set,
                is_clock=value.is_clock,
            )
        if node.id in self.module.functions:
            return AV(callables=frozenset({self.module.functions[node.id].qualname}))
        dotted = self.module.imports.get(node.id)
        if dotted is not None and dotted in self.project.functions:
            return AV(callables=frozenset({dotted}))
        return AV()

    def _eval_Attribute(self, node: ast.Attribute) -> AV:
        dotted = self._dotted_of(node)
        if dotted is not None and dotted in self.project.functions:
            return AV(callables=frozenset({dotted}))
        value = self.eval(node.value)
        return AV(taint=value.taint, pdeps=dict(value.pdeps), is_clock=value.is_clock)

    def _eval_BinOp(self, node: ast.BinOp) -> AV:
        left, right = self.eval(node.left), self.eval(node.right)
        result = AV(is_clock=left.is_clock or right.is_clock)
        if isinstance(node.op, (ast.Add, ast.Mod)):
            result.taint = join_taint(left.taint, right.taint)
            _merge_pdeps(result.pdeps, left.pdeps)
            _merge_pdeps(result.pdeps, right.pdeps)
            if self._is_report_module and isinstance(node.op, ast.Mod):
                self._check_sink("report", join_av(left, right), node, "%-interpolation")
        if isinstance(node.op, ast.BitOr):
            result.is_set = left.is_set and right.is_set
        return result

    def _eval_BoolOp(self, node: ast.BoolOp) -> AV:
        return join_av(*(self.eval(v) for v in node.values))

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AV:
        operand = self.eval(node.operand)
        return AV(is_clock=operand.is_clock)

    def _eval_Compare(self, node: ast.Compare) -> AV:
        operands = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
        if self._reporting == 0 and any(v.is_clock for v in operands):
            self._det_event(
                "D002", node, "wall-clock value used in a comparison"
            )
        return AV()

    def _eval_Subscript(self, node: ast.Subscript) -> AV:
        value = self.eval(node.value)
        self.eval(node.slice)
        result = AV(taint=value.taint, pdeps=dict(value.pdeps), is_clock=value.is_clock)
        dotted = self._dotted_of(node.value)
        if dotted is not None:
            table = self.project.dispatch_tables.get(dotted)
            if table:
                result.callables = frozenset(table)
        return result

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> AV:
        parts = [self.eval(v) for v in node.values]
        joined = join_av(*parts) if parts else AV()
        if self._is_report_module:
            self._check_sink("report", joined, node, "f-string interpolation")
        if self._reporting == 0 and joined.is_clock:
            self._det_event(
                "D002", node, "wall-clock value interpolated into a result string"
            )
        return AV(taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock)

    def _eval_FormattedValue(self, node: ast.FormattedValue) -> AV:
        return self.eval(node.value)

    def _eval_List(self, node: ast.List) -> AV:
        joined = join_av(*(self.eval(e) for e in node.elts)) if node.elts else AV()
        joined.is_set = False
        joined.callables = frozenset()
        return joined

    _eval_Tuple = _eval_List

    def _eval_Set(self, node: ast.Set) -> AV:
        joined = join_av(*(self.eval(e) for e in node.elts)) if node.elts else AV()
        joined.is_set = True
        return joined

    def _eval_Dict(self, node: ast.Dict) -> AV:
        values = [self.eval(k) for k in node.keys if k is not None]
        values += [self.eval(v) for v in node.values]
        joined = join_av(*values) if values else AV()
        joined.is_set = False
        return joined

    def _eval_comprehension(self, node) -> AV:
        for generator in node.generators:
            iterable = self.eval(generator.iter)
            self._bind(generator.target, self._element_of(iterable))
            for condition in generator.ifs:
                self.eval(condition)
        if isinstance(node, ast.DictComp):
            return join_av(self.eval(node.key), self.eval(node.value))
        return self.eval(node.elt)

    def _eval_ListComp(self, node: ast.ListComp) -> AV:
        return self._eval_comprehension(node)

    _eval_GeneratorExp = _eval_ListComp

    def _eval_SetComp(self, node: ast.SetComp) -> AV:
        result = self._eval_comprehension(node)
        result.is_set = True
        return result

    def _eval_DictComp(self, node: ast.DictComp) -> AV:
        return self._eval_comprehension(node)

    def _eval_Lambda(self, node: ast.Lambda) -> AV:
        # Approximate the deferred call by evaluating the body inline;
        # lambda parameters are unbound (evaluate to clean values).
        return self.eval(node.body)

    def _eval_IfExp(self, node: ast.IfExp) -> AV:
        self.eval(node.test)
        return join_av(self.eval(node.body), self.eval(node.orelse))

    def _eval_Starred(self, node: ast.Starred) -> AV:
        return self.eval(node.value)

    def _eval_Await(self, node: ast.Await) -> AV:
        return self.eval(node.value)

    def _eval_Yield(self, node: ast.Yield) -> AV:
        value = self.eval(node.value) if node.value is not None else AV()
        self.ret = join_av(self.ret, value)
        return AV()

    def _eval_YieldFrom(self, node: ast.YieldFrom) -> AV:
        value = self.eval(node.value)
        self.ret = join_av(self.ret, value)
        return AV()

    def _eval_NamedExpr(self, node: ast.NamedExpr) -> AV:
        value = self.eval(node.value)
        self._bind(node.target, value)
        return value

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> AV:
        callee = self._resolve_callee(node.func)

        reporting = self._is_reporting_call(callee)
        if reporting:
            self._reporting += 1
        try:
            positional = [self.eval(a) for a in node.args]
            keywords = {k.arg: self.eval(k.value) for k in node.keywords}
        finally:
            if reporting:
                self._reporting -= 1
        all_args = positional + list(keywords.values())

        # Source/sink semantics for the web trust boundary apply to any
        # .fetch() call regardless of how (or whether) it resolved: the
        # WebHost protocol is the boundary, not one implementation.
        if callee.attr in FETCH_ATTR_NAMES or (
            callee.kind == "units"
            and any(u.name in FETCH_ATTR_NAMES for u in callee.units)
        ):
            for unit in callee.units:
                self.edges.add(unit.qualname)
            if positional:
                self._check_sink("ssrf", positional[0], node, "an outbound fetch")
            elif keywords:
                self._check_sink(
                    "ssrf", next(iter(keywords.values())), node, "an outbound fetch"
                )
            return AV(taint=self._origin(node, f"{callee.attr or 'fetch'}()"))

        if callee.kind == "units":
            return self._call_units(node, callee, positional, keywords)
        if callee.kind == "class":
            return self._call_class(node, callee, all_args)
        if callee.kind == "external":
            return self._call_external(node, callee, positional, all_args)
        if callee.kind == "builtin":
            return self._call_builtin(node, callee, positional, keywords, all_args)
        return self._call_unknown(node, callee, positional, all_args)

    def _is_reporting_call(self, callee: _Callee) -> bool:
        if callee.builtin == "print":
            return True
        if callee.attr in LOGGER_METHODS:
            return True
        return False

    def _call_units(
        self,
        node: ast.Call,
        callee: _Callee,
        positional: list[AV],
        keywords: dict[str | None, AV],
    ) -> AV:
        results = []
        for unit in callee.units:
            self.edges.add(unit.qualname)
            offset = 0
            args_by_index: dict[int, AV] = {}
            if callee.receiver is not None and unit.class_name is not None:
                args_by_index[0] = callee.receiver
                offset = 1
            for i, value in enumerate(positional):
                args_by_index[i + offset] = value
            for name, value in keywords.items():
                if name is not None and name in unit.params:
                    args_by_index[unit.params.index(name)] = value
            if any(v.is_clock for v in args_by_index.values()) and self._reporting == 0:
                self._det_event(
                    "D002",
                    node,
                    f"wall-clock value flows into {unit.symbol}()",
                )
            results.append(self._apply_summary(unit, args_by_index, node))
        return join_av(*results) if results else AV()

    def _call_class(self, node: ast.Call, callee: _Callee, all_args: list[AV]) -> AV:
        klass = self.project.classes.get(callee.dotted)
        if klass is not None:
            init = klass.methods.get("__init__")
            if init is not None:
                self.edges.add(init.qualname)
        # Constructors propagate every argument into the instance.
        joined = join_av(*all_args) if all_args else AV()
        return AV(taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock)

    def _call_external(
        self, node: ast.Call, callee: _Callee, positional: list[AV], all_args: list[AV]
    ) -> AV:
        dotted = callee.dotted
        if dotted in CLOCK_CALLS:
            return AV(is_clock=True)
        if dotted == "random" or dotted.startswith("random."):
            self._det_event(
                "D001",
                node,
                f"call to {dotted} uses the unseeded global stdlib RNG; "
                "use numpy.random.default_rng(seed)",
            )
            return AV()
        if dotted.startswith(("numpy.random.", "np.random.")):
            member = dotted.rsplit(".", 1)[-1]
            if member == "default_rng" or member == "RandomState":
                if not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                ):
                    self._det_event(
                        "D001",
                        node,
                        f"{member}() constructed without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
                return AV()
            if member not in SEEDED_RNG_ALLOWED:
                self._det_event(
                    "D001",
                    node,
                    f"numpy.random.{member} uses the unseeded global "
                    "RandomState; construct default_rng(seed)",
                )
            return AV()
        if dotted in REGEX_SINK_DOTTED:
            if positional:
                self._check_sink(
                    "regex", positional[0], node, f"{dotted}() as a pattern"
                )
                literal = node.args[0] if node.args else None
                if (
                    isinstance(literal, ast.Constant)
                    and isinstance(literal.value, str)
                    and redos.is_catastrophic(literal.value)
                ):
                    self._finding(
                        "T003",
                        node,
                        f"regex literal {literal.value!r}: "
                        + redos.explain(literal.value),
                    )
            return AV()
        if dotted in PATH_SINK_DOTTED:
            if positional:
                self._check_sink("path", positional[0], node, f"{dotted}()")
            return AV()
        if dotted in PATH_SINK_ANY_ARG:
            for value in positional:
                self._check_sink("path", value, node, f"{dotted}()")
            return AV()
        if dotted in FETCH_SINK_DOTTED:
            if positional:
                self._check_sink("ssrf", positional[0], node, f"{dotted}()")
            return AV(taint=self._origin(node, f"{dotted}()"))
        joined = join_av(*all_args) if all_args else AV()
        return AV(taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock)

    def _call_builtin(
        self,
        node: ast.Call,
        callee: _Callee,
        positional: list[AV],
        keywords: dict[str | None, AV],
        all_args: list[AV],
    ) -> AV:
        name = callee.builtin
        if name in PATH_SINK_BUILTINS:
            target = positional[0] if positional else keywords.get("file")
            if target is not None:
                self._check_sink("path", target, node, "open()")
            return AV()
        if name == "print":
            if self._is_report_module:
                for value in all_args:
                    self._check_sink("report", value, node, "print() output")
            return AV()
        if name == "getattr" and len(node.args) >= 2:
            dotted = self._dotted_of(node.args[0])
            if dotted is not None and dotted in self.project.modules:
                module = self.project.modules[dotted]
                callables = frozenset(
                    unit.qualname
                    for symbol, unit in module.functions.items()
                    if "." not in symbol
                )
                return AV(callables=callables)
        if name in ("list", "tuple") and positional and positional[0].is_set:
            self._det_event(
                "D003",
                node,
                f"{name}() over an unordered set fixes an arbitrary order; "
                "wrap the set in sorted(...)",
            )
        if name in ("sorted", "min", "max") and any(v.is_clock for v in all_args):
            if self._reporting == 0:
                self._det_event(
                    "D002", node, f"wall-clock value feeds {name}() ordering"
                )
        if name in CLEAN_BUILTINS:
            return AV()
        if name in PROPAGATING_BUILTINS:
            joined = join_av(*all_args) if all_args else AV()
            result = AV(
                taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock
            )
            if name in ("set", "frozenset"):
                result.is_set = True
            if name == "sorted":
                result.is_set = False
            return result
        joined = join_av(*all_args) if all_args else AV()
        return AV(taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock)

    def _call_unknown(
        self, node: ast.Call, callee: _Callee, positional: list[AV], all_args: list[AV]
    ) -> AV:
        receiver = callee.receiver or AV()
        attr = callee.attr
        if attr in FILE_READ_ATTRS:
            return AV(taint=self._origin(node, f".{attr}()"))
        if attr in LOGGER_METHODS and self._base_name(node) in LOGGER_BASE_NAMES:
            for value in all_args:
                self._check_sink("report", value, node, "a log record")
            return AV()
        if attr == "format":
            joined = join_av(receiver, *all_args)
            if self._is_report_module:
                self._check_sink("report", joined, node, ".format() interpolation")
            return AV(taint=joined.taint, pdeps=dict(joined.pdeps))
        if attr in _MUTATING_METHODS:
            base = self._receiver_name(node)
            if base is not None and all_args:
                existing = self.env.get(base)
                joined = join_av(existing or AV(), *all_args)
                joined.is_set = existing.is_set if existing else False
                joined.callables = frozenset()
                self.env[base] = joined
            return AV()
        joined = join_av(receiver, *all_args)
        return AV(taint=joined.taint, pdeps=dict(joined.pdeps), is_clock=joined.is_clock)

    def _base_name(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return func.value.id
        return ""

    def _receiver_name(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return func.value.id
        return None

    # -- statements --------------------------------------------------------

    def visit_block(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.visit_stmt(statement)

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Analyzed separately; bind the name for higher-order use.
            symbol = (
                f"{self.symbol}.{node.name}" if self.unit is not None else node.name
            )
            unit = self.module.functions.get(symbol)
            if unit is not None:
                self.env[node.name] = AV(callables=frozenset({unit.qualname}))
            return
        if isinstance(node, ast.ClassDef):
            self.visit_block(
                [
                    s
                    for s in node.body
                    if not isinstance(
                        s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                ]
            )
            return
        if isinstance(node, ast.Return):
            self.ret = join_av(self.ret, self.eval(node.value))
            return
        if isinstance(node, ast.Assign):
            value = self.eval(node.value)
            for target in node.targets:
                self._bind(target, value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self.eval(node.value))
            return
        if isinstance(node, ast.AugAssign):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                existing = self.env.get(node.target.id)
                joined = join_av(existing or AV(), value)
                if existing is not None:
                    joined.is_set = existing.is_set
                self.env[node.target.id] = joined
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterable = self.eval(node.iter)
            if iterable.is_set:
                self._det_event(
                    "D003",
                    node,
                    "iteration over an unordered set; wrap in sorted(...) "
                    "for a deterministic order",
                )
            self._bind(node.target, self._element_of(iterable))
            self.visit_block(node.body)
            self.visit_block(node.orelse)
            return
        if isinstance(node, ast.While):
            self.eval(node.test)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
            return
        if isinstance(node, ast.If):
            self.eval(node.test)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self.visit_block(node.body)
            return
        if isinstance(node, ast.Try):
            self.visit_block(node.body)
            for handler in node.handlers:
                if handler.name:
                    self.env.setdefault(handler.name, AV())
                self.visit_block(handler.body)
            self.visit_block(node.orelse)
            self.visit_block(node.finalbody)
            return
        if isinstance(node, ast.Expr):
            self.eval(node.value)
            return
        if isinstance(node, ast.Raise):
            self.eval(node.exc)
            self.eval(node.cause)
            return
        if isinstance(node, ast.Assert):
            self.eval(node.test)
            self.eval(node.msg)
            return
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(node, match_type):
            self.eval(node.subject)
            for case in node.cases:
                self.visit_block(case.body)
            return
        # Import/Delete/Global/Nonlocal/Pass/Break/Continue: nothing to do.


def _analysis_targets(project: Project) -> list[tuple[ModuleUnit, FunctionUnit | None]]:
    targets: list[tuple[ModuleUnit, FunctionUnit | None]] = []
    for module in project.modules.values():
        targets.append((module, None))
        for unit in module.functions.values():
            targets.append((module, unit))
    return targets


def run_analysis(project: Project) -> AnalysisResult:
    """Run the fixpoint over every function, then a collection pass.

    Returns the stable summaries, the call graph edges, all taint
    findings (T001–T005), and per-function determinism events.
    """
    targets = _analysis_targets(project)
    summaries: dict[str, Summary] = {}
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for module, unit in targets:
            interp = _Interp(project, module, unit, summaries, collect=False)
            summary = interp.run()
            name = unit.qualname if unit is not None else f"{module.name}.<module>"
            previous = summaries.get(name)
            if previous is None or previous.key() != summary.key():
                summaries[name] = summary
                changed = True
        if not changed:
            break

    result = AnalysisResult(summaries=summaries)
    seen: set[str] = set()
    for module, unit in targets:
        interp = _Interp(project, module, unit, summaries, collect=True)
        interp.run()
        name = unit.qualname if unit is not None else f"{module.name}.<module>"
        result.call_edges[name] = interp.edges
        result.det_events[name] = interp.det_events
        for finding in interp.findings:
            identity = (
                finding.rule,
                finding.path,
                finding.line,
                finding.column,
                finding.message,
            )
            if identity not in seen:
                seen.add(identity)
                result.taint_findings.append(finding)
    result.taint_findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return result


def iter_project_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Findings sorted in report order (path, line, column, rule)."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))
