"""Call-graph API over the interprocedural analysis edges.

The edges come from :func:`repro.devtools.flow.interp.run_analysis` —
every call the abstract interpreter resolved to a project function,
including methods found via ``self``, aliased imports, dispatch-dict
lookups, ``getattr(module, name)``, and the attribute-name fallback for
calls on unknown receivers.  Keys include one synthetic
``<module>`` node per module for import-time code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.devtools.flow.interp import AnalysisResult, run_analysis
from repro.devtools.flow.project import Project

__all__ = ["CallGraph", "build_call_graph"]


@dataclass(slots=True)
class CallGraph:
    """Directed caller -> callee edges between qualified names."""

    edges: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, qualname: str) -> frozenset[str]:
        """Direct callees of ``qualname`` (empty when unknown)."""
        return frozenset(self.edges.get(qualname, ()))

    def reachable_from(self, start: str) -> dict[str, tuple[str, ...]]:
        """Every node reachable from ``start`` mapped to the shortest
        call chain that reaches it (``start`` maps to ``(start,)``)."""
        chains: dict[str, tuple[str, ...]] = {start: (start,)}
        queue: deque[str] = deque([start])
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee,)
                    queue.append(callee)
        return chains

    def reachable_from_any(
        self, starts: Iterable[str]
    ) -> dict[str, tuple[str, tuple[str, ...]]]:
        """Union of :meth:`reachable_from` over ``starts``: node ->
        (entrypoint, shortest chain), keeping the shortest chain seen."""
        best: dict[str, tuple[str, tuple[str, ...]]] = {}
        for start in starts:
            for node, chain in self.reachable_from(start).items():
                if node not in best or len(chain) < len(best[node][1]):
                    best[node] = (start, chain)
        return best


def build_call_graph(
    project: Project, result: AnalysisResult | None = None
) -> CallGraph:
    """Build the call graph for ``project`` (reusing ``result`` when the
    analysis already ran)."""
    if result is None:
        result = run_analysis(project)
    edges: Mapping[str, set[str]] = result.call_edges
    return CallGraph(edges={k: set(v) for k, v in edges.items()})
