"""Heuristic detector for catastrophic-backtracking regex literals.

Adversarial pharmacy pages control the text our regexes run over, so a
pattern with super-linear backtracking is a denial-of-service vector
(ReDoS).  The classic shape is a quantified group whose body is itself
a single quantified atom — ``(a+)+``, ``(\\w*)*``, ``(.+)+`` — where one
input character can be consumed at two nesting levels, giving the
matcher exponentially many ways to fail.

The heuristic is deliberately narrow to stay precise: it only flags a
quantifier applied to a group whose body *ends* in a quantified atom
**and** contains nothing before that atom.  Patterns like
``(?:[-'][a-z0-9]+)*`` (tokenizer idiom: a required separator before
the inner quantifier makes the split points unambiguous) are left
alone.  Overlapping quantified alternations (``(a|aa)+``) are also
flagged when both branches are single atoms sharing a first character.
"""

from __future__ import annotations

import re

__all__ = ["is_catastrophic", "explain"]

# A single regex "atom": char class, escape, dot, or literal char.
_ATOM = r"(?:\[[^\]]*\]|\\.|[^\\()\[\]|?*+])"
_QUANT = r"(?:[*+]|\{\d+,(?:\d+)?\})"

#: Group whose entire body is one quantified atom, itself quantified:
#: ``(x+)*`` / ``(?:\w*)+`` / ``(a{2,})+``.
_NESTED_QUANT_RE = re.compile(
    rf"\((?:\?:)?\s*(?P<atom>{_ATOM})(?:{_QUANT})\s*\)(?:{_QUANT})"
)

#: Quantified two-branch alternation of single atoms: ``(a|b)+``.
_ALTERNATION_RE = re.compile(
    rf"\((?:\?:)?(?P<left>{_ATOM}+?)\|(?P<right>{_ATOM}+?)\)(?:{_QUANT})"
)


def _first_char_set(atom_sequence: str) -> set[str]:
    """Crude first-character set of an atom sequence (for overlap)."""
    if not atom_sequence:
        return set()
    if atom_sequence.startswith("["):
        end = atom_sequence.find("]")
        body = atom_sequence[1:end] if end > 0 else ""
        chars: set[str] = set()
        i = 0
        while i < len(body):
            if i + 2 < len(body) and body[i + 1] == "-":
                chars.update(chr(c) for c in range(ord(body[i]), ord(body[i + 2]) + 1))
                i += 3
            else:
                chars.add(body[i])
                i += 1
        return chars
    if atom_sequence.startswith("\\"):
        escape = atom_sequence[:2]
        expansions = {
            "\\d": set("0123456789"),
            "\\w": set("abcdefghijklmnopqrstuvwxyz0123456789_"),
            "\\s": set(" \t\n"),
        }
        return expansions.get(escape, {escape})
    if atom_sequence[0] == ".":
        return {chr(c) for c in range(33, 127)}
    return {atom_sequence[0]}


def is_catastrophic(pattern: str) -> bool:
    """Whether ``pattern`` matches a known catastrophic-backtracking
    shape (see module docstring for the exact heuristic)."""
    if _NESTED_QUANT_RE.search(pattern):
        return True
    for match in _ALTERNATION_RE.finditer(pattern):
        left = _first_char_set(match.group("left"))
        right = _first_char_set(match.group("right"))
        if left & right:
            return True
    return False


def explain(pattern: str) -> str:
    """A short human-readable description of why ``pattern`` is flagged."""
    match = _NESTED_QUANT_RE.search(pattern)
    if match:
        return (
            f"nested quantifier {match.group(0)!r}: one character can be "
            "consumed at two repetition levels (exponential backtracking)"
        )
    match = _ALTERNATION_RE.search(pattern)
    if match:
        return (
            f"quantified alternation {match.group(0)!r} with overlapping "
            "branches (ambiguous split points)"
        )
    return "catastrophic backtracking shape"
