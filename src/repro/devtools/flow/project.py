"""Whole-package model the flow analyses operate on.

:func:`load_project` parses every module of one or more package trees
and resolves the *static* structure the call-graph builder needs:

* dotted module names derived from the package root;
* per-module import alias tables (``import numpy as np``,
  ``from repro.web.url import parse_url as pu``, relative imports);
* every function and method, keyed by fully qualified name, with its
  parameter list and any ``@sanitizes(...)`` declaration read from the
  decorator list;
* module-level *dispatch tables* — dict literals whose values are
  function references (``_TABLE_BUILDERS = {"table1": tables.table1}``)
  — so ``TABLE[key](config)`` calls resolve to every registered target;
* ``# repro-flow: disable=...`` suppression comments, sharing the
  syntax of repro-lint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.devtools.rules import parse_suppressions

__all__ = [
    "FunctionUnit",
    "ClassUnit",
    "ModuleUnit",
    "Project",
    "load_project",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Suppression-comment markers parsed for every module.  ``repro-flow``
#: feeds :attr:`ModuleUnit.line_suppressions`; the rest are reachable
#: through :meth:`ModuleUnit.is_suppressed_marker` (the concurrency
#: analyzer reads ``repro-conc``, the hot-path analyzer ``repro-hot``).
SUPPRESSION_MARKERS = ("repro-flow", "repro-conc", "repro-hot")

#: Module path suffixes whose public functions/methods are experiment
#: entrypoints for the determinism analysis.
ENTRY_MODULE_SUFFIXES = ("cli.py", "runner.py", "_pipeline.py")


@dataclass(slots=True)
class FunctionUnit:
    """One function or method in the analyzed package.

    Attributes:
        qualname: fully qualified dotted name
            (``repro.web.crawler.Crawler.crawl_site``).
        module: owning :class:`ModuleUnit`.
        node: the function's AST node.
        symbol: module-local dotted symbol (``Crawler.crawl_site``) —
            the value findings carry.
        params: parameter names in call order (``self`` included for
            methods; ``*args``/``**kwargs`` appended last).
        class_name: qualified name of the owning class, or ``None``.
        sanitizes: sink categories the function clears (``{"*"}`` for
            full sanitization), or ``None`` when not a sanitizer.
    """

    qualname: str
    module: "ModuleUnit"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    symbol: str
    params: list[str]
    class_name: str | None = None
    sanitizes: frozenset[str] | None = None

    @property
    def name(self) -> str:
        """The function's bare name."""
        return self.node.name


@dataclass(slots=True)
class ClassUnit:
    """One class: its qualified name and its methods by bare name."""

    qualname: str
    methods: dict[str, FunctionUnit] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleUnit:
    """One parsed module plus its resolution context.

    Attributes:
        name: dotted module name (``repro.web.crawler``).
        path: posix path as given to the analyzer.
        tree: parsed AST.
        lines: raw source lines.
        imports: local alias -> dotted target.  Targets may be project
            qualnames or external dotted names (``numpy``, ``time``).
        functions: module-local symbol -> :class:`FunctionUnit`.
        line_suppressions / file_suppressions: ``repro-flow`` comments.
    """

    name: str
    path: str
    tree: ast.Module
    lines: list[str]
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionUnit] = field(default_factory=dict)
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()
    #: marker -> (per-line suppressions, file-wide suppressions) for
    #: every entry of :data:`SUPPRESSION_MARKERS`.
    marker_suppressions: dict[
        str, tuple[dict[int, frozenset[str]], frozenset[str]]
    ] = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        """The stripped source text at 1-based ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` is disabled at ``lineno`` (repro-flow)."""
        if rule_id in self.file_suppressions or "all" in self.file_suppressions:
            return True
        ids = self.line_suppressions.get(lineno, frozenset())
        return rule_id in ids or "all" in ids

    def is_suppressed_marker(self, marker: str, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` is disabled at ``lineno`` for ``marker``
        (e.g. a ``# repro-conc: disable=C003`` comment)."""
        per_line, file_wide = self.marker_suppressions.get(marker, ({}, frozenset()))
        if rule_id in file_wide or "all" in file_wide:
            return True
        ids = per_line.get(lineno, frozenset())
        return rule_id in ids or "all" in ids


@dataclass(slots=True)
class Project:
    """Every module of the analyzed package(s), cross-indexed."""

    modules: dict[str, ModuleUnit] = field(default_factory=dict)
    functions: dict[str, FunctionUnit] = field(default_factory=dict)
    classes: dict[str, ClassUnit] = field(default_factory=dict)
    #: bare function/method name -> qualnames (attr-dispatch fallback).
    by_name: dict[str, list[str]] = field(default_factory=dict)
    #: qualname of a module-level dict of function refs -> target qualnames.
    dispatch_tables: dict[str, tuple[str, ...]] = field(default_factory=dict)
    errors: list[tuple[str, int, str]] = field(default_factory=list)

    def entrypoints(self, extra: Sequence[str] = ()) -> list[FunctionUnit]:
        """Determinism entrypoints: public functions and methods of
        modules matching :data:`ENTRY_MODULE_SUFFIXES`, plus any
        ``extra`` qualnames."""
        entries: dict[str, FunctionUnit] = {}
        for module in self.modules.values():
            if not module.path.endswith(ENTRY_MODULE_SUFFIXES):
                continue
            for unit in module.functions.values():
                parts = unit.symbol.split(".")
                if any(part.startswith("_") for part in parts):
                    continue
                entries[unit.qualname] = unit
        for qualname in extra:
            unit = self.functions.get(qualname)
            if unit is not None:
                entries[qualname] = unit
        return [entries[k] for k in sorted(entries)]


def _iter_package_files(root: Path) -> Iterator[Path]:
    for candidate in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in candidate.parts):
            continue
        yield candidate


def _module_name(root: Path, file_path: Path) -> str:
    relative = file_path.relative_to(root.parent)
    parts = list(relative.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _sanitizer_categories(node: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str] | None:
    for decorator in node.decorator_list:
        call = decorator
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "sanitizes":
            continue
        kinds = {
            arg.value
            for arg in call.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        }
        return frozenset(kinds) if kinds else frozenset({"*"})
    return None


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _collect_imports(module: ModuleUnit) -> None:
    """Record every import alias in the module (any nesting level)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: level 1 resolves against the module's
                # package — which is the module itself for __init__.py.
                package_parts = module.name.split(".")
                drop = node.level - 1 if module.is_package else node.level
                anchor = package_parts[: len(package_parts) - drop]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _collect_functions(project: Project, module: ModuleUnit) -> None:
    def visit(body: Sequence[ast.stmt], symbol_prefix: str, class_qual: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{symbol_prefix}.{node.name}" if symbol_prefix else node.name
                unit = FunctionUnit(
                    qualname=f"{module.name}.{symbol}",
                    module=module,
                    node=node,
                    symbol=symbol,
                    params=_param_names(node),
                    class_name=class_qual,
                    sanitizes=_sanitizer_categories(node),
                )
                module.functions[symbol] = unit
                project.functions[unit.qualname] = unit
                project.by_name.setdefault(node.name, []).append(unit.qualname)
                if class_qual is not None:
                    project.classes[class_qual].methods[node.name] = unit
                # Nested defs are registered too (resolvable via closures),
                # but do not descend into them for method collection.
                visit(node.body, symbol, None)
            elif isinstance(node, ast.ClassDef):
                symbol = f"{symbol_prefix}.{node.name}" if symbol_prefix else node.name
                qualname = f"{module.name}.{symbol}"
                project.classes[qualname] = ClassUnit(qualname=qualname)
                visit(node.body, symbol, qualname)
            elif isinstance(node, (ast.If, ast.Try)):
                visit(node.body, symbol_prefix, class_qual)
                for handler in getattr(node, "handlers", []):
                    visit(handler.body, symbol_prefix, class_qual)
                visit(node.orelse, symbol_prefix, class_qual)
                visit(getattr(node, "finalbody", []), symbol_prefix, class_qual)

    visit(module.tree.body, "", None)


def _function_ref_target(module: ModuleUnit, node: ast.expr) -> str | None:
    """Resolve an expression that *names* a function (dispatch values)."""
    if isinstance(node, ast.Name):
        if node.id in module.functions:
            return f"{module.name}.{node.id}"
        return module.imports.get(node.id)
    if isinstance(node, ast.Attribute):
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = module.imports.get(current.id, current.id)
        return ".".join([base, *reversed(parts)])
    if isinstance(node, ast.Lambda):
        return None
    return None


def _collect_dispatch_tables(project: Project, module: ModuleUnit) -> None:
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not isinstance(value, ast.Dict):
            continue
        refs = []
        for entry in value.values:
            target = _function_ref_target(module, entry)
            if target is not None and target in project.functions:
                refs.append(target)
        if not refs:
            continue
        for target_node in targets:
            if isinstance(target_node, ast.Name):
                project.dispatch_tables[f"{module.name}.{target_node.id}"] = tuple(refs)


def load_project(paths: Sequence[str]) -> Project:
    """Parse the package tree(s) under ``paths`` into a :class:`Project`.

    Each path must be a package directory; its basename becomes the
    root of the dotted module names (``src/repro`` -> ``repro.*``).
    Unreadable or syntactically invalid files are recorded in
    :attr:`Project.errors` rather than aborting the load.
    """
    project = Project()
    for raw in paths:
        root = Path(raw)
        for file_path in _iter_package_files(root):
            posix = str(file_path).replace("\\", "/")
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=posix)
            except OSError as exc:
                project.errors.append((posix, 1, f"cannot read file: {exc}"))
                continue
            except SyntaxError as exc:
                project.errors.append(
                    (posix, exc.lineno or 1, f"syntax error: {exc.msg}")
                )
                continue
            lines = source.splitlines()
            by_marker = {
                marker: parse_suppressions(lines, marker=marker)
                for marker in SUPPRESSION_MARKERS
            }
            per_line, file_wide = by_marker["repro-flow"]
            module = ModuleUnit(
                name=_module_name(root, file_path),
                path=posix,
                tree=tree,
                lines=lines,
                is_package=file_path.name == "__init__.py",
                line_suppressions=per_line,
                file_suppressions=file_wide,
                marker_suppressions=by_marker,
            )
            project.modules[module.name] = module
            _collect_imports(module)
            _collect_functions(project, module)
    # Dispatch tables need the full function index, so second pass.
    for module in project.modules.values():
        _collect_dispatch_tables(project, module)
    return project
