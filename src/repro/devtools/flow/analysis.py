"""Shared project-analysis pipeline for the dataflow-based analyzers.

``repro-flow`` and ``repro-conc`` both need the same expensive
front-end: parse the package trees into a :class:`~repro.devtools.flow.
project.Project`, run the summary fixpoint (:func:`~repro.devtools.
flow.interp.run_analysis`), and build the call graph.  This module
exposes that pipeline once so the concurrency analyzer reuses flow's
summaries instead of re-deriving them, and so a combined driver
(``repro-analyze``) can share one pass per package tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.devtools.flow.callgraph import CallGraph, build_call_graph
from repro.devtools.flow.interp import AnalysisResult, run_analysis
from repro.devtools.flow.project import Project, load_project

__all__ = ["ProjectAnalysis", "analyze_project"]


@dataclass(slots=True)
class ProjectAnalysis:
    """One fully analyzed package tree: structure, summaries, graph."""

    project: Project
    result: AnalysisResult
    graph: CallGraph

    @property
    def load_errors(self) -> list[tuple[str, int, str]]:
        """(path, line, message) for files that failed to parse."""
        return self.project.errors


def analyze_project(paths: Sequence[str]) -> ProjectAnalysis:
    """Load, summarize, and graph the package tree(s) under ``paths``."""
    project = load_project(paths)
    result = run_analysis(project)
    graph = build_call_graph(project, result)
    return ProjectAnalysis(project=project, result=result, graph=graph)
