"""Entrypoint-gated determinism findings (rules D001–D003).

The interpreter records *events* (unseeded RNG calls, wall-clock values
feeding data, unordered-set iteration) per function; this module turns
them into findings only when the function is reachable from an
experiment entrypoint — public functions of ``cli.py`` / ``runner.py``
/ ``*_pipeline.py`` modules, or qualnames passed via ``--entry``.  That
is the interprocedural generalization of repro-lint's single-file R002:
a helper three calls deep that touches ``numpy.random.rand`` is flagged
with the call chain that reaches it.

Module-level (import-time) events are reported unconditionally: code
that runs at import runs on every entrypoint.
"""

from __future__ import annotations

from typing import Sequence

from repro.devtools.findings import Finding
from repro.devtools.flow.callgraph import CallGraph
from repro.devtools.flow.interp import AnalysisResult
from repro.devtools.flow.project import Project

__all__ = ["determinism_findings"]

_MAX_CHAIN_SHOWN = 5


def _chain_note(entry: str, chain: tuple[str, ...]) -> str:
    if len(chain) <= 1:
        return f"(in entrypoint {entry})"
    shown = chain[-_MAX_CHAIN_SHOWN:]
    prefix = "... -> " if len(chain) > _MAX_CHAIN_SHOWN else ""
    return f"(reachable via {prefix}{' -> '.join(shown)})"


def determinism_findings(
    project: Project,
    result: AnalysisResult,
    graph: CallGraph,
    extra_entrypoints: Sequence[str] = (),
) -> list[Finding]:
    """Determinism events of entrypoint-reachable functions, as findings.

    Each event is reported once, annotated with the shortest call chain
    from the entrypoint that reaches it.
    """
    entry_qualnames = [u.qualname for u in project.entrypoints(extra_entrypoints)]
    reachable = graph.reachable_from_any(entry_qualnames)

    findings: list[Finding] = []
    seen: set[tuple[str, str, int, int]] = set()

    def emit(qualname: str, note: str) -> None:
        for event in result.det_events.get(qualname, ()):
            identity = (event.rule, event.path, event.line, event.column)
            if identity in seen:
                continue
            seen.add(identity)
            findings.append(
                Finding(
                    rule=event.rule,
                    path=event.path,
                    line=event.line,
                    column=event.column,
                    message=f"{event.message} {note}",
                    symbol=event.symbol,
                    source_line=event.source_line,
                )
            )

    # Import-time code first: reachable from every entrypoint.
    for module in project.modules.values():
        emit(f"{module.name}.<module>", "(at import time)")

    for qualname in sorted(reachable):
        entry, chain = reachable[qualname]
        emit(qualname, _chain_note(entry, chain))

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings
