"""repro-flow: interprocedural taint + determinism dataflow analysis.

Run as ``python -m repro.devtools.flow``.  See
:mod:`repro.devtools.flow.registry` for the rule catalogue and
:mod:`repro.devtools.flow.cli` for the command-line interface.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Lazy alias for :func:`repro.devtools.flow.cli.main` (keeps the
    package importable without pulling in the full analyzer)."""
    from repro.devtools.flow.cli import main as _main

    return _main(argv)
