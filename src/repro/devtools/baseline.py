"""Baseline (grandfathered-findings) support for the linter.

A baseline is a committed JSON file listing fingerprints of known
violations.  ``lint`` subtracts baselined findings from its report, so
a rule can be introduced without first fixing (or while deliberately
keeping) every historical hit; any *new* violation still fails the
build.  Regenerate with ``python -m repro.devtools.lint --write-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding
from repro.exceptions import ValidationError

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """An allowlist of grandfathered finding fingerprints."""

    def __init__(self, entries: Iterable[dict[str, object]] = ()) -> None:
        self._entries: list[dict[str, object]] = [dict(e) for e in entries]
        self._fingerprints = {str(e["fingerprint"]) for e in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._fingerprints

    @property
    def entries(self) -> tuple[dict[str, object], ...]:
        """The raw baseline entries, in file order."""
        return tuple(self._entries)

    def filter(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into (new, grandfathered)."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if finding in self else new).append(finding)
        return new, old

    def stale_fingerprints(self, findings: Sequence[Finding]) -> list[str]:
        """Baseline entries no longer observed (fixed since recording)."""
        live = {finding.fingerprint() for finding in findings}
        return [
            str(e["fingerprint"])
            for e in self._entries
            if str(e["fingerprint"]) not in live
        ]

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = ""
    ) -> "Baseline":
        """Build a baseline grandfathering every given finding."""
        entries = []
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        ):
            entry: dict[str, object] = {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
            }
            if justification:
                entry["justification"] = justification
            entries.append(entry)
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValidationError(f"baseline {path} is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            raise ValidationError(
                f"baseline {path} has an unsupported format; regenerate it "
                "with --write-baseline"
            )
        entries = []
        for entry in payload["findings"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ValidationError(
                    f"baseline {path} contains an entry without a fingerprint"
                )
            entries.append(entry)
        return cls(entries)

    def save(self, path: Path, tool: str = "repro-lint") -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": _FORMAT_VERSION,
            "tool": tool,
            "findings": self._entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
