"""repro-lint: the project's static-analysis entry point.

Usage::

    python -m repro.devtools.lint [paths ...]
        [--baseline PATH] [--no-baseline] [--write-baseline]
        [--fix] [--format text|json|sarif|github] [--list-rules]

With no paths, ``src/repro`` is linted.  Exit status: 0 when no new
findings (baselined findings do not fail the run), 1 when new findings
exist **or** when ``--fix`` rewrote any file (so CI catches uncommitted
fixes), 2 on usage errors or unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.autofix import apply_r001_fixes, apply_r009_fixes
from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.emit import render_github, render_sarif
from repro.devtools.findings import Finding, assign_occurrences
from repro.devtools.rules import RULES, ModuleInfo, parse_module

__all__ = ["main", "lint_paths", "discover_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def discover_files(paths: Sequence[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _lint_module(module: ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule.run(module))
    findings.sort(key=lambda f: (f.line, f.column, f.rule))
    return findings


def lint_paths(
    paths: Sequence[str],
    fix: bool = False,
    fixed_files: list[str] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths``; optionally autofix.

    Args:
        paths: files or directories to lint.
        fix: apply cheap autofixes (R001, R009) in place, then re-lint
            the fixed source so the report reflects the post-fix tree.
            Fixers run one at a time with a re-lint in between, so the
            findings each fixer sees carry line numbers valid for the
            source it rewrites.
        fixed_files: when given, paths of files ``--fix`` rewrote are
            appended (lets the CLI exit non-zero on applied fixes).

    Returns:
        All findings in (path, line) order, occurrence-stamped.
    """
    all_findings: list[Finding] = []
    for file_path in discover_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            all_findings.append(
                Finding(
                    rule="E000",
                    path=str(file_path),
                    line=1,
                    column=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            module = parse_module(str(file_path), source)
        except SyntaxError as exc:
            all_findings.append(
                Finding(
                    rule="E000",
                    path=str(file_path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        findings = _lint_module(module)
        if fix:
            for apply_fn in (apply_r001_fixes, apply_r009_fixes):
                if not any(f.fixable for f in findings):
                    break
                fixed = apply_fn(source, findings)
                if fixed == source:
                    continue
                file_path.write_text(fixed, encoding="utf-8")
                if fixed_files is not None and str(file_path) not in fixed_files:
                    fixed_files.append(str(file_path))
                source = fixed
                module = parse_module(str(file_path), fixed)
                findings = _lint_module(module)
        all_findings.extend(findings)
    return assign_occurrences(all_findings)


def _render_text(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    out = [finding.render() for finding in new]
    if grandfathered:
        out.append(f"({len(grandfathered)} baselined finding(s) suppressed)")
    if stale:
        out.append(
            f"warning: {len(stale)} stale baseline entr(y/ies) no longer "
            "observed; refresh with --write-baseline"
        )
    if new:
        out.append(f"found {len(new)} new finding(s)")
    else:
        out.append("clean")
    return "\n".join(out)


def _render_json(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    def encode(finding: Finding) -> dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
            "message": finding.message,
            "symbol": finding.symbol,
            "fingerprint": finding.fingerprint(),
            "fixable": finding.fixable,
        }

    return json.dumps(
        {
            "new": [encode(f) for f in new],
            "baselined": len(grandfathered),
            "stale_baseline_entries": stale,
        },
        indent=2,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="",
        help="note recorded on every entry written by --write-baseline",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply cheap autofixes in place (R001, R009)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            sys.stdout.write(f"{rule.rule_id}  {rule.summary}\n")
        return 0

    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        sys.stderr.write(f"error: no such path(s): {', '.join(missing)}\n")
        return 2

    fixed_files: list[str] = []
    findings = lint_paths(args.paths, fix=args.fix, fixed_files=fixed_files)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        Baseline.from_findings(findings, justification=args.justification).save(
            baseline_path
        )
        sys.stdout.write(
            f"wrote {len(findings)} finding(s) to {baseline_path}\n"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            sys.stderr.write(f"error: {exc}\n")
            return 2
    new, grandfathered = baseline.filter(findings)
    stale = baseline.stale_fingerprints(findings)

    if args.format == "sarif":
        catalog = {rule.rule_id: rule.summary for rule in RULES}
        sys.stdout.write(render_sarif("repro-lint", new, catalog) + "\n")
    elif args.format == "github":
        sys.stdout.write(render_github(new) + "\n")
    elif args.format == "json":
        sys.stdout.write(_render_json(new, grandfathered, stale) + "\n")
    else:
        sys.stdout.write(_render_text(new, grandfathered, stale) + "\n")

    if fixed_files:
        sys.stderr.write(
            f"note: --fix rewrote {len(fixed_files)} file(s); review and "
            "commit the changes\n"
        )
        return 1
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
