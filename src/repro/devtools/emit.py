"""Shared report emitters for the devtools CLIs.

``repro.devtools.lint``, ``repro.devtools.flow`` and
``repro.devtools.conc`` all produce
:class:`~repro.devtools.findings.Finding` objects; this module renders
them in the machine formats CI consumes:

* :func:`sarif_run` / :func:`render_sarif_document` — one SARIF run per
  tool and the enclosing 2.1.0 document; ``repro-analyze`` merges the
  three analyzers into a single upload this way;
* :func:`render_sarif` — single-tool convenience wrapper over the two;
* :func:`render_github` — GitHub Actions workflow commands
  (``::error file=...``), the zero-setup alternative when the
  code-scanning feature is unavailable.

Findings passed in should already be baseline-filtered: emitters report
what *fails* the build, not the grandfathered backlog.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.devtools.findings import Finding

__all__ = [
    "sarif_run",
    "render_sarif_document",
    "render_sarif",
    "render_github",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_INFO_URI = "https://github.com/repro/repro/blob/main/docs/devtools.md"


def sarif_run(
    tool_name: str,
    findings: Sequence[Finding],
    rule_catalog: Mapping[str, str],
) -> dict:
    """Build one SARIF ``run`` object for a single tool.

    Args:
        tool_name: SARIF driver name (``"repro-lint"`` / ``"repro-flow"``
            / ``"repro-conc"``).
        findings: baseline-filtered findings to report.
        rule_catalog: rule id -> one-line description, for the driver's
            rule metadata (ids missing from the catalog still emit).

    Returns:
        A dict suitable for the ``runs`` array of a SARIF document.
    """
    rule_ids = sorted(set(rule_catalog) | {f.rule for f in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_catalog.get(rule_id, rule_id)},
            "helpUri": _INFO_URI,
        }
        for rule_id in rule_ids
    ]
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    },
                    "logicalLocations": [
                        {"fullyQualifiedName": finding.symbol, "kind": "function"}
                    ],
                }
            ],
            "partialFingerprints": {
                "reproFingerprint/v1": finding.fingerprint(),
            },
        }
        for finding in findings
    ]
    return {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": _INFO_URI,
                "rules": rules,
            }
        },
        "results": results,
    }


def render_sarif_document(runs: Sequence[Mapping]) -> str:
    """Render SARIF ``run`` objects as one SARIF 2.1.0 document.

    Returns:
        The SARIF JSON text (stable key order, 2-space indent).
    """
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": list(runs),
    }
    return json.dumps(document, indent=2)


def render_sarif(
    tool_name: str,
    findings: Sequence[Finding],
    rule_catalog: Mapping[str, str],
) -> str:
    """Render a single tool's findings as a complete SARIF document."""
    return render_sarif_document([sarif_run(tool_name, findings, rule_catalog)])


def _escape_property(text: str) -> str:
    """Escape a workflow-command *property* value (file=, title=)."""
    return (
        text.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(text: str) -> str:
    """Escape workflow-command message data."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: Sequence[Finding]) -> str:
    """Render ``findings`` as GitHub Actions ``::error`` commands.

    One command per finding; GitHub turns these into inline annotations
    on the pull-request diff without any SARIF upload step.
    """
    lines = []
    for finding in findings:
        lines.append(
            "::error file={file},line={line},col={col},title={title}::{message}".format(
                file=_escape_property(finding.path),
                line=finding.line,
                col=finding.column + 1,
                title=_escape_property(finding.rule),
                message=_escape_data(f"{finding.rule} {finding.message}"),
            )
        )
    return "\n".join(lines)
