"""repro-conc: parallel-safety & cache-coherence static analysis.

Run as ``python -m repro.devtools.conc``.  See
:mod:`repro.devtools.conc.registry` for the rule catalogue (C001–C006)
and :mod:`repro.devtools.conc.cli` for the command-line interface.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Lazy alias for :func:`repro.devtools.conc.cli.main` (keeps the
    package importable without pulling in the full analyzer)."""
    from repro.devtools.conc.cli import main as _main

    return _main(argv)
