"""Rule engine for ``repro-conc`` (C001–C006).

Findings come in two shapes:

* **site-local** — C005 (cache-key incompleteness) and C006 (fork-
  unsafe callables) fire at the discovered site itself;
* **reachability-gated** — C001/C002 (shared-state writes), C003
  (nondeterminism), and C004 (non-atomic writes) fire on any function
  reachable from a worker root (or, for C004, a memoized-compute root)
  through the flow call graph, annotated with the shortest call chain —
  the same interprocedural gating ``repro-flow`` uses for D001–D003.

C003 re-uses the flow interpreter's determinism events verbatim: an
unseeded-RNG event that is benign on a serial entrypoint becomes a
fork hazard the moment the function is shipped to a worker, because
each worker process re-derives module RNG state independently.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from repro.devtools.conc.effects import (
    FunctionEffects,
    collect_data_globals,
    collect_mutable_globals,
    extract_effects,
    iter_scope_nodes,
    scope_assignments,
)
from repro.devtools.conc.entrypoints import (
    CacheSite,
    WorkerSubmission,
    discover_sites,
    enclosing_function_chain,
)
from repro.devtools.conc.registry import (
    ATOMIC_IO_EXEMPT_SUFFIXES,
    EXECUTION_KNOBS,
    FORK_UNSAFE_FACTORIES,
    SUPPRESSION_MARKER,
    TEMPORAL_KEY_ATTRS,
)
from repro.devtools.findings import Finding, assign_occurrences
from repro.devtools.flow.analysis import ProjectAnalysis
from repro.devtools.flow.project import FunctionUnit, ModuleUnit

__all__ = ["conc_findings"]

_BUILTIN_NAMES = frozenset(dir(builtins))
_MAX_CHAIN_SHOWN = 5


def _chain_note(kind: str, chain: tuple[str, ...]) -> str:
    if len(chain) <= 1:
        return f"(in {kind} '{chain[0] if chain else '?'}')"
    shown = chain[-_MAX_CHAIN_SHOWN:]
    prefix = "... -> " if len(chain) > _MAX_CHAIN_SHOWN else ""
    return f"({kind}-reachable via {prefix}{' -> '.join(shown)})"


class _ConcAnalyzer:
    def __init__(self, analysis: ProjectAnalysis) -> None:
        self.project = analysis.project
        self.result = analysis.result
        self.graph = analysis.graph
        self.mutable_globals = collect_mutable_globals(self.project)
        self.data_globals = collect_data_globals(self.project)
        self.effects = extract_effects(self.project, self.mutable_globals)
        self.submissions, self.cache_sites = discover_sites(self.project)
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, str, int, int]] = set()

    # -- emission ---------------------------------------------------------

    def _emit(
        self,
        rule: str,
        module: ModuleUnit,
        line: int,
        column: int,
        message: str,
        symbol: str,
        identity_extra: str = "",
    ) -> None:
        if module.is_suppressed_marker(SUPPRESSION_MARKER, rule, line):
            return
        identity = (rule, module.path, line, column, identity_extra)
        if identity in self._seen:
            return
        self._seen.add(identity)
        self.findings.append(
            Finding(
                rule=rule,
                path=module.path,
                line=line,
                column=column,
                message=message,
                symbol=symbol,
                source_line=module.source_line(line),
            )
        )

    def _node_context(self, qualname: str) -> tuple[ModuleUnit, str] | None:
        """(module, symbol) for a call-graph node."""
        unit = self.project.functions.get(qualname)
        if unit is not None:
            return unit.module, unit.symbol
        if qualname.endswith(".<module>"):
            module = self.project.modules.get(qualname[: -len(".<module>")])
            if module is not None:
                return module, "<module>"
        return None

    # -- reachability gating ----------------------------------------------

    def _worker_roots(self) -> dict[str, WorkerSubmission]:
        roots: dict[str, WorkerSubmission] = {}
        for submission in self.submissions:
            resolved = submission.resolved
            if resolved.kind == "unit" and resolved.unit is not None:
                roots.setdefault(resolved.unit.qualname, submission)
        return roots

    def _cache_roots(self) -> dict[str, CacheSite]:
        roots: dict[str, CacheSite] = {}
        for site in self.cache_sites:
            if site.compute.kind == "unit" and site.compute.unit is not None:
                roots.setdefault(site.compute.unit.qualname, site)
        return roots

    def _gated(self) -> None:
        worker_reach = self.graph.reachable_from_any(sorted(self._worker_roots()))
        cache_reach = self.graph.reachable_from_any(sorted(self._cache_roots()))

        for qualname in sorted(worker_reach):
            context = self._node_context(qualname)
            if context is None:
                continue
            module, symbol = context
            _entry, chain = worker_reach[qualname]
            note = _chain_note("worker", chain)
            effects = self.effects.get(qualname, FunctionEffects())
            for effect in effects.mutations + effects.rebinds:
                self._emit(
                    effect.rule,
                    module,
                    effect.line,
                    effect.column,
                    f"{effect.message} {note}",
                    symbol,
                )
            for event in self.result.det_events.get(qualname, ()):
                self._emit(
                    "C003",
                    module,
                    event.line,
                    event.column,
                    f"{event.message} [{event.rule}] {note}",
                    symbol,
                )

        for kind, reach in (("worker", worker_reach), ("cache", cache_reach)):
            for qualname in sorted(reach):
                context = self._node_context(qualname)
                if context is None:
                    continue
                module, symbol = context
                if module.path.endswith(ATOMIC_IO_EXEMPT_SUFFIXES):
                    continue
                _entry, chain = reach[qualname]
                note = _chain_note(kind, chain)
                for effect in self.effects.get(qualname, FunctionEffects()).raw_writes:
                    self._emit(
                        "C004",
                        module,
                        effect.line,
                        effect.column,
                        f"{effect.message} {note}",
                        symbol,
                    )

    # -- C006: fork-unsafe submissions -------------------------------------

    def _submission_findings(self) -> None:
        for submission in self.submissions:
            module = submission.module
            symbol = submission.site_unit.symbol if submission.site_unit else "<module>"
            resolved = submission.resolved
            if resolved.kind == "lambda":
                self._emit(
                    "C006",
                    module,
                    submission.line,
                    submission.column,
                    f"lambda submitted via {submission.api}() — lambdas do "
                    "not pickle across process boundaries",
                    symbol,
                )
                continue
            if resolved.kind != "unit" or resolved.unit is None:
                continue
            unit = resolved.unit
            if resolved.is_nested:
                self._emit(
                    "C006",
                    module,
                    submission.line,
                    submission.column,
                    f"nested function '{unit.symbol}' submitted via "
                    f"{submission.api}() — closures do not pickle across "
                    "process boundaries",
                    symbol,
                )
            for arg_name, factory in _fork_unsafe_defaults(unit):
                self._emit(
                    "C006",
                    module,
                    submission.line,
                    submission.column,
                    f"submitted callable '{unit.symbol}' captures "
                    f"fork-unsafe default '{arg_name}={factory}(...)'",
                    symbol,
                    identity_extra=arg_name,
                )

    # -- C005: cache-key completeness --------------------------------------

    def _cache_key_findings(self) -> None:
        for site in self.cache_sites:
            if site.key_call is None:
                continue
            if site.compute.kind != "unit" or site.compute.unit is None:
                continue
            self._check_key(site, site.compute.unit)

    def _check_key(self, site: CacheSite, compute: FunctionUnit) -> None:
        module = compute.module
        covered: set[str] = set(site.receiver_names) | set(EXECUTION_KNOBS)
        assert site.key_call is not None
        for child in ast.walk(site.key_call):
            if isinstance(child, ast.Name):
                covered.add(child.id)

        chain = enclosing_function_chain(compute)
        enclosing_params: set[str] = set()
        closure_assigns: list[tuple[str, ast.expr]] = []
        for enclosing in chain:
            enclosing_params.update(enclosing.params)
            closure_assigns.extend(scope_assignments(enclosing.node.body).items())
        closure_names = {name for name, _ in closure_assigns}

        def excluded(name: str) -> bool:
            return (
                name in module.imports
                or name in module.functions
                or f"{compute.symbol}.{name}" in module.functions
                or f"{module.name}.{name}" in self.project.classes
                or name in _BUILTIN_NAMES
            )

        def expr_covered(expr: ast.expr) -> bool:
            for child in ast.walk(expr):
                if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                    if child.id in covered or excluded(child.id):
                        continue
                    return False
            return True

        # An uncovered closure variable derived entirely from covered
        # inputs is itself covered (``docs = build(config, corpus)``).
        for _ in range(3):
            changed = False
            for name, expr in closure_assigns:
                if name not in covered and expr_covered(expr):
                    covered.add(name)
                    changed = True
            if not changed:
                break

        for name, line in sorted(_free_loads(compute).items()):
            if name in covered or excluded(name):
                continue
            if name in enclosing_params:
                what = "parameter"
            elif name in closure_names:
                what = "closure variable"
            elif name in self.data_globals.get(module.name, ()):
                what = "module global"
            else:
                continue
            site_module = site.module
            self._emit(
                "C005",
                site_module,
                site.key_call.lineno,
                site.key_call.col_offset,
                f"cache key omits {what} '{name}' read by the memoized "
                f"computation '{compute.qualname}' (line {line}) — stale "
                "hits when it changes",
                site.site_unit.symbol if site.site_unit else "<module>",
                identity_extra=name,
            )

        self._check_temporal_key(site, compute)

    def _check_temporal_key(self, site: CacheSite, compute: FunctionUnit) -> None:
        """C005's temporal extension: epoch-like attribute reads.

        Free-variable tracking misses instance state: a compute that
        reads ``self._epoch`` sees only the covered name ``self``.
        Attribute loads whose normalized name is in
        :data:`TEMPORAL_KEY_ATTRS` get their own coverage pass — the
        key call must mention the field (as an attribute load, a bare
        name, or a string params key), else a replayed or resumed tick
        can be served another snapshot's cached artifact.
        """
        assert site.key_call is not None
        key_tokens: set[str] = set()
        for child in ast.walk(site.key_call):
            if isinstance(child, ast.Attribute):
                key_tokens.add(child.attr.lstrip("_"))
            elif isinstance(child, ast.Name):
                key_tokens.add(child.id.lstrip("_"))
            elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                key_tokens.add(child.value.lstrip("_"))
        temporal_reads: dict[str, int] = {}
        for child in ast.walk(compute.node):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and child.attr.lstrip("_") in TEMPORAL_KEY_ATTRS
            ):
                temporal_reads.setdefault(child.attr.lstrip("_"), child.lineno)
        for name, line in sorted(temporal_reads.items()):
            if name in key_tokens:
                continue
            self._emit(
                "C005",
                site.module,
                site.key_call.lineno,
                site.key_call.col_offset,
                f"cache key omits temporal field '{name}' read by the "
                f"memoized computation '{compute.qualname}' (line {line}) "
                "— a replayed epoch can be served another snapshot's "
                "cached value",
                site.site_unit.symbol if site.site_unit else "<module>",
                identity_extra=f"temporal:{name}",
            )

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Finding]:
        self._submission_findings()
        self._cache_key_findings()
        self._gated()
        self.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return assign_occurrences(self.findings)


def _fork_unsafe_defaults(unit: FunctionUnit) -> Iterable[tuple[str, str]]:
    """(param, factory) pairs for defaults constructing unpicklables."""
    args = unit.node.args
    positional = args.posonlyargs + args.args
    paired = list(
        zip(positional[len(positional) - len(args.defaults) :], args.defaults)
    )
    paired.extend(
        (arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    )
    for arg, default in paired:
        if not isinstance(default, ast.Call):
            continue
        func = default.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in FORK_UNSAFE_FACTORIES:
            yield arg.arg, name


def _free_loads(unit: FunctionUnit) -> dict[str, int]:
    """Free variable reads of ``unit``'s body: name -> first line."""
    local_names: set[str] = set(unit.params)
    nodes = list(iter_scope_nodes(unit.node.body))
    for node in nodes:
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            local_names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local_names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local_names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local_names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    local_names.add(alias.asname or alias.name)
    free: dict[str, int] = {}
    for node in nodes:
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in local_names
        ):
            free.setdefault(node.id, node.lineno)
    return free


def conc_findings(
    analysis: ProjectAnalysis,
) -> tuple[list[Finding], list[tuple[str, int, str]]]:
    """All C001–C006 findings for an analyzed project, report-ordered,
    plus the project's load errors."""
    findings = _ConcAnalyzer(analysis).run()
    return findings, analysis.project.errors
