"""repro-conc: parallel-safety & cache-coherence analysis CLI.

Usage::

    python -m repro.devtools.conc [package-dirs ...]
        [--baseline PATH] [--no-baseline] [--write-baseline]
        [--justification TEXT] [--format text|json|sarif|github]
        [--list-rules]

With no paths, ``src/repro`` is analyzed.  Exit status mirrors
repro-lint/repro-flow: 0 when no new findings (baselined findings do
not fail the run), 1 when new findings exist, 2 on usage errors.

The default baseline file is ``.repro-conc-baseline.json`` so the
three analyzers' baselines never collide.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.baseline import Baseline
from repro.devtools.conc.analyzer import conc_findings
from repro.devtools.conc.registry import CONC_RULES
from repro.devtools.emit import render_github, render_sarif
from repro.devtools.findings import Finding
from repro.devtools.flow.analysis import ProjectAnalysis, analyze_project

__all__ = ["main", "analyze_paths", "DEFAULT_CONC_BASELINE_NAME"]

DEFAULT_CONC_BASELINE_NAME = ".repro-conc-baseline.json"

_TOOL_NAME = "repro-conc"


def analyze_paths(
    paths: Sequence[str], analysis: ProjectAnalysis | None = None
) -> tuple[list[Finding], list[tuple[str, int, str]]]:
    """Run the concurrency analysis over package directories.

    Returns (findings, load_errors); findings are occurrence-stamped
    and sorted in report order.  Pass a pre-built ``analysis`` to share
    one front-end pass with repro-flow.
    """
    if analysis is None:
        analysis = analyze_project(paths)
    return conc_findings(analysis)


def _render_text(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    out = [finding.render() for finding in new]
    if grandfathered:
        out.append(f"({len(grandfathered)} baselined finding(s) suppressed)")
    if stale:
        out.append(
            f"warning: {len(stale)} stale baseline entr(y/ies) no longer "
            "observed; refresh with --write-baseline"
        )
    if new:
        out.append(f"found {len(new)} new finding(s)")
    else:
        out.append("clean")
    return "\n".join(out)


def _render_json(
    new: list[Finding], grandfathered: list[Finding], stale: list[str]
) -> str:
    return json.dumps(
        {
            "new": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "column": f.column,
                    "message": f.message,
                    "symbol": f.symbol,
                    "fingerprint": f.fingerprint(),
                }
                for f in new
            ],
            "baselined": len(grandfathered),
            "stale_baseline_entries": stale,
        },
        indent=2,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.conc",
        description=(
            "Parallel-safety and cache-coherence static analysis for the "
            "repro codebase (rules C001-C006)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_CONC_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="",
        help="note recorded on every entry written by --write-baseline",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, summary in CONC_RULES.items():
            sys.stdout.write(f"{rule_id}  {summary}\n")
        return 0

    missing = [raw for raw in args.paths if not Path(raw).is_dir()]
    if missing:
        sys.stderr.write(
            f"error: not a package directory: {', '.join(missing)}\n"
        )
        return 2

    findings, load_errors = analyze_paths(args.paths)
    for path, line, message in load_errors:
        sys.stderr.write(f"warning: {path}:{line}: {message}\n")

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(DEFAULT_CONC_BASELINE_NAME)
    )
    if args.write_baseline:
        Baseline.from_findings(findings, justification=args.justification).save(
            baseline_path, tool=_TOOL_NAME
        )
        sys.stdout.write(f"wrote {len(findings)} finding(s) to {baseline_path}\n")
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            sys.stderr.write(f"error: {exc}\n")
            return 2
    new, grandfathered = baseline.filter(findings)
    stale = baseline.stale_fingerprints(findings)

    if args.format == "sarif":
        sys.stdout.write(render_sarif(_TOOL_NAME, new, CONC_RULES) + "\n")
    elif args.format == "github":
        sys.stdout.write(render_github(new) + "\n")
    elif args.format == "json":
        sys.stdout.write(_render_json(new, grandfathered, stale) + "\n")
    else:
        sys.stdout.write(_render_text(new, grandfathered, stale) + "\n")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
