"""Discovery of parallel entry points and memoization sites.

Three kinds of sites make code "concurrency-relevant":

* ``pmap(fn, items, ...)`` calls — ``fn`` runs in worker processes;
* ``executor.submit(fn, ...)`` / ``executor.map(fn, ...)`` on a name
  bound to a ``ProcessPoolExecutor`` (assignment or ``with ... as``);
* ``cache.get_or_compute(key, compute)`` — ``compute``'s result is
  persisted under ``key``, so every input it reads must appear in the
  paired ``cache.key(kind, content, params)`` call.

The submitted/memoized callable is resolved through local assignments,
``functools.partial`` wrappers, nested defs, module functions, import
aliases, and ``Class.method`` references — enough to identify the
call-graph root the analyzer gates rules C001–C004 on, and to classify
fork-unsafe shapes (lambdas, closures) for C006.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.devtools.conc.effects import iter_scope_nodes, scope_assignments
from repro.devtools.conc.registry import EXECUTOR_FACTORIES
from repro.devtools.flow.project import FunctionUnit, ModuleUnit, Project

__all__ = [
    "ResolvedCallable",
    "WorkerSubmission",
    "CacheSite",
    "discover_sites",
    "enclosing_function_chain",
]

_MAX_RESOLVE_DEPTH = 8


@dataclass(slots=True)
class ResolvedCallable:
    """What a submitted/memoized callable expression turned out to be.

    ``kind`` is ``"unit"`` (a project function), ``"lambda"``, or
    ``"unknown"`` (a parameter, external callable, ...).
    """

    kind: str
    unit: FunctionUnit | None = None
    is_nested: bool = False
    via_partial: bool = False


@dataclass(slots=True)
class WorkerSubmission:
    """One callable shipped into a process pool."""

    module: ModuleUnit
    site_unit: FunctionUnit | None
    api: str  # "pmap" | "submit" | "map"
    line: int
    column: int
    callable_expr: ast.expr
    resolved: ResolvedCallable


@dataclass(slots=True)
class CacheSite:
    """One ``get_or_compute`` call paired with its ``.key(...)`` call."""

    module: ModuleUnit
    site_unit: FunctionUnit | None
    line: int
    column: int
    key_call: ast.Call | None
    compute: ResolvedCallable
    receiver_names: frozenset[str]


def enclosing_function_chain(unit: FunctionUnit) -> list[FunctionUnit]:
    """Function units lexically enclosing ``unit``, outermost first.

    Class scopes in the symbol path are skipped: only function scopes
    contribute closure variables.
    """
    chain: list[FunctionUnit] = []
    parts = unit.symbol.split(".")
    for end in range(1, len(parts)):
        prefix = ".".join(parts[:end])
        enclosing = unit.module.functions.get(prefix)
        if enclosing is not None:
            chain.append(enclosing)
    return chain


def _is_nested_function(unit: FunctionUnit) -> bool:
    return bool(enclosing_function_chain(unit))


class _SiteScanner:
    """Scans one scope (function body or module top level) for sites."""

    def __init__(
        self, project: Project, module: ModuleUnit, unit: FunctionUnit | None
    ) -> None:
        self.project = project
        self.module = module
        self.unit = unit
        self.body = unit.node.body if unit is not None else module.tree.body
        self.assigns = scope_assignments(self.body)
        self.executor_names = {
            name
            for name, value in self.assigns.items()
            if self._is_executor_ctor(value)
        }

    def _dotted(self, node: ast.expr) -> str | None:
        """Resolve an expression that names something to a dotted path."""
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.module.imports.get(current.id, current.id)
        return ".".join([base, *reversed(parts)])

    def _is_executor_ctor(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = self._dotted(node.func)
        return dotted is not None and dotted.split(".")[-1] in EXECUTOR_FACTORIES

    # -- callable resolution ----------------------------------------------

    def resolve_callable(
        self, expr: ast.expr, depth: int = 0, via_partial: bool = False
    ) -> ResolvedCallable:
        if depth > _MAX_RESOLVE_DEPTH:
            return ResolvedCallable(kind="unknown", via_partial=via_partial)
        if isinstance(expr, ast.Lambda):
            return ResolvedCallable(kind="lambda", via_partial=via_partial)
        if isinstance(expr, ast.Call):
            dotted = self._dotted(expr.func)
            if dotted is not None and dotted.split(".")[-1] == "partial" and expr.args:
                return self.resolve_callable(expr.args[0], depth + 1, via_partial=True)
            return ResolvedCallable(kind="unknown", via_partial=via_partial)
        if isinstance(expr, ast.Name):
            name = expr.id
            if self.unit is not None:
                nested = self.module.functions.get(f"{self.unit.symbol}.{name}")
                if nested is not None:
                    return ResolvedCallable(
                        kind="unit", unit=nested, is_nested=True, via_partial=via_partial
                    )
            if name in self.assigns:
                return self.resolve_callable(
                    self.assigns[name], depth + 1, via_partial=via_partial
                )
            unit = self._unit_for_dotted(self.module.imports.get(name, name))
            if unit is not None:
                return ResolvedCallable(
                    kind="unit",
                    unit=unit,
                    is_nested=_is_nested_function(unit),
                    via_partial=via_partial,
                )
            return ResolvedCallable(kind="unknown", via_partial=via_partial)
        if isinstance(expr, ast.Attribute):
            dotted = self._dotted(expr)
            if dotted is not None:
                unit = self._unit_for_dotted(dotted)
                if unit is not None:
                    return ResolvedCallable(
                        kind="unit",
                        unit=unit,
                        is_nested=_is_nested_function(unit),
                        via_partial=via_partial,
                    )
            return ResolvedCallable(kind="unknown", via_partial=via_partial)
        return ResolvedCallable(kind="unknown", via_partial=via_partial)

    def _unit_for_dotted(self, dotted: str) -> FunctionUnit | None:
        """A project function for a (possibly module-local) dotted name."""
        local = self.module.functions.get(dotted)
        if local is not None:
            return local
        return self.project.functions.get(dotted) or self.project.functions.get(
            f"{self.module.name}.{dotted}"
        )

    # -- site extraction --------------------------------------------------

    def scan(self) -> Iterator[WorkerSubmission | CacheSite]:
        for node in iter_scope_nodes(self.body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = self._dotted(func) if not isinstance(func, ast.Lambda) else None
            if dotted is not None and dotted.split(".")[-1] == "pmap":
                fn_expr = self._argument(node, 0, "fn")
                if fn_expr is not None:
                    yield self._submission(node, "pmap", fn_expr)
                continue
            if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
                receiver = func.value
                is_pool = (
                    isinstance(receiver, ast.Name)
                    and receiver.id in self.executor_names
                ) or self._is_executor_ctor(receiver)
                if is_pool:
                    fn_expr = self._argument(node, 0, "fn")
                    if fn_expr is not None:
                        yield self._submission(node, func.attr, fn_expr)
                continue
            if isinstance(func, ast.Attribute) and func.attr == "get_or_compute":
                yield self._cache_site(node, func)

    @staticmethod
    def _argument(node: ast.Call, index: int, keyword: str) -> ast.expr | None:
        if len(node.args) > index:
            return node.args[index]
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    def _submission(
        self, node: ast.Call, api: str, fn_expr: ast.expr
    ) -> WorkerSubmission:
        return WorkerSubmission(
            module=self.module,
            site_unit=self.unit,
            api=api,
            line=node.lineno,
            column=node.col_offset,
            callable_expr=fn_expr,
            resolved=self.resolve_callable(fn_expr),
        )

    def _cache_site(self, node: ast.Call, func: ast.Attribute) -> CacheSite:
        key_expr = self._argument(node, 0, "key")
        compute_expr = self._argument(node, 1, "compute")
        key_call: ast.Call | None = None
        if isinstance(key_expr, ast.Call):
            key_call = key_expr
        elif isinstance(key_expr, ast.Name) and key_expr.id in self.assigns:
            bound = self.assigns[key_expr.id]
            if isinstance(bound, ast.Call):
                key_call = bound
        if key_call is not None and not (
            isinstance(key_call.func, ast.Attribute) and key_call.func.attr == "key"
        ):
            key_call = None
        receiver_names = frozenset(
            child.id
            for child in ast.walk(func.value)
            if isinstance(child, ast.Name)
        )
        compute = (
            self.resolve_callable(compute_expr)
            if compute_expr is not None
            else ResolvedCallable(kind="unknown")
        )
        return CacheSite(
            module=self.module,
            site_unit=self.unit,
            line=node.lineno,
            column=node.col_offset,
            key_call=key_call,
            compute=compute,
            receiver_names=receiver_names,
        )


def discover_sites(
    project: Project,
) -> tuple[list[WorkerSubmission], list[CacheSite]]:
    """All worker submissions and cache sites in the project, in a
    stable (path, line) order."""
    submissions: list[WorkerSubmission] = []
    cache_sites: list[CacheSite] = []
    for module in project.modules.values():
        scopes: list[FunctionUnit | None] = [None, *module.functions.values()]
        for unit in scopes:
            for site in _SiteScanner(project, module, unit).scan():
                if isinstance(site, WorkerSubmission):
                    submissions.append(site)
                else:
                    cache_sites.append(site)
    submissions.sort(key=lambda s: (s.module.path, s.line, s.column))
    cache_sites.sort(key=lambda s: (s.module.path, s.line, s.column))
    return submissions, cache_sites
