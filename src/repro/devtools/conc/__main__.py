"""``python -m repro.devtools.conc`` entry point."""

from __future__ import annotations

import sys

from repro.devtools.conc.cli import main

if __name__ == "__main__":
    sys.exit(main())
