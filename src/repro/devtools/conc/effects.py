"""Per-function side-effect extraction for the concurrency analyzer.

For every :class:`~repro.devtools.flow.project.FunctionUnit` (and each
module's import-time code) this module records the *effects* rules
C001/C002/C004 care about:

* in-place mutations of module-level mutable containers — directly
  (``_CACHE[k] = v``, ``_CACHE.update(...)``), through an imported
  module attribute (``state.REGISTRY.append(...)``), or through a
  parameter whose default aliases a module global
  (``def f(x, acc=_ACC): acc.append(x)``);
* rebinding writes: ``global``-declared assignments and class-attribute
  stores (``Config.mode = ...``);
* raw (non-atomic) file writes: ``open(path, "w")`` and
  ``Path.write_text`` / ``write_bytes`` calls that bypass
  ``repro.io``'s atomic helpers.

Extraction is purely syntactic and scope-local — nested function
bodies are skipped because nested defs are separate units — so the
analyzer can attribute each effect to exactly one call-graph node and
gate it on worker/cache reachability.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.devtools.conc.registry import (
    MUTABLE_FACTORIES,
    MUTATOR_METHODS,
    WRITE_MODE_CHARS,
)
from repro.devtools.flow.project import FunctionUnit, ModuleUnit, Project

__all__ = [
    "Effect",
    "FunctionEffects",
    "collect_mutable_globals",
    "collect_data_globals",
    "extract_effects",
    "iter_scope_nodes",
    "scope_assignments",
]


@dataclass(slots=True)
class Effect:
    """One rule-relevant side effect at a concrete source location."""

    rule: str
    message: str
    line: int
    column: int


@dataclass(slots=True)
class FunctionEffects:
    """Effects of one function (or one module's import-time code)."""

    mutations: list[Effect] = field(default_factory=list)  # C001
    rebinds: list[Effect] = field(default_factory=list)  # C002
    raw_writes: list[Effect] = field(default_factory=list)  # C004


def iter_scope_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``body`` without descending into nested function/class
    definitions (those are separate units with their own effects).
    Nested defs are *yielded* (their names bind in this scope) but
    never entered."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def scope_assignments(body: Sequence[ast.stmt]) -> dict[str, ast.expr]:
    """Simple ``name = expr`` bindings in a scope (last one wins),
    including ``with expr as name`` targets."""
    assigns: dict[str, ast.expr] = {}
    for node in iter_scope_nodes(body):
        if isinstance(node, ast.Assign) and node.value is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns[node.target.id] = node.value
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    assigns[item.optional_vars.id] = item.context_expr
    return assigns


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in MUTABLE_FACTORIES
    return False


def collect_mutable_globals(project: Project) -> dict[str, int]:
    """Module-level mutable containers: ``module.NAME`` -> def line."""
    table: dict[str, int] = {}
    for module in project.modules.values():
        for node in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    table[f"{module.name}.{target.id}"] = node.lineno
    return table


def collect_data_globals(project: Project) -> dict[str, set[str]]:
    """Module name -> module-level *data* names (assignment targets that
    are not functions, classes, or imports) — C005's global candidates."""
    table: dict[str, set[str]] = {}
    for module in project.modules.values():
        names: set[str] = set()
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    names.add(target.id)
        names -= set(module.functions)
        names -= set(module.imports)
        table[module.name] = names
    return table


def _dotted_parts(node: ast.expr) -> tuple[str, list[str]] | None:
    """Decompose ``a.b.c`` into its base name and attribute chain."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    return current.id, list(reversed(parts))


class _EffectCollector:
    """Extracts one scope's effects against the project-wide tables."""

    def __init__(
        self,
        project: Project,
        module: ModuleUnit,
        unit: FunctionUnit | None,
        mutable_globals: dict[str, int],
    ) -> None:
        self.project = project
        self.module = module
        self.unit = unit
        self.mutable_globals = mutable_globals
        self.effects = FunctionEffects()
        body = unit.node.body if unit is not None else module.tree.body
        self.body = body
        self.locals = set(scope_assignments(body))
        self.global_decls: set[str] = set()
        for node in iter_scope_nodes(body):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
        # Parameters whose defaults alias a module-level mutable global:
        # mutating the parameter mutates the global for default calls.
        self.param_aliases: dict[str, str] = {}
        if unit is not None:
            self.locals.update(unit.params)
            args = unit.node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(
                positional[len(positional) - len(args.defaults) :], args.defaults
            ):
                target = self._global_target(default)
                if target is not None:
                    self.param_aliases[arg.arg] = target
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is None:
                    continue
                target = self._global_target(default)
                if target is not None:
                    self.param_aliases[arg.arg] = target

    # -- resolution -------------------------------------------------------

    def _global_target(self, node: ast.expr) -> str | None:
        """Resolve an expression to a module-level mutable global's
        qualified name, or ``None``."""
        dotted = _dotted_parts(node)
        if dotted is None:
            return None
        base, attrs = dotted
        if not attrs:
            if base in self.locals and base not in self.global_decls:
                return None
            candidate = f"{self.module.name}.{base}"
            if candidate in self.mutable_globals:
                return candidate
            imported = self.module.imports.get(base)
            if imported in self.mutable_globals:
                return imported
            return None
        if len(attrs) == 1 and base not in self.locals:
            # other_module.NAME through an import alias.
            imported = self.module.imports.get(base)
            if imported is not None:
                candidate = f"{imported}.{attrs[0]}"
                if candidate in self.mutable_globals:
                    return candidate
        return None

    def _mutation_target(self, node: ast.expr) -> str | None:
        """Like :meth:`_global_target` but also sees through parameter
        default aliases."""
        if isinstance(node, ast.Name) and node.id in self.param_aliases:
            return self.param_aliases[node.id]
        return self._global_target(node)

    def _class_target(self, node: ast.expr) -> str | None:
        """Resolve a name to a project class qualname (for C002)."""
        if not isinstance(node, ast.Name):
            return None
        candidate = f"{self.module.name}.{node.id}"
        if candidate in self.project.classes:
            return candidate
        imported = self.module.imports.get(node.id)
        if imported in self.project.classes:
            return imported
        return None

    # -- extraction -------------------------------------------------------

    def run(self) -> FunctionEffects:
        for node in iter_scope_nodes(self.body):
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._visit_store(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        self._record_mutation(target.value, target, "del")
        return self.effects

    def _record_mutation(self, receiver: ast.expr, site: ast.AST, how: str) -> None:
        target = self._mutation_target(receiver)
        if target is None:
            return
        self.effects.mutations.append(
            Effect(
                rule="C001",
                message=(
                    f"mutates shared module-level state '{target}' ({how})"
                ),
                line=site.lineno,
                column=site.col_offset,
            )
        )

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                self._record_mutation(func.value, node, f".{func.attr}()")
            if func.attr in ("write_text", "write_bytes"):
                self.effects.raw_writes.append(
                    Effect(
                        rule="C004",
                        message=(
                            f"non-atomic .{func.attr}() — use a repro.io "
                            "atomic helper"
                        ),
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )
        elif isinstance(func, ast.Name) and func.id == "open":
            mode = self._open_mode(node)
            if mode is not None and WRITE_MODE_CHARS.intersection(mode):
                self.effects.raw_writes.append(
                    Effect(
                        rule="C004",
                        message=(
                            f"non-atomic open(..., {mode!r}) — use a "
                            "repro.io atomic helper"
                        ),
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return None  # default "r": read-only
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def _visit_store(self, node: ast.stmt) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:  # AnnAssign
            assert isinstance(node, ast.AnnAssign)
            if node.value is None:
                return
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                self._record_mutation(target.value, node, "subscript store")
            elif isinstance(target, ast.Name) and target.id in self.global_decls:
                self.effects.rebinds.append(
                    Effect(
                        rule="C002",
                        message=f"rebinds global '{target.id}'",
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )
            elif isinstance(target, ast.Attribute):
                class_qual = self._class_target(target.value)
                if class_qual is not None:
                    self.effects.rebinds.append(
                        Effect(
                            rule="C002",
                            message=(
                                f"writes class attribute "
                                f"'{class_qual}.{target.attr}'"
                            ),
                            line=node.lineno,
                            column=node.col_offset,
                        )
                    )
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Subscript):
                        self._record_mutation(element.value, node, "subscript store")


def extract_effects(
    project: Project, mutable_globals: dict[str, int] | None = None
) -> dict[str, FunctionEffects]:
    """Effects per call-graph node (function qualnames plus one
    ``module.<module>`` node per module for import-time code)."""
    if mutable_globals is None:
        mutable_globals = collect_mutable_globals(project)
    effects: dict[str, FunctionEffects] = {}
    for module in project.modules.values():
        effects[f"{module.name}.<module>"] = _EffectCollector(
            project, module, None, mutable_globals
        ).run()
        for unit in module.functions.values():
            effects[unit.qualname] = _EffectCollector(
                project, module, unit, mutable_globals
            ).run()
    return effects
