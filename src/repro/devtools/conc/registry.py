"""Rule catalogue and shared configuration for ``repro-conc``.

The concurrency analyzer guards the two contracts the perf layer
documents but nothing verifies statically:

* :func:`repro.perf.pmap` is deterministic and order-stable **only
  if** worker callables are picklable, draw no ambient state, and
  write nothing the parent expects to observe (fork semantics: child
  mutations of globals silently vanish);
* :class:`repro.perf.FeatureCache` hits are correct **only if** every
  input the memoized computation reads is folded into the key.

Rules C001–C006 each police one way those contracts break.  Findings
are suppressed with ``# repro-conc: disable=C003`` comments (same
syntax as repro-lint/repro-flow, different marker).
"""

from __future__ import annotations

__all__ = [
    "CONC_RULES",
    "SUPPRESSION_MARKER",
    "MUTATOR_METHODS",
    "MUTABLE_FACTORIES",
    "EXECUTOR_FACTORIES",
    "FORK_UNSAFE_FACTORIES",
    "EXECUTION_KNOBS",
    "TEMPORAL_KEY_ATTRS",
    "ATOMIC_IO_EXEMPT_SUFFIXES",
    "WRITE_MODE_CHARS",
]

#: Marker recognised in suppression comments.
SUPPRESSION_MARKER = "repro-conc"

CONC_RULES: dict[str, str] = {
    "C001": (
        "worker-reachable code mutates shared module-level mutable state "
        "(in-place writes diverge or vanish across process boundaries)"
    ),
    "C002": (
        "worker-reachable code rebinds a global or writes a class "
        "attribute (the write is lost in the parent under fork)"
    ),
    "C003": (
        "nondeterminism (unseeded RNG, wall clock, unordered iteration) "
        "reachable from a parallel worker — fork-divergent results"
    ),
    "C004": (
        "non-atomic file write in worker- or cache-reachable code; use "
        "repro.io atomic helpers (torn artifacts on crash or overlap)"
    ),
    "C005": (
        "cache key omits an input the memoized computation reads "
        "(stale hits when the omitted input changes)"
    ),
    "C006": (
        "unpicklable or fork-unsafe callable submitted to a process "
        "pool (lambda, nested function, or captured handle/lock)"
    ),
}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "extendleft",
        "sort",
        "reverse",
    }
)

#: Callables whose result is a shared mutable container when assigned
#: at module level.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Constructors that create a process/thread pool executor.
EXECUTOR_FACTORIES = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})

#: Constructors whose instances cannot cross a pickle/fork boundary
#: when captured in a submitted callable's defaults.
FORK_UNSAFE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "Event",
        "Barrier",
        "open",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
    }
)

#: Parameter names that tune *how* a computation runs, never *what* it
#: computes — legitimately absent from cache keys (pmap is order-stable
#: at any worker count, so ``jobs`` cannot change a cached value).
EXECUTION_KNOBS = frozenset(
    {
        "jobs",
        "n_jobs",
        "workers",
        "max_workers",
        "chunksize",
        "executor",
        "pool",
        "verbose",
        "progress",
        "cache",
        "cache_dir",
        "cache_fingerprint",
        "timeout",
        "logger",
    }
)

#: Attribute names (after stripping leading underscores) that mark a
#: value as *temporal* — a snapshot epoch, content revision, or
#: delta-sequence id.  A memoized computation that reads one of these
#: from its instance must fold it into the cache key, else a replayed
#: or resumed tick can be served another snapshot's cached artifact
#: (C005's incremental-pipeline extension).
TEMPORAL_KEY_ATTRS = frozenset({"epoch", "revision", "tick", "delta_seq"})

#: Module-path suffixes exempt from C004: the atomic helpers themselves
#: must open temp files with write modes.
ATOMIC_IO_EXEMPT_SUFFIXES: tuple[str, ...] = ("repro/io.py",)

#: ``open()`` mode characters that make the call a write.
WRITE_MODE_CHARS = frozenset("wax+")
