"""Runtime registry of taint *sanitizers* for the flow analyzer.

The interprocedural taint analysis (:mod:`repro.devtools.flow`) treats
every value derived from untrusted web content as tainted until it
passes through a function explicitly declared to neutralize a class of
sink.  That declaration is the :func:`sanitizes` decorator::

    from repro.devtools.sanitizers import sanitizes

    @sanitizes("path", "regex", "report")
    def parse_url(url: str) -> ParsedURL: ...

The decorator is intentionally a no-op at call time — it only records
the function in a registry (for runtime introspection and the docs) and
is *read statically* by the analyzer, which looks for the decorator in
the AST.  Declaring sanitization is therefore an auditable, reviewable
act rather than an implicit property of a helper's name.

Categories match the taint sink rules:

==========  ==========================================================
``path``    filesystem path construction / ``open()``          (T001)
``regex``   ``re.compile``/``re.search`` pattern position       (T002)
``ssrf``    outbound fetch URLs (registrable-domain pinning)    (T004)
``report``  report/log string interpolation                     (T005)
``*``       clears every category (full sanitization)
==========  ==========================================================

This module is imported by library layers (``web``, ``text``,
``experiments``), so it must not import anything beyond the stdlib.
"""

from __future__ import annotations

from typing import Callable, Mapping, TypeVar

__all__ = ["sanitizes", "SANITIZER_CATEGORIES", "registered_sanitizers"]

#: The recognized sink categories (plus the ``"*"`` wildcard).
SANITIZER_CATEGORIES = frozenset({"path", "regex", "ssrf", "report", "*"})

_REGISTRY: dict[str, frozenset[str]] = {}

_F = TypeVar("_F", bound=Callable[..., object])


def sanitizes(*categories: str) -> Callable[[_F], _F]:
    """Declare that the decorated function's return value is safe for
    the given sink ``categories``.

    Args:
        categories: one or more of :data:`SANITIZER_CATEGORIES`
            (``"*"`` clears everything).

    Returns:
        A decorator that registers the function and returns it
        unchanged (zero call overhead).
    """
    from repro.exceptions import ValidationError

    kinds = frozenset(categories)
    if not kinds:
        raise ValidationError("sanitizes() requires at least one category")
    unknown = kinds - SANITIZER_CATEGORIES
    if unknown:
        raise ValidationError(
            f"unknown sanitizer categories {sorted(unknown)}; "
            f"choose from {sorted(SANITIZER_CATEGORIES)}"
        )

    def decorate(fn: _F) -> _F:
        qualname = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}"
        _REGISTRY[qualname] = kinds
        return fn

    return decorate


def registered_sanitizers() -> Mapping[str, frozenset[str]]:
    """A read-only snapshot of every registered sanitizer.

    Maps ``module.qualname`` to the categories it clears.  Intended for
    documentation tooling and tests; the static analyzer does not use
    this (it reads decorators from source).
    """
    return dict(_REGISTRY)
