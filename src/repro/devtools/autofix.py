"""Autofixes for cheap-to-rewrite rules (R001, R009, and hot P003).

The R001 fix swaps a banned builtin exception for its
:mod:`repro.exceptions` replacement on the ``raise`` line and ensures
the replacement is imported, merging into an existing
``from repro.exceptions import ...`` statement when the module already
has one.

The R009 fix converts a mutated mutable default to the ``None``
sentinel: the default expression is replaced by ``None`` on the
``def`` line and an ``if param is None: param = <original>`` guard is
inserted at the top of the body (below the docstring).

The P003 fix (repro-hot) rewrites the list/tuple literal behind a
loop-nested membership test into a set literal.  Fixability is
re-verified against the current source before rewriting: the container
must be bound exactly once, to a single-line literal of hashable
constants, and never mutated in its scope — so a stale finding can
never corrupt a file.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

from repro.devtools.findings import Finding
from repro.devtools.rules import R001_FIX_MAP

__all__ = ["apply_r001_fixes", "apply_r009_fixes", "apply_p003_fixes"]

_EXCEPTIONS_MODULE = "repro.exceptions"
_MAX_LINE = 79


def _render_import(names: Sequence[str]) -> list[str]:
    """Render a ``from repro.exceptions import ...`` statement."""
    ordered = sorted(set(names))
    single = f"from {_EXCEPTIONS_MODULE} import {', '.join(ordered)}"
    if len(single) <= _MAX_LINE:
        return [single]
    lines = [f"from {_EXCEPTIONS_MODULE} import ("]
    lines.extend(f"    {name}," for name in ordered)
    lines.append(")")
    return lines


def _locate_exceptions_import(
    tree: ast.Module,
) -> tuple[int, int, list[str]] | None:
    """Find the top-level exceptions import: (start, end, names), 1-based."""
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == _EXCEPTIONS_MODULE
        ):
            names = [alias.name for alias in node.names]
            return node.lineno, node.end_lineno or node.lineno, names
    return None


def _import_insertion_line(tree: ast.Module) -> int:
    """1-based line *after which* a fresh import should be inserted."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = node.end_lineno or node.lineno
        elif last == 0 and isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            # Module docstring: insert below it if no imports exist.
            last = node.end_lineno or node.lineno
    return last


def apply_r001_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given R001 findings.

    Only findings whose offending line still matches
    ``raise <BannedName>`` are rewritten; the replacement class is then
    added to the module's ``repro.exceptions`` import.

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")
    needed: set[str] = set()
    for finding in findings:
        if finding.rule != "R001" or not finding.fixable:
            continue
        idx = finding.line - 1
        if not 0 <= idx < len(lines):
            continue
        for banned, replacement in R001_FIX_MAP.items():
            pattern = re.compile(rf"(\braise\s+){banned}\b")
            new_line, count = pattern.subn(rf"\g<1>{replacement}", lines[idx])
            if count:
                lines[idx] = new_line
                needed.add(replacement)
                break
    if not needed:
        return source

    tree = ast.parse(source)
    located = _locate_exceptions_import(tree)
    if located is not None:
        start, end, names = located
        if needed.issubset(names):
            rendered = None
        else:
            rendered = _render_import(list(names) + sorted(needed))
        if rendered is not None:
            lines[start - 1 : end] = rendered
    else:
        after = _import_insertion_line(tree)
        rendered = _render_import(sorted(needed))
        if after == 0:
            lines[0:0] = rendered
        else:
            lines[after:after] = rendered
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result


_P003_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)
_P003_HASHABLE = (str, int, float, bool, bytes, type(None))


def _iter_scope(body: Sequence[ast.stmt]):
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _enclosing_scope_body(
    tree: ast.Module, line: int
) -> Sequence[ast.stmt]:
    """Body of the innermost function containing ``line`` (module body
    when the line is at top level)."""
    body: Sequence[ast.stmt] = tree.body
    found = True
    while found:
        found = False
        for node in _iter_scope(body):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.lineno <= line <= (node.end_lineno or node.lineno)
            ):
                body = node.body
                found = True
                break
    return body


def _p003_literal_for(
    tree: ast.Module, line: int, column: int
) -> tuple[ast.List, str] | tuple[ast.Tuple, str] | None:
    """Re-verify one P003 finding against the source and return the
    (literal, container-name) to rewrite, or ``None``."""
    compare: ast.Compare | None = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Compare)
            and node.lineno == line
            and node.col_offset == column
            and any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops)
        ):
            compare = node
            break
    if compare is None:
        return None
    name: str | None = None
    for op, comparator in zip(compare.ops, compare.comparators):
        if isinstance(op, (ast.In, ast.NotIn)) and isinstance(comparator, ast.Name):
            name = comparator.id
            break
    if name is None:
        return None

    body = _enclosing_scope_body(tree, line)
    assignments: list[ast.expr] = []
    stores = 0
    for node in _iter_scope(body):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id == name:
                stores += 1
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    assignments.append(node.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _P003_MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return None
    if stores != 1 or len(assignments) != 1:
        return None
    value = assignments[0]
    if not isinstance(value, (ast.List, ast.Tuple)) or not value.elts:
        return None
    if value.lineno != (value.end_lineno or value.lineno):
        return None
    if not all(
        isinstance(elt, ast.Constant) and isinstance(elt.value, _P003_HASHABLE)
        for elt in value.elts
    ):
        return None
    return value, name


def apply_p003_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given P003 findings (list->set).

    Each finding anchors on the membership test; the container's single
    literal binding is re-located and re-verified before the literal's
    brackets are rewritten to a set literal.

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")

    rewrites: dict[tuple[int, int], tuple[int, str]] = {}
    for finding in findings:
        if finding.rule != "P003" or not finding.fixable:
            continue
        located = _p003_literal_for(tree, finding.line, finding.column)
        if located is None:
            continue
        value, _name = located
        idx = value.lineno - 1
        start, end = value.col_offset, value.end_col_offset or 0
        text = lines[idx][start:end]
        if text.startswith(("[", "(")) and text.endswith(("]", ")")):
            inner = text[1:-1].rstrip()
            inner = inner[:-1] if inner.endswith(",") else inner
        else:  # unparenthesized tuple
            inner = text
        rewrites[(value.lineno, start)] = (end, "{" + inner + "}")
    if not rewrites:
        return source

    # Same-line rewrites right-to-left so earlier offsets stay valid.
    for (line, start), (end, text) in sorted(rewrites.items(), reverse=True):
        idx = line - 1
        lines[idx] = lines[idx][:start] + text + lines[idx][end:]
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result


def _function_for_default(
    tree: ast.Module, line: int, column: int
) -> tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.expr] | None:
    """Locate ``(function, param_name, default_node)`` for a finding.

    R009 findings anchor on the default expression, so the match is by
    the default node's exact position.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        paired = list(
            zip(positional, [None] * (len(positional) - len(args.defaults)) + list(args.defaults))
        ) + list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in paired:
            if (
                default is not None
                and default.lineno == line
                and default.col_offset == column
            ):
                return node, arg.arg, default
    return None


def apply_r009_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given R009 findings.

    Each fix replaces the default with ``None`` and inserts a sentinel
    guard re-creating the original expression at the top of the body.
    Multi-line defaults are left alone (``fixable`` is already False
    for them, but the guard here keeps the rewrite safe regardless).

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")

    replacements: list[tuple[int, int, int, str]] = []  # line, start, end, text
    guards: list[tuple[int, list[str]]] = []  # insert-before line (1-based), lines
    for finding in findings:
        if finding.rule != "R009" or not finding.fixable:
            continue
        located = _function_for_default(tree, finding.line, finding.column)
        if located is None:
            continue
        func, param, default = located
        if default.lineno != (default.end_lineno or default.lineno):
            continue
        literal = ast.get_source_segment(source, default)
        if literal is None:
            continue
        replacements.append(
            (default.lineno, default.col_offset, default.end_col_offset or 0, "None")
        )
        body = func.body
        if body[0].lineno <= default.lineno:
            # One-line def: no body line to insert the guard before.
            replacements.pop()
            continue
        insert_at = body[0].lineno
        if (
            isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
            and len(body) > 1
        ):
            insert_at = body[1].lineno
        indent = " " * body[-1].col_offset
        guards.append(
            (
                insert_at,
                [
                    f"{indent}if {param} is None:",
                    f"{indent}    {param} = {literal}",
                ],
            )
        )
    if not replacements:
        return source

    # Same-line replacements right-to-left so earlier offsets stay valid.
    for line, start, end, text in sorted(replacements, reverse=True):
        idx = line - 1
        lines[idx] = lines[idx][:start] + text + lines[idx][end:]
    # Guards bottom-up so earlier insertion points stay valid.
    for insert_at, guard_lines in sorted(guards, reverse=True):
        lines[insert_at - 1 : insert_at - 1] = guard_lines
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result
