"""Autofixes for cheap-to-rewrite rules (currently R001).

The R001 fix swaps a banned builtin exception for its
:mod:`repro.exceptions` replacement on the ``raise`` line and ensures
the replacement is imported, merging into an existing
``from repro.exceptions import ...`` statement when the module already
has one.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

from repro.devtools.findings import Finding
from repro.devtools.rules import R001_FIX_MAP

__all__ = ["apply_r001_fixes"]

_EXCEPTIONS_MODULE = "repro.exceptions"
_MAX_LINE = 79


def _render_import(names: Sequence[str]) -> list[str]:
    """Render a ``from repro.exceptions import ...`` statement."""
    ordered = sorted(set(names))
    single = f"from {_EXCEPTIONS_MODULE} import {', '.join(ordered)}"
    if len(single) <= _MAX_LINE:
        return [single]
    lines = [f"from {_EXCEPTIONS_MODULE} import ("]
    lines.extend(f"    {name}," for name in ordered)
    lines.append(")")
    return lines


def _locate_exceptions_import(
    tree: ast.Module,
) -> tuple[int, int, list[str]] | None:
    """Find the top-level exceptions import: (start, end, names), 1-based."""
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == _EXCEPTIONS_MODULE
        ):
            names = [alias.name for alias in node.names]
            return node.lineno, node.end_lineno or node.lineno, names
    return None


def _import_insertion_line(tree: ast.Module) -> int:
    """1-based line *after which* a fresh import should be inserted."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = node.end_lineno or node.lineno
        elif last == 0 and isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            # Module docstring: insert below it if no imports exist.
            last = node.end_lineno or node.lineno
    return last


def apply_r001_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given R001 findings.

    Only findings whose offending line still matches
    ``raise <BannedName>`` are rewritten; the replacement class is then
    added to the module's ``repro.exceptions`` import.

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")
    needed: set[str] = set()
    for finding in findings:
        if finding.rule != "R001" or not finding.fixable:
            continue
        idx = finding.line - 1
        if not 0 <= idx < len(lines):
            continue
        for banned, replacement in R001_FIX_MAP.items():
            pattern = re.compile(rf"(\braise\s+){banned}\b")
            new_line, count = pattern.subn(rf"\g<1>{replacement}", lines[idx])
            if count:
                lines[idx] = new_line
                needed.add(replacement)
                break
    if not needed:
        return source

    tree = ast.parse(source)
    located = _locate_exceptions_import(tree)
    if located is not None:
        start, end, names = located
        if needed.issubset(names):
            rendered = None
        else:
            rendered = _render_import(list(names) + sorted(needed))
        if rendered is not None:
            lines[start - 1 : end] = rendered
    else:
        after = _import_insertion_line(tree)
        rendered = _render_import(sorted(needed))
        if after == 0:
            lines[0:0] = rendered
        else:
            lines[after:after] = rendered
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result
