"""Autofixes for cheap-to-rewrite rules (R001 and R009).

The R001 fix swaps a banned builtin exception for its
:mod:`repro.exceptions` replacement on the ``raise`` line and ensures
the replacement is imported, merging into an existing
``from repro.exceptions import ...`` statement when the module already
has one.

The R009 fix converts a mutated mutable default to the ``None``
sentinel: the default expression is replaced by ``None`` on the
``def`` line and an ``if param is None: param = <original>`` guard is
inserted at the top of the body (below the docstring).
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

from repro.devtools.findings import Finding
from repro.devtools.rules import R001_FIX_MAP

__all__ = ["apply_r001_fixes", "apply_r009_fixes"]

_EXCEPTIONS_MODULE = "repro.exceptions"
_MAX_LINE = 79


def _render_import(names: Sequence[str]) -> list[str]:
    """Render a ``from repro.exceptions import ...`` statement."""
    ordered = sorted(set(names))
    single = f"from {_EXCEPTIONS_MODULE} import {', '.join(ordered)}"
    if len(single) <= _MAX_LINE:
        return [single]
    lines = [f"from {_EXCEPTIONS_MODULE} import ("]
    lines.extend(f"    {name}," for name in ordered)
    lines.append(")")
    return lines


def _locate_exceptions_import(
    tree: ast.Module,
) -> tuple[int, int, list[str]] | None:
    """Find the top-level exceptions import: (start, end, names), 1-based."""
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == _EXCEPTIONS_MODULE
        ):
            names = [alias.name for alias in node.names]
            return node.lineno, node.end_lineno or node.lineno, names
    return None


def _import_insertion_line(tree: ast.Module) -> int:
    """1-based line *after which* a fresh import should be inserted."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = node.end_lineno or node.lineno
        elif last == 0 and isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            # Module docstring: insert below it if no imports exist.
            last = node.end_lineno or node.lineno
    return last


def apply_r001_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given R001 findings.

    Only findings whose offending line still matches
    ``raise <BannedName>`` are rewritten; the replacement class is then
    added to the module's ``repro.exceptions`` import.

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")
    needed: set[str] = set()
    for finding in findings:
        if finding.rule != "R001" or not finding.fixable:
            continue
        idx = finding.line - 1
        if not 0 <= idx < len(lines):
            continue
        for banned, replacement in R001_FIX_MAP.items():
            pattern = re.compile(rf"(\braise\s+){banned}\b")
            new_line, count = pattern.subn(rf"\g<1>{replacement}", lines[idx])
            if count:
                lines[idx] = new_line
                needed.add(replacement)
                break
    if not needed:
        return source

    tree = ast.parse(source)
    located = _locate_exceptions_import(tree)
    if located is not None:
        start, end, names = located
        if needed.issubset(names):
            rendered = None
        else:
            rendered = _render_import(list(names) + sorted(needed))
        if rendered is not None:
            lines[start - 1 : end] = rendered
    else:
        after = _import_insertion_line(tree)
        rendered = _render_import(sorted(needed))
        if after == 0:
            lines[0:0] = rendered
        else:
            lines[after:after] = rendered
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result


def _function_for_default(
    tree: ast.Module, line: int, column: int
) -> tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.expr] | None:
    """Locate ``(function, param_name, default_node)`` for a finding.

    R009 findings anchor on the default expression, so the match is by
    the default node's exact position.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        paired = list(
            zip(positional, [None] * (len(positional) - len(args.defaults)) + list(args.defaults))
        ) + list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in paired:
            if (
                default is not None
                and default.lineno == line
                and default.col_offset == column
            ):
                return node, arg.arg, default
    return None


def apply_r009_fixes(source: str, findings: Sequence[Finding]) -> str:
    """Rewrite ``source`` fixing the given R009 findings.

    Each fix replaces the default with ``None`` and inserts a sentinel
    guard re-creating the original expression at the top of the body.
    Multi-line defaults are left alone (``fixable`` is already False
    for them, but the guard here keeps the rewrite safe regardless).

    Returns:
        The fixed source (unchanged when nothing was fixable).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")

    replacements: list[tuple[int, int, int, str]] = []  # line, start, end, text
    guards: list[tuple[int, list[str]]] = []  # insert-before line (1-based), lines
    for finding in findings:
        if finding.rule != "R009" or not finding.fixable:
            continue
        located = _function_for_default(tree, finding.line, finding.column)
        if located is None:
            continue
        func, param, default = located
        if default.lineno != (default.end_lineno or default.lineno):
            continue
        literal = ast.get_source_segment(source, default)
        if literal is None:
            continue
        replacements.append(
            (default.lineno, default.col_offset, default.end_col_offset or 0, "None")
        )
        body = func.body
        if body[0].lineno <= default.lineno:
            # One-line def: no body line to insert the guard before.
            replacements.pop()
            continue
        insert_at = body[0].lineno
        if (
            isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
            and len(body) > 1
        ):
            insert_at = body[1].lineno
        indent = " " * body[-1].col_offset
        guards.append(
            (
                insert_at,
                [
                    f"{indent}if {param} is None:",
                    f"{indent}    {param} = {literal}",
                ],
            )
        )
    if not replacements:
        return source

    # Same-line replacements right-to-left so earlier offsets stay valid.
    for line, start, end, text in sorted(replacements, reverse=True):
        idx = line - 1
        lines[idx] = lines[idx][:start] + text + lines[idx][end:]
    # Guards bottom-up so earlier insertion points stay valid.
    for insert_at, guard_lines in sorted(guards, reverse=True):
        lines[insert_at - 1 : insert_at - 1] = guard_lines
    result = "\n".join(lines)
    if trailing_newline and not result.endswith("\n"):
        result += "\n"
    return result
