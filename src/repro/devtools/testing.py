"""Pytest helpers shared by the ``tests/`` and ``benchmarks/`` suites.

Not imported by the library itself (it needs :mod:`pytest`, a dev-only
dependency); conftests pull the hook in by name::

    from repro.devtools.testing import pytest_runtest_call  # noqa: F401

The hook kills any single test that runs longer than
``REPRO_TEST_TIMEOUT`` seconds (default 120) — a crawl that stops
converging or an accidental real ``time.sleep`` in a retry loop fails
fast instead of hanging CI.  Implemented with ``SIGALRM``, so it only
arms on POSIX main-thread runs and is a no-op elsewhere.
"""

from __future__ import annotations

import os
import signal
import threading
from collections.abc import Generator

import pytest

DEFAULT_TEST_TIMEOUT = 120.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item) -> Generator[None, object, object]:
    """Fail any single test that runs longer than the timeout."""
    timeout = float(os.environ.get("REPRO_TEST_TIMEOUT", DEFAULT_TEST_TIMEOUT))
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def on_timeout(signum: int, frame: object) -> None:
        raise TimeoutError(
            f"{item.nodeid} exceeded the {timeout:g}s per-test timeout "
            "(set REPRO_TEST_TIMEOUT to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
