"""repro-analyze: one invocation for all four analyzers.

Usage::

    python -m repro.devtools.analyze [paths ...]
        [--sarif PATH] [--format text|json] [--no-baseline]

Runs ``repro-lint`` (per-module rules), ``repro-flow`` (interprocedural
taint/determinism), ``repro-conc`` (concurrency-safety) and
``repro-hot`` (hot-path performance) over the same paths.  The three
interprocedural analyzers share a single parsed project and call
graph, so the umbrella costs one front-end pass, not four.

Each tool is gated against *its own* baseline file
(``.repro-lint-baseline.json`` / ``.repro-flow-baseline.json`` /
``.repro-conc-baseline.json`` / ``.repro-hot-baseline.json``; a
missing file is an empty baseline).
Exit status: 0 when no tool has new findings, 1 when any does, 2 on
usage errors.

``--sarif PATH`` writes a single SARIF 2.1.0 document with one run per
tool — the merged artifact CI uploads instead of per-tool files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.conc import cli as conc_cli
from repro.devtools.conc.cli import DEFAULT_CONC_BASELINE_NAME
from repro.devtools.conc.registry import CONC_RULES
from repro.devtools.emit import render_sarif_document, sarif_run
from repro.devtools.findings import Finding
from repro.devtools.flow import cli as flow_cli
from repro.devtools.flow.analysis import analyze_project
from repro.devtools.flow.cli import DEFAULT_FLOW_BASELINE_NAME
from repro.devtools.flow.registry import FLOW_RULES
from repro.devtools.hot import cli as hot_cli
from repro.devtools.hot.cli import DEFAULT_HOT_BASELINE_NAME
from repro.devtools.hot.registry import HOT_RULES
from repro.devtools.lint import lint_paths
from repro.devtools.rules import RULES

__all__ = ["main", "run_all"]


def _lint_catalog() -> dict[str, str]:
    return {rule.rule_id: rule.summary for rule in RULES}


def run_all(
    paths: Sequence[str], use_baselines: bool = True
) -> list[tuple[str, Path, list[Finding], list[Finding], dict[str, str]]]:
    """Run lint, flow, conc and hot over ``paths``.

    Returns one ``(tool, baseline_path, new, grandfathered, catalog)``
    tuple per tool, in fixed lint/flow/conc/hot order.  Baseline files
    are resolved relative to the current directory, matching each
    tool's standalone CLI.
    """
    analysis = analyze_project(paths)
    flow_findings, _ = flow_cli.analyze_paths(paths, analysis=analysis)
    conc_findings, _ = conc_cli.analyze_paths(paths, analysis=analysis)
    hot_findings, _ = hot_cli.analyze_paths(paths, analysis=analysis)
    per_tool = [
        ("repro-lint", Path(DEFAULT_BASELINE_NAME), lint_paths(paths), _lint_catalog()),
        ("repro-flow", Path(DEFAULT_FLOW_BASELINE_NAME), flow_findings, dict(FLOW_RULES)),
        ("repro-conc", Path(DEFAULT_CONC_BASELINE_NAME), conc_findings, dict(CONC_RULES)),
        ("repro-hot", Path(DEFAULT_HOT_BASELINE_NAME), hot_findings, dict(HOT_RULES)),
    ]
    results = []
    for tool, baseline_path, findings, catalog in per_tool:
        baseline = Baseline.load(baseline_path) if use_baselines else Baseline()
        new, grandfathered = baseline.filter(findings)
        results.append((tool, baseline_path, new, grandfathered, catalog))
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.analyze",
        description="Run repro-lint, repro-flow, repro-conc and repro-hot in one pass.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="write a merged SARIF document (one run per tool) to PATH",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore all baseline files; report every finding",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)

    missing = [raw for raw in args.paths if not Path(raw).is_dir()]
    if missing:
        sys.stderr.write(
            f"error: not (a) director(y/ies): {', '.join(missing)}\n"
        )
        return 2

    try:
        results = run_all(args.paths, use_baselines=not args.no_baseline)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        sys.stderr.write(f"error: {exc}\n")
        return 2

    if args.sarif:
        runs = [
            sarif_run(tool, new, catalog)
            for tool, _, new, _, catalog in results
        ]
        Path(args.sarif).write_text(
            render_sarif_document(runs) + "\n", encoding="utf-8"
        )

    total_new = sum(len(new) for _, _, new, _, _ in results)
    if args.format == "json":
        payload = {
            tool: {
                "new": [f.render() for f in new],
                "baselined": len(grandfathered),
            }
            for tool, _, new, grandfathered, _ in results
        }
        payload["total_new"] = total_new
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        for tool, _, new, grandfathered, _ in results:
            for finding in new:
                sys.stdout.write(f"[{tool}] {finding.render()}\n")
            suffix = (
                f" ({len(grandfathered)} baselined)" if grandfathered else ""
            )
            status = f"{len(new)} new finding(s)" if new else "clean"
            sys.stdout.write(f"{tool}: {status}{suffix}\n")
        if total_new:
            sys.stdout.write(f"found {total_new} new finding(s) in total\n")

    return 1 if total_new else 0


if __name__ == "__main__":
    sys.exit(main())
