"""repro — reproduction of *An Automated System for Internet Pharmacy
Verification* (Cordioli & Palpanas, EDBT 2018).

The library solves the paper's two problems over a (synthetic) web of
online pharmacies:

* **Classification (OPC)** — label pharmacies legitimate/illegitimate
  from text (TF-IDF term vectors or character N-Gram Graphs) and
  network (TrustRank) features, singly or combined with Ensemble
  Selection.
* **Ranking (OPR)** — order pharmacies by a cumulative legitimacy
  score, ``rank(p) = textRank(p) + networkRank(p)``, evaluated by
  pairwise orderedness.

Quickstart::

    from repro import GeneratorConfig, make_dataset, PharmacyVerifier

    corpus = make_dataset(GeneratorConfig(n_legitimate=24,
                                          n_illegitimate=176))
    verifier = PharmacyVerifier().fit(corpus)
    report = verifier.verify_site(corpus.sites[0])
    print(report.domain, report.is_legitimate, report.rank_score)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.core import (
    AggregatedReport,
    CombinedFeaturePipeline,
    EnsembleClassificationPipeline,
    ExperimentConfig,
    NetworkClassificationPipeline,
    NGramGraphTextPipeline,
    OutlierReport,
    PharmacyVerifier,
    RankedPharmacy,
    RankingResult,
    TfidfTextPipeline,
    VerificationReport,
    analyze_outliers,
    cross_validate_indexed,
    cross_validate_pipeline,
    preset,
    rank_pharmacies,
    train_test_evaluate,
)
from repro.data import (
    GeneratorConfig,
    PharmacyCorpus,
    QuarantinedSite,
    SyntheticWebGenerator,
    make_dataset,
    make_dataset_pair,
)
from repro.core import (
    ReviewQueue,
    degraded_domains,
    effort_to_find_fraction,
    simulate_review,
)
from repro.exceptions import ReproError, ServiceUnavailableError
from repro.io import export_corpus, import_corpus, load_model, save_model
from repro.serve import (
    Authenticator,
    Bulkhead,
    SlidingWindowRateLimiter,
    VerificationService,
    build_server,
)
from repro.ml import (
    C45Tree,
    GaussianNB,
    LinearSVC,
    LogisticRegression,
    MLPClassifier,
    MultinomialNB,
    SMOTE,
    RandomUnderSampler,
    inject_label_noise,
)
from repro.network import DirectedGraph, eigentrust, top_linked_domains, trustrank
from repro.text import CharNGramVectorizer, NGramGraph, Summarizer, TfidfVectorizer
from repro.web import (
    CircuitBreaker,
    Crawler,
    CrawlStats,
    FaultInjectingWebHost,
    FaultPlan,
    FaultSpec,
    InMemoryWebHost,
    RetryPolicy,
    VirtualClock,
    WebPage,
    Website,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AggregatedReport",
    "CombinedFeaturePipeline",
    "EnsembleClassificationPipeline",
    "ExperimentConfig",
    "NetworkClassificationPipeline",
    "NGramGraphTextPipeline",
    "OutlierReport",
    "PharmacyVerifier",
    "RankedPharmacy",
    "RankingResult",
    "TfidfTextPipeline",
    "VerificationReport",
    "analyze_outliers",
    "cross_validate_indexed",
    "cross_validate_pipeline",
    "preset",
    "rank_pharmacies",
    "train_test_evaluate",
    # data
    "GeneratorConfig",
    "PharmacyCorpus",
    "QuarantinedSite",
    "SyntheticWebGenerator",
    "make_dataset",
    "make_dataset_pair",
    # errors
    "ReproError",
    "ServiceUnavailableError",
    # io
    "export_corpus",
    "import_corpus",
    "load_model",
    "save_model",
    # ml
    "C45Tree",
    "GaussianNB",
    "LinearSVC",
    "LogisticRegression",
    "MLPClassifier",
    "MultinomialNB",
    "SMOTE",
    "RandomUnderSampler",
    "inject_label_noise",
    # serve
    "Authenticator",
    "Bulkhead",
    "SlidingWindowRateLimiter",
    "VerificationService",
    "build_server",
    # review workflow
    "ReviewQueue",
    "degraded_domains",
    "effort_to_find_fraction",
    "simulate_review",
    # network
    "DirectedGraph",
    "eigentrust",
    "top_linked_domains",
    "trustrank",
    # text
    "CharNGramVectorizer",
    "NGramGraph",
    "Summarizer",
    "TfidfVectorizer",
    # web
    "CircuitBreaker",
    "Crawler",
    "CrawlStats",
    "FaultInjectingWebHost",
    "FaultPlan",
    "FaultSpec",
    "InMemoryWebHost",
    "RetryPolicy",
    "VirtualClock",
    "WebPage",
    "Website",
]
