"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner [--scale small] [ids ...]

With no ids, every table and figure is regenerated.  ids are paper
identifiers: ``table1 table3 ... table17 figure2 figure3``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.config import ExperimentConfig
from repro.experiments import figures, tables
from repro.exceptions import MissingKeyError

__all__ = ["main", "run_experiment", "EXPERIMENT_IDS"]

_TABLE_BUILDERS: dict[str, Callable[[ExperimentConfig], object]] = {
    "table1": tables.table1,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
    "table7": tables.table7,
    "table8": tables.table8,
    "table9": tables.table9,
    "table10": tables.table10,
    "table11": tables.table11,
    "table12": tables.table12,
    "table13": tables.table13,
    "table14": tables.table14,
    "table15": tables.table15,
    "table16": tables.table16,
    "table17": tables.table17,
}

EXPERIMENT_IDS = tuple(_TABLE_BUILDERS) + ("figure2", "figure3")


def run_experiment(experiment_id: str, config: ExperimentConfig) -> str:
    """Run one experiment and return its rendered output."""
    if experiment_id in _TABLE_BUILDERS:
        result = _TABLE_BUILDERS[experiment_id](config)
        return result.render()
    if experiment_id == "figure2":
        return figures.figure2_pipeline_trace().render()
    if experiment_id == "figure3":
        return figures.figure3_trustrank_demo().render(precision=4)
    raise MissingKeyError(
        f"unknown experiment {experiment_id!r}; choose from {EXPERIMENT_IDS}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=list(EXPERIMENT_IDS),
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        help="dataset scale preset: tiny / small / medium / paper",
    )
    parser.add_argument(
        "--folds", type=int, default=3, help="cross-validation folds"
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig(scale=args.scale, n_folds=args.folds)
    for experiment_id in args.ids:
        start = time.time()
        output = run_experiment(experiment_id, config)
        elapsed = time.time() - start
        print(output)  # repro-lint: disable=R005 (CLI entry point)
        print(f"[{experiment_id} done in {elapsed:.1f}s]\n")  # repro-lint: disable=R005 (CLI entry point)
    return 0


if __name__ == "__main__":
    sys.exit(main())
