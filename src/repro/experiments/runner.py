"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner [--scale small] [--jobs N] [ids ...]

With no ids, every table and figure is regenerated.  ids are paper
identifiers: ``table1 table3 ... table17 figure2 figure3``.

``--jobs N`` fans per-document feature extraction and the TF-IDF sweep
grid out to N worker processes (0 = one per CPU) with identical
results at any worker count; ``--cache-dir DIR`` memoizes extracted
features on disk so repeated runs skip recomputation.  By default the
sweep scheduler fits each (subset, fold)'s feature matrices once and
shares them across all classifier/sampling configs;
``--per-config-refit`` disables that sharing (every config refits its
own vectorizer — slower, identical tables; useful for validating the
sharing).  Each experiment's wall time is printed as it finishes, plus
a summary at the end.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.config import ExperimentConfig
from repro.experiments import figures, tables
from repro.exceptions import MissingKeyError

__all__ = ["main", "run_experiment", "EXPERIMENT_IDS"]

_TABLE_BUILDERS: dict[str, Callable[[ExperimentConfig], object]] = {
    "table1": tables.table1,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
    "table7": tables.table7,
    "table8": tables.table8,
    "table9": tables.table9,
    "table10": tables.table10,
    "table11": tables.table11,
    "table12": tables.table12,
    "table13": tables.table13,
    "table14": tables.table14,
    "table15": tables.table15,
    "table16": tables.table16,
    "table17": tables.table17,
}

EXPERIMENT_IDS = tuple(_TABLE_BUILDERS) + ("figure2", "figure3")


def run_experiment(experiment_id: str, config: ExperimentConfig) -> str:
    """Run one experiment and return its rendered output."""
    if experiment_id in _TABLE_BUILDERS:
        result = _TABLE_BUILDERS[experiment_id](config)
        return result.render()
    if experiment_id == "figure2":
        return figures.figure2_pipeline_trace().render()
    if experiment_id == "figure3":
        return figures.figure3_trustrank_demo().render(precision=4)
    raise MissingKeyError(
        f"unknown experiment {experiment_id!r}; choose from {EXPERIMENT_IDS}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=list(EXPERIMENT_IDS),
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        help="dataset scale preset: tiny / small / medium / paper",
    )
    parser.add_argument(
        "--folds", type=int, default=3, help="cross-validation folds"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for feature extraction (0 = CPU count; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk feature cache (default: disabled)",
    )
    parser.add_argument(
        "--per-config-refit",
        action="store_true",
        help="refit sweep feature matrices per classifier config instead "
        "of sharing them per (subset, fold); slower, identical tables",
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig(
        scale=args.scale,
        n_folds=args.folds,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        shared_sweeps=not args.per_config_refit,
    )
    timings: list[tuple[str, float]] = []
    for experiment_id in args.ids:
        start = time.perf_counter()
        output = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - start
        timings.append((experiment_id, elapsed))
        print(output)  # repro-lint: disable=R005 (CLI entry point)
        print(f"[{experiment_id} done in {elapsed:.2f}s]\n")  # repro-lint: disable=R005 (CLI entry point)
    if len(timings) > 1:
        total = sum(secs for _, secs in timings)
        width = max(len(name) for name, _ in timings)
        print("wall time per experiment:")  # repro-lint: disable=R005 (CLI entry point)
        for name, secs in timings:
            print(f"  {name:<{width}}  {secs:8.2f}s")  # repro-lint: disable=R005 (CLI entry point)
        print(f"  {'total':<{width}}  {total:8.2f}s")  # repro-lint: disable=R005 (CLI entry point)
    return 0


if __name__ == "__main__":
    sys.exit(main())
