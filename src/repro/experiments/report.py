"""Markdown report generation.

Collects every reproduced table/figure (and optionally the ablations)
for one configuration and renders a single markdown document — the
machine-generated companion to the hand-written EXPERIMENTS.md.

Usage::

    python -m repro.experiments.report --scale small -o report.md
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.devtools.sanitizers import sanitizes
from repro.experiments import ablations, figures, tables
from repro.experiments.results import TableResult

__all__ = ["generate_report", "main"]

_TABLE_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1", "Datasets"),
    ("table3", "TF-IDF accuracy"),
    ("table4", "TF-IDF legitimate recall/precision"),
    ("table5", "TF-IDF illegitimate recall/precision"),
    ("table6", "TF-IDF AUC-ROC"),
    ("table7", "N-Gram Graphs accuracy"),
    ("table8", "N-Gram Graphs legitimate recall/precision"),
    ("table9", "N-Gram Graphs illegitimate recall/precision"),
    ("table10", "N-Gram Graphs AUC-ROC"),
    ("table11", "Top linked-to domains"),
    ("table12", "Network accuracy/AUC"),
    ("table13", "Network precision/recall"),
    ("table14", "Ensemble classification"),
    ("table15", "Ranking pairwise orderedness"),
    ("table16", "Model over time — AUC"),
    ("table17", "Model over time — legitimate precision"),
)

_ABLATIONS: tuple[tuple[str, str], ...] = (
    ("sampling_ablation", "Sampling strategies"),
    ("trustrank_ablation", "TrustRank damping / seeds"),
    ("ngg_parameter_ablation", "N-Gram-Graph rank"),
    ("ranking_combiner_ablation", "Ranking combiner"),
    ("representation_ablation", "Text representations"),
    ("trust_algorithm_ablation", "Trust algorithms"),
    ("label_noise_ablation", "Label noise"),
    ("review_effort_experiment", "Reviewer effort"),
    ("auxiliary_sites_ablation", "Auxiliary sites"),
    ("term_selection_ablation", "Term-budget policy"),
    ("seed_stability_experiment", "Seed stability"),
    ("gray_zone_experiment", "Gray zone (\u00a76.1)"),
)


@sanitizes("report")
def _escape_cell(text: str) -> str:
    """Escape markdown table syntax in a cell value.

    Corpus-derived strings (domain names, page-derived terms) end up in
    table cells; a stray ``|`` or newline would break the table, and a
    crafted value could inject markup into the rendered report."""
    return (
        text.replace("\\", "\\\\").replace("|", "\\|").replace("\n", " ").strip()
    )


def _as_markdown(table: TableResult, precision: int = 3) -> str:
    from repro.experiments.results import format_value

    header = "| " + " | ".join(_escape_cell(str(c)) or " " for c in table.columns) + " |"
    rule = "|" + "|".join("---" for _ in table.columns) + "|"
    body = [
        "| "
        + " | ".join(_escape_cell(format_value(cell, precision)) for cell in row)
        + " |"
        for row in table.rows
    ]
    lines = [header, rule, *body]
    for note in table.notes:
        lines.append(f"\n*{note}*")
    return "\n".join(lines)


def generate_report(
    config: ExperimentConfig, include_ablations: bool = True
) -> str:
    """Build the full markdown report (runs every experiment)."""
    parts: list[str] = [
        "# Reproduction report — "
        "*An Automated System for Internet Pharmacy Verification* (EDBT 2018)",
        "",
        f"Scale preset: `{config.scale}`, {config.n_folds}-fold CV, "
        f"term subsets {config.term_subsets}.",
        "",
        "## Paper tables",
    ]
    from repro.experiments.runner import _TABLE_BUILDERS

    for table_id, section in _TABLE_SECTIONS:
        table = _TABLE_BUILDERS[table_id](config)
        parts.append(f"\n### {table_id} — {section}\n")
        parts.append(_as_markdown(table))

    parts.append("\n## Paper figures\n")
    parts.append("### figure2 — N-Gram-Graph process\n")
    parts.append("```\n" + figures.figure2_pipeline_trace().render() + "\n```")
    parts.append("\n### figure3 — TrustRank propagation\n")
    parts.append(_as_markdown(figures.figure3_trustrank_demo(), precision=4))

    if include_ablations:
        parts.append("\n## Ablations\n")
        for fn_name, section in _ABLATIONS:
            fn = getattr(ablations, fn_name)
            parts.append(f"\n### {fn_name} — {section}\n")
            parts.append(_as_markdown(fn(config)))

    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Generate the markdown report")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--no-ablations", action="store_true")
    parser.add_argument("-o", "--output", default="report.md")
    args = parser.parse_args(argv)
    config = ExperimentConfig(scale=args.scale)
    start = time.time()
    report = generate_report(config, include_ablations=not args.no_ablations)
    Path(args.output).write_text(report)
    print(f"wrote {args.output} in {time.time() - start:.0f}s")  # repro-lint: disable=R005 (CLI entry point)
    return 0


if __name__ == "__main__":
    sys.exit(main())
