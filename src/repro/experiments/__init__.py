"""Paper table/figure regeneration harness."""

from repro.experiments.figures import (
    PipelineTrace,
    figure2_pipeline_trace,
    figure3_trustrank_demo,
)
from repro.experiments.results import TableResult, format_value
from repro.experiments.runner import EXPERIMENT_IDS, run_experiment
from repro.experiments.tables import (
    clear_cache,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
    table13,
    table14,
    table15,
    table16,
    table17,
)

__all__ = [
    "PipelineTrace",
    "figure2_pipeline_trace",
    "figure3_trustrank_demo",
    "TableResult",
    "format_value",
    "EXPERIMENT_IDS",
    "run_experiment",
    "clear_cache",
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "table14",
    "table15",
    "table16",
    "table17",
]
