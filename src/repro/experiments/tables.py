"""Regeneration of every table in the paper's evaluation (Section 6).

Each ``tableN(config)`` function returns a
:class:`~repro.experiments.results.TableResult` whose rows mirror the
paper's table.  Expensive computations (dataset generation, the TF-IDF
and N-Gram-Graph sweeps) are cached per :class:`ExperimentConfig`, so
requesting tables 3–6 runs the underlying sweep once.

The harness evaluates each classifier with the sampling strategy the
paper reports for it (Table 2 / Section 6.3.1): NBM and SVM on the
natural distribution, J48 with SMOTE; N-Gram-Graph classifiers without
resampling.
"""

from __future__ import annotations

import logging
import time
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.ensemble_pipeline import EnsembleClassificationPipeline
from repro.core.evaluation import (
    AggregatedReport,
    cross_validate_indexed,
)
from repro.core.network_pipeline import NetworkClassificationPipeline
from repro.core.ranking import rank_pharmacies
from repro.data.corpus import PharmacyCorpus
from repro.data.loaders import make_dataset_pair
from repro.experiments.results import TableResult, term_subset_header
from repro.experiments.sweep import SweepEntry, run_tfidf_sweep
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import BinaryClassificationReport, classification_report
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import StratifiedKFold
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.sampling import SMOTE
from repro.ml.svm import LinearSVC
from repro.ml.tree import C45Tree
from repro.network.construction import build_pharmacy_graph
from repro.network.graph import DirectedGraph
from repro.perf.cache import FeatureCache, content_fingerprint
from repro.perf.parallel import pmap
from repro.text.ngram_graph import ClassGraphModel, NGramGraph
from repro.text.summarization import Summarizer, SummaryDocument
from repro.text.term_vector import TfidfVectorizer
from repro.exceptions import ValidationError

logger = logging.getLogger(__name__)

__all__ = [
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "table14",
    "table15",
    "table16",
    "table17",
    "clear_cache",
]

# ---------------------------------------------------------------------------
# Experiment-level cache (keyed on the frozen ExperimentConfig).
# ---------------------------------------------------------------------------

_CACHE: dict[tuple, object] = {}


def clear_cache() -> None:
    """Drop all cached experiment artifacts."""
    _CACHE.clear()


def _cached(key: tuple, builder: Callable[[], object]) -> object:
    if key not in _CACHE:
        start = time.time()
        _CACHE[key] = builder()
        logger.info("computed %s in %.1fs", key[0], time.time() - start)
    return _CACHE[key]


def _dataset_pair(config: ExperimentConfig) -> tuple[PharmacyCorpus, PharmacyCorpus]:
    return _cached(
        ("datasets", config),
        lambda: make_dataset_pair(config.generator),
    )  # type: ignore[return-value]


#: Disk caches by directory (so stats aggregate across experiments).
_DISK_CACHES: dict[str, FeatureCache] = {}


def _feature_cache(config: ExperimentConfig) -> FeatureCache | None:
    """The configured on-disk feature cache, or ``None`` when disabled."""
    if not config.cache_dir:
        return None
    return _DISK_CACHES.setdefault(config.cache_dir, FeatureCache(config.cache_dir))


def _corpus_fingerprint(config: ExperimentConfig, corpus: PharmacyCorpus) -> str:
    """Content fingerprint of a corpus's text (for disk-cache keys)."""

    def build() -> str:
        parts: list[str] = []
        for site in corpus.sites:
            parts.append(site.domain)
            for page in site.pages:
                parts.append(page.url)
                parts.append(page.text)
        return content_fingerprint(parts)

    return _cached(("fingerprint", config, corpus.name), build)  # type: ignore[return-value]


def _summarize_site(site, max_terms: int | None, seed: int) -> SummaryDocument:
    """Summarize one site (module-level so ``pmap`` can pickle it).

    The summarizer's subsample RNG is keyed on (seed, domain), so
    per-site calls are bit-identical to batch summarization at any
    worker count.
    """
    return Summarizer(max_terms=max_terms, seed=seed).summarize_site(site)


def _documents(
    config: ExperimentConfig, corpus: PharmacyCorpus, max_terms: int | None
) -> list[SummaryDocument]:
    def build() -> list[SummaryDocument]:
        def compute() -> list[SummaryDocument]:
            summarize = partial(
                _summarize_site, max_terms=max_terms, seed=config.summary_seed
            )
            return pmap(summarize, corpus.sites, jobs=config.jobs)

        disk = _feature_cache(config)
        if disk is None:
            return compute()
        key = disk.key(
            "summary-docs",
            _corpus_fingerprint(config, corpus),
            {"max_terms": max_terms, "seed": config.summary_seed},
        )
        return disk.get_or_compute(key, compute)

    return _cached(("docs", config, corpus.name, max_terms), build)  # type: ignore[return-value]


def _document_graphs(
    config: ExperimentConfig,
    corpus: PharmacyCorpus,
    max_terms: int | None,
    n: int = 4,
    window: int = 4,
) -> list[NGramGraph]:
    """Per-document n-gram graphs of a corpus's summary documents.

    Built once per (config, corpus, subset, n, window) — memoized
    in-process and, when a cache directory is configured, on disk —
    so CV folds and ablation suites share one construction pass.
    """

    def build() -> list[NGramGraph]:
        docs = _documents(config, corpus, max_terms)

        def compute() -> list[NGramGraph]:
            make_graph = partial(NGramGraph.from_text, n=n, window=window)
            return pmap(make_graph, [doc.text for doc in docs], jobs=config.jobs)

        disk = _feature_cache(config)
        if disk is None:
            return compute()
        key = disk.key(
            "ngg-doc-graphs",
            _corpus_fingerprint(config, corpus),
            {
                "max_terms": max_terms,
                "seed": config.summary_seed,
                "n": n,
                "window": window,
            },
        )
        return disk.get_or_compute(key, compute)

    return _cached(
        ("doc-graphs", config, corpus.name, max_terms, n, window), build
    )  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Classifier rosters: picklable unfitted prototypes, cloned per fit (so the
# sweep scheduler can ship them to pmap worker processes).
# ---------------------------------------------------------------------------

TFIDF_ROSTER: tuple[SweepEntry, ...] = (
    SweepEntry("NBM", "NO", MultinomialNB()),
    SweepEntry("SVM", "NO", LinearSVC(seed=0)),
    SweepEntry(
        "J48", "SMOTE", C45Tree(max_candidate_features=400), SMOTE(seed=0)
    ),
)

NGG_ROSTER: tuple[tuple[str, str, BaseClassifier], ...] = (
    ("NB", "NO", GaussianNB()),
    # No loss re-weighting: the paper's SMO runs on the natural
    # distribution here, which yields its characteristic NGG-SVM shape
    # (near-perfect illegitimate recall, weaker legitimate recall).
    ("SVM", "NO", LinearSVC(class_weight=None, seed=0)),
    ("J48", "NO", C45Tree()),
    ("MLP", "NO", MLPClassifier(seed=0)),
)


# ---------------------------------------------------------------------------
# Core sweeps
# ---------------------------------------------------------------------------


def _link_graph(config: ExperimentConfig, corpus: PharmacyCorpus) -> DirectedGraph:
    """The corpus link graph, built once per (config, corpus).

    The graph depends only on the working set — not on fold seeds — so
    every CV fold's TrustRank pipeline shares this single construction.
    """
    return _cached(
        ("linkgraph", config, corpus.name),
        lambda: build_pharmacy_graph(corpus.sites),
    )  # type: ignore[return-value]


def _tfidf_sweep(
    config: ExperimentConfig, corpus_name: str = "dataset1"
) -> dict[tuple[str, int | None], AggregatedReport]:
    """3-fold CV of every TF-IDF roster entry at every term-subset size.

    Delegates to the :mod:`repro.experiments.sweep` scheduler, which
    fits each (subset, fold)'s feature matrices once and shares them
    across the roster (unless ``config.shared_sweeps`` is off).
    """

    def build() -> dict[tuple[str, int | None], AggregatedReport]:
        corpus = _corpus_by_name(config, corpus_name)
        tokens_by_subset = {
            subset: [doc.tokens for doc in _documents(config, corpus, subset)]
            for subset in config.term_subsets
        }
        disk = _feature_cache(config)
        return run_tfidf_sweep(
            TFIDF_ROSTER,
            corpus.labels,
            tokens_by_subset,
            n_folds=config.n_folds,
            cv_seed=config.cv_seed,
            shared=config.shared_sweeps,
            jobs=config.jobs,
            cache=disk,
            cache_fingerprint=(
                _corpus_fingerprint(config, corpus) if disk is not None else None
            ),
        )

    return _cached(("tfidf", config, corpus_name), build)  # type: ignore[return-value]


def _ngg_sweep(
    config: ExperimentConfig,
) -> dict[tuple[str, int | None], AggregatedReport]:
    """3-fold CV of every N-Gram-Graph roster entry per term subset.

    Per the paper: no resampling; class graphs built from a random half
    of the training instances; every instance (train and test) is then
    mapped to its similarity features against the class graphs.
    """

    def build() -> dict[tuple[str, int | None], AggregatedReport]:
        corpus, _ = _dataset_pair(config)
        y = corpus.labels
        results: dict[tuple[str, int | None], list[BinaryClassificationReport]] = {
            (name, subset): []
            for name, _, _ in NGG_ROSTER
            for subset in config.term_subsets
        }
        splitter = StratifiedKFold(
            n_splits=config.n_folds, shuffle=True, seed=config.cv_seed
        )
        for subset in config.term_subsets:
            graphs = _document_graphs(config, corpus, subset)
            for fold_no, (train_idx, test_idx) in enumerate(splitter.split(y)):
                model = ClassGraphModel(seed=config.cv_seed + fold_no)
                model.fit_graphs(
                    [graphs[i] for i in train_idx], y[train_idx].tolist()
                )
                features = model.transform_graphs(graphs)
                for name, _, proto in NGG_ROSTER:
                    clf = clone(proto)
                    clf.fit(features[train_idx], y[train_idx])
                    report = classification_report(
                        y[test_idx],
                        clf.predict(features[test_idx]),
                        clf.decision_scores(features[test_idx]),
                    )
                    results[(name, subset)].append(report)
        return {
            key: AggregatedReport(fold_reports=tuple(reports))
            for key, reports in results.items()
        }

    return _cached(("ngg", config), build)  # type: ignore[return-value]


def _network_cv(config: ExperimentConfig) -> AggregatedReport:
    """3-fold CV of the TrustRank network classifier."""

    def build() -> AggregatedReport:
        corpus, _ = _dataset_pair(config)

        def fit_predict(train_idx, test_idx):
            pipeline = NetworkClassificationPipeline(
                corpus,
                GaussianNB(),
                cache=_feature_cache(config),
                graph=_link_graph(config, corpus),
            )
            pipeline.fit(train_idx)
            return pipeline.predict(test_idx), pipeline.decision_scores(test_idx)

        return cross_validate_indexed(
            fit_predict, corpus.labels, n_folds=config.n_folds, seed=config.cv_seed
        )

    return _cached(("network", config), build)  # type: ignore[return-value]


def _ensemble_cv(config: ExperimentConfig) -> AggregatedReport:
    """3-fold CV of the text+network Ensemble Selection (1000 terms)."""

    def build() -> AggregatedReport:
        corpus, _ = _dataset_pair(config)
        docs = _documents(config, corpus, 1000)

        def fit_predict(train_idx, test_idx):
            pipeline = EnsembleClassificationPipeline(
                corpus, docs, seed=config.cv_seed,
                graph=_link_graph(config, corpus),
            )
            pipeline.fit(train_idx)
            return pipeline.predict(test_idx), pipeline.decision_scores(test_idx)

        return cross_validate_indexed(
            fit_predict, corpus.labels, n_folds=config.n_folds, seed=config.cv_seed
        )

    return _cached(("ensemble", config), build)  # type: ignore[return-value]


def _ranking_pairord(config: ExperimentConfig) -> dict[str, float]:
    """Mean pairwise orderedness per ranking model (Table 15)."""

    def build() -> dict[str, float]:
        corpus, _ = _dataset_pair(config)
        y = corpus.labels
        domains = corpus.domains
        docs = _documents(config, corpus, 1000)
        tokens = [doc.tokens for doc in docs]
        doc_graphs = _document_graphs(config, corpus, 1000)
        splitter = StratifiedKFold(
            n_splits=config.n_folds, shuffle=True, seed=config.cv_seed
        )
        accumulator: dict[str, list[float]] = {
            "NBM": [], "SVM": [], "J48": [], "NGG": []
        }
        for fold_no, (train_idx, test_idx) in enumerate(splitter.split(y)):
            network = NetworkClassificationPipeline(
                corpus,
                GaussianNB(),
                cache=_feature_cache(config),
                graph=_link_graph(config, corpus),
            )
            network.fit(train_idx)
            net_rank = network.network_rank(test_idx)
            test_domains = [domains[i] for i in test_idx]
            y_test = y[test_idx]

            vectorizer = TfidfVectorizer()
            X_train = vectorizer.fit_transform([tokens[i] for i in train_idx])
            X_test = vectorizer.transform([tokens[i] for i in test_idx])
            for entry in TFIDF_ROSTER:
                X_fit, y_fit = X_train, y[train_idx]
                if entry.sampler is not None:
                    X_fit, y_fit = entry.sampler.fit_resample(X_fit, y_fit)
                model = clone(entry.classifier)
                model.fit(X_fit, y_fit)
                if isinstance(model, LinearSVC):
                    # Non-probabilistic: textRank is the hard label.
                    text_rank = model.predict(X_test).astype(np.float64)
                else:
                    text_rank = model.predict_proba(X_test)[:, -1]
                ranking = rank_pharmacies(
                    test_domains, text_rank, net_rank, y_test
                )
                accumulator[entry.name].append(ranking.pairord)

            ngg = ClassGraphModel(seed=config.cv_seed + fold_no)
            ngg.fit_graphs(
                [doc_graphs[i] for i in train_idx], y[train_idx].tolist()
            )
            features = ngg.transform_graphs([doc_graphs[i] for i in test_idx])
            classes = ngg.classes
            by_class = {
                label: features[:, 4 * k : 4 * (k + 1)]
                for k, label in enumerate(classes)
            }
            eq3 = by_class[max(classes)].sum(axis=1) + (
                1.0 - by_class[min(classes)]
            ).sum(axis=1)
            ranking = rank_pharmacies(test_domains, eq3, net_rank, y_test)
            accumulator["NGG"].append(ranking.pairord)
        return {name: float(np.mean(vals)) for name, vals in accumulator.items()}

    return _cached(("ranking", config), build)  # type: ignore[return-value]


def _time_sweep(
    config: ExperimentConfig,
) -> dict[tuple[str, int, str], dict[str, float]]:
    """Old-Old / New-New / Old-New evaluations (Tables 16–17).

    Returns ``{(classifier, subset, regime): {measure: value}}`` for
    subsets 250 and 1000.
    """

    def build() -> dict[tuple[str, int, str], dict[str, float]]:
        corpus1, corpus2 = _dataset_pair(config)
        subsets = [s for s in (250, 1000) if s in config.term_subsets] or [
            250,
            1000,
        ]
        out: dict[tuple[str, int, str], dict[str, float]] = {}
        old_old = _tfidf_sweep(config, "dataset1")
        new_new = _tfidf_sweep(config, "dataset2")
        for entry in TFIDF_ROSTER:
            name = entry.name
            for subset in subsets:
                out[(name, subset, "Old-Old")] = old_old[(name, subset)].as_dict()
                out[(name, subset, "New-New")] = new_new[(name, subset)].as_dict()
                # Old-New: train on all of Dataset 1, test on Dataset 2.
                docs1 = _documents(config, corpus1, subset)
                docs2 = _documents(config, corpus2, subset)
                vectorizer = TfidfVectorizer()
                X_old = vectorizer.fit_transform([d.tokens for d in docs1])
                X_new = vectorizer.transform([d.tokens for d in docs2])
                y_old, y_new = corpus1.labels, corpus2.labels
                X_fit, y_fit = X_old, y_old
                if entry.sampler is not None:
                    X_fit, y_fit = entry.sampler.fit_resample(X_fit, y_fit)
                model = clone(entry.classifier)
                model.fit(X_fit, y_fit)
                report = classification_report(
                    y_new, model.predict(X_new), model.decision_scores(X_new)
                )
                out[(name, subset, "Old-New")] = report.as_dict()
        return out

    return _cached(("time", config), build)  # type: ignore[return-value]


def _corpus_by_name(config: ExperimentConfig, name: str) -> PharmacyCorpus:
    corpus1, corpus2 = _dataset_pair(config)
    if name == "dataset1":
        return corpus1
    if name == "dataset2":
        return corpus2
    raise ValidationError(f"unknown corpus name {name!r}")


# ---------------------------------------------------------------------------
# Table builders
# ---------------------------------------------------------------------------


def table1(config: ExperimentConfig) -> TableResult:
    """Table 1: dataset sizes and class ratio."""
    corpus1, corpus2 = _dataset_pair(config)
    s1, s2 = corpus1.summary(), corpus2.summary()
    illegit1 = {d for d, l in zip(corpus1.domains, corpus1.labels) if l == 0}
    illegit2 = {d for d, l in zip(corpus2.domains, corpus2.labels) if l == 0}
    legit1 = {d for d, l in zip(corpus1.domains, corpus1.labels) if l == 1}
    legit2 = {d for d, l in zip(corpus2.domains, corpus2.labels) if l == 1}
    return TableResult(
        table_id="table1",
        title="Datasets (two crawls six months apart)",
        columns=("", "Dataset 1", "Dataset 2"),
        rows=(
            ("# Examples", s1.n_examples, s2.n_examples),
            ("# Legitimate Examples", s1.n_legitimate, s2.n_legitimate),
            ("# Illegitimate Examples", s1.n_illegitimate, s2.n_illegitimate),
            (
                "Legitimate fraction",
                s1.legitimate_fraction,
                s2.legitimate_fraction,
            ),
        ),
        notes=(
            f"illegitimate sets disjoint: {illegit1.isdisjoint(illegit2)}",
            f"legitimate sets identical: {legit1 == legit2}",
            f"scale preset: {config.scale} "
            "(paper scale: 1459/1442 examples, 167 legitimate)",
        ),
    )


def _sweep_table(
    table_id: str,
    title: str,
    config: ExperimentConfig,
    sweep: dict[tuple[str, int | None], AggregatedReport],
    roster_rows: Sequence[tuple[str, str]],
    measure: str,
) -> TableResult:
    header = ("Classifier", "Sampling") + term_subset_header(config.term_subsets)
    rows = []
    for name, sampling in roster_rows:
        cells: list[object] = [name, sampling]
        for subset in config.term_subsets:
            cells.append(sweep[(name, subset)].measure(measure).mean)
        rows.append(tuple(cells))
    return TableResult(
        table_id=table_id, title=title, columns=header, rows=tuple(rows)
    )


def _double_sweep_table(
    table_id: str,
    title: str,
    config: ExperimentConfig,
    sweep: dict[tuple[str, int | None], AggregatedReport],
    roster_rows: Sequence[tuple[str, str]],
    measures: Sequence[tuple[str, str]],
) -> TableResult:
    """A recall+precision table (two blocks like Tables 4/5/8/9)."""
    header = ("Block", "Classifier", "Sampling") + term_subset_header(
        config.term_subsets
    )
    rows = []
    for block_label, measure in measures:
        for name, sampling in roster_rows:
            cells: list[object] = [block_label, name, sampling]
            for subset in config.term_subsets:
                cells.append(sweep[(name, subset)].measure(measure).mean)
            rows.append(tuple(cells))
    return TableResult(
        table_id=table_id, title=title, columns=header, rows=tuple(rows)
    )


def _tfidf_rows() -> list[tuple[str, str]]:
    return [(entry.name, entry.sampling) for entry in TFIDF_ROSTER]


def _ngg_rows() -> list[tuple[str, str]]:
    return [(name, sampling) for name, sampling, _ in NGG_ROSTER]


def table3(config: ExperimentConfig) -> TableResult:
    """Table 3: TF-IDF overall accuracy."""
    return _sweep_table(
        "table3",
        "TF-IDF - Overall Accuracy",
        config,
        _tfidf_sweep(config),
        _tfidf_rows(),
        "accuracy",
    )


def table4(config: ExperimentConfig) -> TableResult:
    """Table 4: TF-IDF legitimate recall and precision."""
    return _double_sweep_table(
        "table4",
        "TF-IDF - legitimate recall and precision",
        config,
        _tfidf_sweep(config),
        _tfidf_rows(),
        (("Recall", "legitimate_recall"), ("Precision", "legitimate_precision")),
    )


def table5(config: ExperimentConfig) -> TableResult:
    """Table 5: TF-IDF illegitimate recall and precision."""
    return _double_sweep_table(
        "table5",
        "TF-IDF - illegitimate recall and precision",
        config,
        _tfidf_sweep(config),
        _tfidf_rows(),
        (
            ("Recall", "illegitimate_recall"),
            ("Precision", "illegitimate_precision"),
        ),
    )


def table6(config: ExperimentConfig) -> TableResult:
    """Table 6: TF-IDF area under ROC curve."""
    return _sweep_table(
        "table6",
        "TF-IDF - Area Under ROC Curve",
        config,
        _tfidf_sweep(config),
        _tfidf_rows(),
        "auc_roc",
    )


def table7(config: ExperimentConfig) -> TableResult:
    """Table 7: N-Gram Graphs classifier accuracy."""
    return _sweep_table(
        "table7",
        "N-Gram Graphs - Classifiers Accuracy",
        config,
        _ngg_sweep(config),
        _ngg_rows(),
        "accuracy",
    )


def table8(config: ExperimentConfig) -> TableResult:
    """Table 8: N-Gram Graphs legitimate recall and precision."""
    return _double_sweep_table(
        "table8",
        "N-Gram Graphs - legitimate recall and precision",
        config,
        _ngg_sweep(config),
        _ngg_rows(),
        (("Recall", "legitimate_recall"), ("Precision", "legitimate_precision")),
    )


def table9(config: ExperimentConfig) -> TableResult:
    """Table 9: N-Gram Graphs illegitimate recall and precision."""
    return _double_sweep_table(
        "table9",
        "N-Gram Graphs - illegitimate recall and precision",
        config,
        _ngg_sweep(config),
        _ngg_rows(),
        (
            ("Recall", "illegitimate_recall"),
            ("Precision", "illegitimate_precision"),
        ),
    )


def table10(config: ExperimentConfig) -> TableResult:
    """Table 10: N-Gram Graphs area under ROC curve."""
    return _sweep_table(
        "table10",
        "N-Gram Graphs - Area Under ROC Curve",
        config,
        _ngg_sweep(config),
        _ngg_rows(),
        "auc_roc",
    )


def table11(config: ExperimentConfig, top_k: int = 10) -> TableResult:
    """Table 11: top linked-to domains per class."""
    from repro.network.features import top_linked_domains

    corpus, _ = _dataset_pair(config)
    ranked = top_linked_domains(corpus.sites, corpus.labels, top_k=top_k)
    legit = [d for d, _ in ranked.get(1, [])]
    illegit = [d for d, _ in ranked.get(0, [])]
    rows = tuple(
        (
            i + 1,
            legit[i] if i < len(legit) else "",
            illegit[i] if i < len(illegit) else "",
        )
        for i in range(top_k)
    )
    return TableResult(
        table_id="table11",
        title="Websites pointed to by legitimate and illegitimate pharmacies",
        columns=("Rank", "pointed by legitimate", "pointed by illegitimate"),
        rows=rows,
    )


def table12(config: ExperimentConfig) -> TableResult:
    """Table 12: network classifier overall accuracy and AUC."""
    report = _network_cv(config)
    return TableResult(
        table_id="table12",
        title="Network - Overall Accuracy and AUC ROC",
        columns=("Classifier", "Overall Accuracy", "AUC ROC"),
        rows=(
            ("NB", report.accuracy.mean, report.auc_roc.mean),
        ),
    )


def table13(config: ExperimentConfig) -> TableResult:
    """Table 13: network classifier per-class precision and recall."""
    report = _network_cv(config)
    return TableResult(
        table_id="table13",
        title="Network - precision and recall",
        columns=(
            "Classifier",
            "legitimate precision",
            "legitimate recall",
            "illegitimate precision",
            "illegitimate recall",
        ),
        rows=(
            (
                "NB",
                report.legitimate_precision.mean,
                report.legitimate_recall.mean,
                report.illegitimate_precision.mean,
                report.illegitimate_recall.mean,
            ),
        ),
    )


def table14(config: ExperimentConfig) -> TableResult:
    """Table 14: ensemble selection vs best text and network models."""
    ensemble = _ensemble_cv(config)
    ngg = _ngg_sweep(config)
    mlp_text = ngg[("MLP", 1000 if 1000 in config.term_subsets else config.term_subsets[-1])]
    network = _network_cv(config)

    def row(label: str, report: AggregatedReport) -> tuple[object, ...]:
        return (
            label,
            report.accuracy.mean,
            report.legitimate_recall.mean,
            report.legitimate_precision.mean,
            report.illegitimate_recall.mean,
            report.illegitimate_precision.mean,
            report.auc_roc.mean,
        )

    return TableResult(
        table_id="table14",
        title="Ensemble Classification Results (1000-term subsamples)",
        columns=(
            "Model",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "illegit Rec.",
            "illegit Prec.",
            "AUC ROC",
        ),
        rows=(
            row("Ensem. Sel.", ensemble),
            row("Neural (Text)", mlp_text),
            row("NB (Network)", network),
        ),
    )


def table15(config: ExperimentConfig) -> TableResult:
    """Table 15: ranking pairwise orderedness."""
    pairord = _ranking_pairord(config)
    return TableResult(
        table_id="table15",
        title="Ranking using TF-IDF and N-Gram Graphs (pairord)",
        columns=("Model", "Sampling", "pairord"),
        rows=(
            ("NBM", "NO", pairord["NBM"]),
            ("SVM", "NO", pairord["SVM"]),
            ("J48", "SMOTE", pairord["J48"]),
            ("N-Gram Graph", "NO", pairord["NGG"]),
        ),
    )


def _time_table(
    table_id: str, title: str, config: ExperimentConfig, measure: str
) -> TableResult:
    sweep = _time_sweep(config)
    subsets = sorted({key[1] for key in sweep})
    regimes = ("Old-Old", "New-New", "Old-New")
    header = ["Classifier", "Sampling"]
    for regime in regimes:
        for subset in subsets:
            header.append(f"{regime} {subset}")
    rows = []
    for entry in TFIDF_ROSTER:
        cells: list[object] = [entry.name, entry.sampling]
        for regime in regimes:
            for subset in subsets:
                cells.append(sweep[(entry.name, subset, regime)][measure])
        rows.append(tuple(cells))
    return TableResult(
        table_id=table_id, title=title, columns=tuple(header), rows=tuple(rows)
    )


def table16(config: ExperimentConfig) -> TableResult:
    """Table 16: model over time — AUC ROC."""
    return _time_table(
        "table16", "TF-IDF - Model over Time - Area Under ROC Curve",
        config, "auc_roc",
    )


def table17(config: ExperimentConfig) -> TableResult:
    """Table 17: model over time — legitimate precision."""
    return _time_table(
        "table17", "TF-IDF - Model over Time - legitimate Precision",
        config, "legitimate_precision",
    )
