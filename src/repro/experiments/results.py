"""Result containers and plain-text rendering for the paper tables.

Every experiment produces a :class:`TableResult` whose ``render``
output mirrors the corresponding paper table: same row labels, same
columns, values from this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence
from repro.exceptions import MissingKeyError

__all__ = ["TableResult", "format_value", "term_subset_header"]


def format_value(value: object, precision: int = 2) -> str:
    """Format one table cell (floats to fixed precision)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass(frozen=True, slots=True)
class TableResult:
    """One reproduced table.

    Attributes:
        table_id: paper identifier ("table3", "figure3", ...).
        title: the paper's caption (abridged).
        columns: column headers (first column is the row label).
        rows: row tuples; the first element is the row label.
        notes: free-form remarks (substitutions, caveats).
    """

    table_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def cell(self, row_label: str, column: str) -> object:
        """Look up a cell by row label and column header."""
        col_idx = self.columns.index(column)
        for row in self.rows:
            if str(row[0]) == row_label:
                return row[col_idx]
        raise MissingKeyError(f"no row labelled {row_label!r} in {self.table_id}")

    def column_values(self, column: str) -> list[object]:
        idx = self.columns.index(column)
        return [row[idx] for row in self.rows]

    def render(self, precision: int = 2) -> str:
        """Render as a fixed-width text table."""
        header = [str(c) for c in self.columns]
        body = [
            [format_value(cell, precision) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(header[j]), *(len(r[j]) for r in body)) if body else len(header[j])
            for j in range(len(header))
        ]
        lines = [f"{self.table_id.upper()}: {self.title}"]
        lines.append(
            "  ".join(h.ljust(widths[j]) for j, h in enumerate(header))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def term_subset_header(term_subsets: Sequence[int | None]) -> tuple[str, ...]:
    """Column headers for a term-subset sweep ("100", ..., "All")."""
    return tuple("All" if n is None else str(n) for n in term_subsets)
